"""Version-ordered merge of per-shard writeset subscriptions.

A sharded certifier propagates each committed writeset on exactly one
stream — its *home shard*'s — so the per-shard streams carry disjoint,
ascending slices of the global commit order.  A replica must nevertheless
apply writesets in strict global version order (the proxy's watermark filter
drops anything at or below ``replica_version``, so an out-of-order delivery
would be lost forever).

:class:`MergedSubscription` is the replica-side merge.  It exploits the one
structural guarantee the sharded certifier provides: **global commit
versions are dense over commits** (the sequencer allocates a version only
when a transaction commits).  Every global version therefore exists on
exactly one home stream, and the merge needs no inter-shard frontier
protocol: drain all parts, hold what arrived early, and release the
contiguous run starting right above the cursor.  A version held back is
simply one whose home shard has not flushed yet; it is released the moment
that batch lands — deterministically, with no timeouts or reordering
windows.

The class mirrors the :class:`~repro.transport.stream.WritesetSubscription`
consumer surface (``poll`` / ``poll_flat`` / ``advance_to`` / ``close`` /
``pending_*``), so the proxy refresh path, the scheduler's lag signal and
``Database.apply_writeset_batch`` work unchanged against either shape.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.certification import RemoteWriteSetInfo
from repro.transport.stream import WritesetSubscription


class MergedSubscription:
    """One replica's version-ordered view over N per-shard subscriptions."""

    def __init__(
        self,
        parts: Iterable[WritesetSubscription],
        *,
        from_version: int = 0,
        name: str = "",
        backfill: Iterable[RemoteWriteSetInfo] = (),
    ) -> None:
        self.parts = list(parts)
        self.name = name
        #: Highest global version released (or skipped via :meth:`advance_to`).
        self.version = from_version
        #: Writesets that arrived ahead of a gap, keyed by global version.
        self._held: dict[int, RemoteWriteSetInfo] = {}
        self.batches_received = 0
        self.writesets_received = 0
        for info in backfill:
            if info.commit_version > from_version:
                self._held[info.commit_version] = info

    # -- consumption ---------------------------------------------------------

    def poll(self) -> list[list[RemoteWriteSetInfo]]:
        """Drain the parts and release the contiguous version-ordered prefix.

        Returns at most one merged batch (interleaved across shards by
        global version); writesets whose predecessors have not been
        delivered yet stay held until a later poll.
        """
        for part in self.parts:
            for batch in part.poll():
                for info in batch:
                    if info.commit_version > self.version:
                        self._held[info.commit_version] = info
        batch: list[RemoteWriteSetInfo] = []
        while (self.version + 1) in self._held:
            self.version += 1
            batch.append(self._held.pop(self.version))
        if not batch:
            return []
        self.batches_received += 1
        self.writesets_received += len(batch)
        return [batch]

    def poll_flat(self) -> list[RemoteWriteSetInfo]:
        """Drain pending batches coalesced into one flat, version-ordered list."""
        return [info for batch in self.poll() for info in batch]

    def advance_to(self, version: int) -> None:
        """Move the cursor forward (versions received out-of-band).

        Held writesets at or below the cursor are dropped on the spot, and
        the advance is forwarded to every part so their bus queues trim
        in-band exactly as with a single subscription.
        """
        if version > self.version:
            self.version = version
            for held_version in [v for v in self._held if v <= version]:
                del self._held[held_version]
        for part in self.parts:
            part.advance_to(version)

    # -- interrogation -------------------------------------------------------

    @property
    def held_count(self) -> int:
        """Writesets waiting for an earlier version to arrive."""
        return len(self._held)

    @property
    def pending_batches(self) -> int:
        return sum(part.pending_batches for part in self.parts) + (
            1 if self._held else 0
        )

    @property
    def pending_writesets(self) -> int:
        """Writesets queued anywhere on the path to this replica (the
        scheduler's transport-lag signal)."""
        return sum(part.pending_writesets for part in self.parts) + len(self._held)

    def close(self) -> None:
        for part in self.parts:
            part.close()

    def __repr__(self) -> str:
        return (
            f"MergedSubscription(name={self.name!r}, parts={len(self.parts)}, "
            f"version={self.version}, held={self.held_count})"
        )
