"""Batched writeset propagation from the certifier to the replicas.

The :class:`WritesetStream` is the one propagation path in the system: the
certifier *offers* every certified (and, when durability is on, durable)
writeset to the stream; a :class:`~repro.transport.policy.FlushPolicy`
decides when the pending writesets are cut into a **batch**; each batch is
published on a :class:`~repro.transport.bus.MessageBus` topic and lands in
every replica's :class:`WritesetSubscription`.  Replicas then apply whole
batches — one version bump and one WAL append per batch on the group-apply
path of :meth:`repro.engine.database.Database.apply_writeset_batch`.

The pending queue is a :class:`~repro.core.group_commit.GroupCommitBatcher`,
the same batching engine that backs the engine WAL's group commit and the
certifier's log flush, so the propagation batch-size statistics reported by
the benchmarks come from the single shared implementation.

Both stacks use this class unchanged:

* the **functional** middleware drains subscriptions inline during
  ``refresh()`` (no clock: ``now`` stays 0.0 and time-windowed policies
  degenerate to explicit flushing);
* the **simulated** cluster offers writesets from the certifier's log-writer
  process and wraps each subscription drain in a network-transfer delay, so
  batch boundaries translate into messages on the modeled LAN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.certification import RemoteWriteSetInfo
from repro.core.group_commit import GroupCommitBatcher, GroupCommitStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.certification import Certifier
    from repro.core.certifier_log import CertifierLog
from repro.transport.bus import BusSubscription, Message, MessageBus
from repro.transport.policy import ExplicitFlushPolicy, FlushPolicy

#: Default bus topic carrying writeset batches.
WRITESETS_TOPIC = "writesets"


class WritesetSubscription:
    """One replica's view of the writeset stream.

    Tracks a version cursor so a batch that partially overlaps what the
    replica already received (e.g. writesets applied in-band with a
    certification response) is filtered down to the genuinely new suffix.
    Polling is idempotent with respect to redelivery: a writeset is handed
    out at most once per subscription.
    """

    def __init__(self, stream: "WritesetStream", name: str, from_version: int) -> None:
        self.stream = stream
        self.name = name
        #: Highest commit version handed out by :meth:`poll` so far.
        self.version = from_version
        self._bus_subscription: BusSubscription = stream.bus.subscribe(
            stream.topic, name
        )
        self.batches_received = 0
        self.writesets_received = 0

    # -- consumption ---------------------------------------------------------

    def poll(self) -> list[list[RemoteWriteSetInfo]]:
        """Drain pending batches, filtered to versions past the cursor.

        Returns a list of non-empty batches in delivery order; the cursor
        advances to the highest version returned.  Batch boundaries are
        preserved so callers can pipeline: apply batch *k* while batch *k+1*
        is still in flight.
        """
        batches: list[list[RemoteWriteSetInfo]] = []
        for message in self._bus_subscription.poll():
            batch = [
                info
                for info in message.payload  # type: ignore[union-attr]
                if info.commit_version > self.version
            ]
            if not batch:
                continue
            self.version = max(info.commit_version for info in batch)
            self.batches_received += 1
            self.writesets_received += len(batch)
            batches.append(batch)
        return batches

    def poll_flat(self) -> list[RemoteWriteSetInfo]:
        """Drain pending batches coalesced into one flat list."""
        return [info for batch in self.poll() for info in batch]

    def advance_to(self, version: int) -> None:
        """Move the cursor forward (versions received out-of-band).

        Queued batches that fall entirely below the cursor are discarded on
        the spot: a replica that consumes writesets in-band with every
        certification response may rarely poll, and without this trim its
        queue would grow with every batch published cluster-wide.
        """
        if version > self.version:
            self.version = version
        queue = self._bus_subscription._queue
        while queue and all(
            info.commit_version <= self.version
            for info in queue[0].payload  # type: ignore[union-attr]
        ):
            queue.popleft()

    @property
    def pending_batches(self) -> int:
        return self._bus_subscription.pending

    @property
    def pending_writesets(self) -> int:
        return sum(len(m.payload) for m in self._bus_subscription._queue)  # type: ignore[arg-type]

    def close(self) -> None:
        self._bus_subscription.close()
        self.stream._drop_subscription(self)

    def __repr__(self) -> str:
        return (
            f"WritesetSubscription(name={self.name!r}, version={self.version}, "
            f"pending_batches={self.pending_batches})"
        )


class WritesetStream:
    """The certifier-to-replicas propagation channel with pluggable batching."""

    def __init__(
        self,
        *,
        policy: FlushPolicy | None = None,
        bus: MessageBus | None = None,
        topic: str = WRITESETS_TOPIC,
    ) -> None:
        self.policy: FlushPolicy = policy if policy is not None else ExplicitFlushPolicy()
        self.bus: MessageBus = bus if bus is not None else MessageBus(name="writeset-bus")
        self.topic = topic
        self._batcher: GroupCommitBatcher[RemoteWriteSetInfo] = GroupCommitBatcher(
            max_batch_size=self.policy.max_batch
        )
        self._oldest_enqueued_at: float | None = None
        self._subscriptions: list[WritesetSubscription] = []
        #: Highest commit version ever offered (used to seed late subscribers).
        self.offered_version = 0

    # -- producer side (the certifier) ---------------------------------------

    def offer(self, info: RemoteWriteSetInfo, *, now: float = 0.0) -> int:
        """Enqueue one certified writeset; flush if the policy says so.

        Returns the number of writesets delivered as a consequence (0 when
        the writeset merely joined the pending batch).
        """
        self._batcher.enqueue(info)
        if info.commit_version > self.offered_version:
            self.offered_version = info.commit_version
        if self._oldest_enqueued_at is None:
            self._oldest_enqueued_at = now
        if self.policy.should_flush(self._batcher.pending_count,
                                    now - self._oldest_enqueued_at):
            return sum(len(batch) for batch in self.flush(now=now))
        return 0

    def offer_many(self, infos: Iterable[RemoteWriteSetInfo], *, now: float = 0.0) -> int:
        delivered = 0
        for info in infos:
            delivered += self.offer(info, now=now)
        return delivered

    def offer_log_record(self, log: "CertifierLog", commit_version: int, *,
                         now: float = 0.0) -> bool:
        """Offer the certifier log record at ``commit_version`` exactly once.

        The stream's ``offered_version`` high-water mark is the idempotence
        guard, shared by both certifier front-ends (the functional service
        and the simulated node), so re-walking a flush batch never
        double-propagates.  Returns False when the version was already
        offered.
        """
        if commit_version <= self.offered_version:
            return False
        record = log.record_at(commit_version)
        self.offer(
            RemoteWriteSetInfo(
                commit_version=commit_version,
                writeset=record.writeset,
                origin_replica=record.origin_replica,
                conflict_free_back_to=log.certified_back_to(commit_version),
            ),
            now=now,
        )
        return True

    def flush(self, *, now: float = 0.0) -> list[list[RemoteWriteSetInfo]]:
        """Cut every pending writeset into batches and publish them.

        A policy ``max_batch`` may split the pending queue into several
        batches; each is published as one bus message (one delivery, one
        simulated network transfer).  Returns the batches published.
        """
        batches: list[list[RemoteWriteSetInfo]] = []
        while self._batcher.has_pending:
            batch = self._batcher.take_batch()
            self._batcher.complete_batch()
            self.bus.publish(self.topic, batch)
            batches.append(batch)
        self._oldest_enqueued_at = None
        return batches

    def propagate_from_log(self, log: "CertifierLog", versions: Iterable[int], *,
                           now: float = 0.0, aligned: bool = True) -> int:
        """Offer a group of certifier log records and cut batches.

        The one sequence both certifier front-ends use after releasing
        commit decisions: with ``aligned`` (the default, no custom policy)
        the whole group is published as a single batch boundary — e.g. a
        durability fsync group propagates as exactly one delivery; otherwise
        the configured policy decides via :meth:`flush_due`.  Returns the
        number of records newly offered.
        """
        offered = 0
        for version in sorted(versions):
            if self.offer_log_record(log, version, now=now):
                offered += 1
        if aligned:
            self.flush(now=now)
        else:
            self.flush_due(now=now)
        return offered

    def flush_due(self, *, now: float = 0.0) -> list[list[RemoteWriteSetInfo]]:
        """Flush only if the policy's window/size trigger has fired."""
        if self._oldest_enqueued_at is None:
            return []
        if self.policy.should_flush(self._batcher.pending_count,
                                    now - self._oldest_enqueued_at):
            return self.flush(now=now)
        return []

    # -- consumer side (replicas) --------------------------------------------

    def subscribe(self, name: str, *, from_version: int = 0,
                  backfill: Iterable[RemoteWriteSetInfo] = ()) -> WritesetSubscription:
        """Open a replica subscription.

        ``from_version`` positions the cursor; ``backfill`` (typically the
        certifier log's records after that version) is delivered immediately
        as one initial batch so a late joiner starts complete without a
        separate pull protocol.
        """
        subscription = WritesetSubscription(self, name, from_version)
        self._subscriptions.append(subscription)
        backfill_batch = [
            info for info in backfill if info.commit_version > from_version
        ]
        if backfill_batch:
            # A synthetic message outside the bus sequence: only this
            # subscriber missed these writesets.
            subscription._bus_subscription._deliver(
                Message(topic=self.topic, payload=backfill_batch, seq=0)
            )
        return subscription

    def attach_replica(self, certifier: "Certifier", replica: str,
                       from_version: int = 0) -> WritesetSubscription:
        """Subscribe a replica, backfilled from ``certifier``'s log.

        Also enrols the replica in the certifier's log-GC low-water-mark
        protocol, so an idle subscriber never has its log suffix pruned.
        One recipe shared by the functional service and the simulated node.
        """
        certifier.note_replica_version(replica, from_version)
        backfill = certifier.fetch_remote_writesets(from_version, replica=replica)
        return self.subscribe(replica, from_version=from_version, backfill=backfill)

    def detach_replica(self, name: str) -> int:
        """Close every subscription held under ``name``.

        The inverse of :meth:`attach_replica`: a disconnected replica must
        stop accumulating batches it will never poll.  Returns the number of
        subscriptions closed.
        """
        matching = [s for s in self._subscriptions if s.name == name]
        for subscription in matching:
            subscription.close()
        return len(matching)

    def _drop_subscription(self, subscription: WritesetSubscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def subscriptions(self) -> Iterator[WritesetSubscription]:
        return iter(self._subscriptions)

    # -- statistics ----------------------------------------------------------

    @property
    def stats(self) -> GroupCommitStats:
        """Batch-size statistics from the shared group-commit engine."""
        return self._batcher.stats

    @property
    def pending_count(self) -> int:
        return self._batcher.pending_count

    def __repr__(self) -> str:
        return (
            f"WritesetStream(policy={self.policy.describe()}, "
            f"subscribers={len(self._subscriptions)}, pending={self.pending_count}, "
            f"batches={self.stats.flushes})"
        )
