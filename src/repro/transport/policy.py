"""Batching / flush policies for the transport layer.

A :class:`FlushPolicy` decides *when* a stream of enqueued messages is cut
into a delivery batch.  The three policies mirror the batching regimes the
paper's systems exhibit on the serialized durability path:

* :class:`ImmediateFlushPolicy` — every message is its own batch.  This is
  per-writeset propagation: the behaviour of a naive push system (and of
  Base's serial commit submission, which cannot group at all).
* :class:`SizeCappedFlushPolicy` — a batch is cut as soon as ``max_batch``
  messages are pending; an explicit flush cuts a smaller one.  This is the
  "everything pending when the writer wakes up" regime of group commit,
  bounded so a burst cannot produce an arbitrarily large delivery.
* :class:`TimeWindowFlushPolicy` — a batch is cut once the oldest pending
  message has waited ``window_ms``.  This is the bounded-staleness regime:
  propagation latency is traded for batch size (Section 6.2 of the paper
  bounds the trade with the staleness timer).

Policies are deliberately tiny and stateless: the stream owns the pending
queue (a :class:`~repro.core.group_commit.GroupCommitBatcher`) and asks the
policy after every enqueue whether to cut a batch now.  Callers that manage
their own flush points (the certifier's log writer, which aligns propagation
batches with fsync batches) simply use a policy that never fires on its own
and call ``flush()`` explicitly.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError


class FlushPolicy(abc.ABC):
    """Decides when pending transport messages are cut into a batch."""

    #: Hard cap on the size of one delivered batch (``None`` = unbounded).
    max_batch: int | None = None

    @abc.abstractmethod
    def should_flush(self, pending: int, oldest_age_ms: float) -> bool:
        """True when the pending queue should be cut into a batch now.

        ``pending`` is the number of enqueued messages; ``oldest_age_ms`` is
        how long the oldest of them has been waiting (0.0 for callers without
        a clock, such as the functional middleware stack).
        """

    def describe(self) -> str:
        """Short human-readable name used in statistics and benchmarks."""
        return type(self).__name__


class ImmediateFlushPolicy(FlushPolicy):
    """Per-writeset propagation: every message is delivered on its own."""

    max_batch = 1

    def should_flush(self, pending: int, oldest_age_ms: float) -> bool:
        return pending > 0

    def describe(self) -> str:
        return "immediate"


class SizeCappedFlushPolicy(FlushPolicy):
    """Cut a batch whenever ``max_batch`` messages are pending."""

    def __init__(self, max_batch: int = 64) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        self.max_batch = max_batch

    def should_flush(self, pending: int, oldest_age_ms: float) -> bool:
        return pending >= self.max_batch

    def describe(self) -> str:
        return f"size-capped({self.max_batch})"


class TimeWindowFlushPolicy(FlushPolicy):
    """Cut a batch once the oldest pending message has waited ``window_ms``.

    An optional ``max_batch`` bounds the batch a long window can accumulate.
    """

    def __init__(self, window_ms: float, *, max_batch: int | None = None) -> None:
        if window_ms < 0:
            raise ConfigurationError("window_ms must be non-negative")
        if max_batch is not None and max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1 when given")
        self.window_ms = window_ms
        self.max_batch = max_batch

    def should_flush(self, pending: int, oldest_age_ms: float) -> bool:
        if pending <= 0:
            return False
        if self.max_batch is not None and pending >= self.max_batch:
            return True
        return oldest_age_ms >= self.window_ms

    def describe(self) -> str:
        return f"time-windowed({self.window_ms}ms)"


class ExplicitFlushPolicy(FlushPolicy):
    """Never fires on its own; batches are cut only by explicit ``flush()``.

    Used when the caller already has a natural batch boundary — the
    certifier's log writer aligns propagation batches with its fsync batches,
    so every replica receives exactly the group of writesets that shared one
    synchronous log write.  ``max_batch`` bounds a single delivery anyway.
    """

    def __init__(self, max_batch: int | None = None) -> None:
        if max_batch is not None and max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1 when given")
        self.max_batch = max_batch

    def should_flush(self, pending: int, oldest_age_ms: float) -> bool:
        return False

    def describe(self) -> str:
        return "explicit"


def policy_from_name(name: str, *, batch_size: int = 64,
                     window_ms: float = 0.0) -> FlushPolicy:
    """Build a policy from a configuration string.

    Recognised names: ``immediate``, ``size``, ``window``, ``explicit``.
    """
    if name == "immediate":
        return ImmediateFlushPolicy()
    if name == "size":
        return SizeCappedFlushPolicy(batch_size)
    if name == "window":
        return TimeWindowFlushPolicy(window_ms, max_batch=batch_size)
    if name == "explicit":
        # Unbounded, like the default wiring: an explicit flush delivers the
        # caller's whole batch (e.g. one fsync group) as one delivery, so
        # propagation statistics stay aligned with durability statistics.
        return ExplicitFlushPolicy(None)
    raise ConfigurationError(f"unknown flush policy {name!r}")
