"""The transport layer: one propagation subsystem for both stacks.

Before this package existed, remote-writeset propagation was hand-rolled
twice — the functional middleware pulled per replica via
``CertifierService.fetch_remote_writesets`` and the simulated cluster had its
own ad-hoc ``fetch_remote`` fragment.  The transport layer replaces both with
a single push-based, batch-oriented pipeline:

* :class:`MessageBus` — timing-free topic pub/sub (delivery timing belongs to
  the caller: inline in the functional stack, network-modeled in the sim);
* :class:`FlushPolicy` and friends — pluggable batching policies (immediate,
  size-capped, time-windowed, explicit/fsync-aligned);
* :class:`WritesetStream` / :class:`WritesetSubscription` — batched
  propagation of certified writesets from the certifier to every replica,
  backed by the shared :class:`~repro.core.group_commit.GroupCommitBatcher`;
* :class:`MergedSubscription` — the replica-side deterministic merge over a
  sharded certifier's per-shard streams, interleaving batches by global
  commit version (see ``docs/certifier.md``).

See ``docs/architecture.md`` for the layer diagram and which paper variant
uses which policy.
"""

from repro.transport.bus import BusStats, BusSubscription, Message, MessageBus
from repro.transport.merged import MergedSubscription
from repro.transport.policy import (
    ExplicitFlushPolicy,
    FlushPolicy,
    ImmediateFlushPolicy,
    SizeCappedFlushPolicy,
    TimeWindowFlushPolicy,
    policy_from_name,
)
from repro.transport.stream import (
    WRITESETS_TOPIC,
    WritesetStream,
    WritesetSubscription,
)

__all__ = [
    "BusStats",
    "BusSubscription",
    "ExplicitFlushPolicy",
    "FlushPolicy",
    "ImmediateFlushPolicy",
    "MergedSubscription",
    "Message",
    "MessageBus",
    "SizeCappedFlushPolicy",
    "TimeWindowFlushPolicy",
    "WRITESETS_TOPIC",
    "WritesetStream",
    "WritesetSubscription",
    "policy_from_name",
]
