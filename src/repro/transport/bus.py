"""A tiny topic-based message bus.

The bus is the delivery fabric under the transport layer: publishers post a
payload on a topic, and every subscription of that topic receives it.  The
bus itself is synchronous and timing-free — delivery places the message in
the subscription's queue (or invokes its callback) immediately.  *When* the
payload actually "arrives" is the caller's business: the functional
middleware drains queues inline, while the simulated cluster wraps each
drain in a network-transfer delay from :mod:`repro.sim.devices`.

Keeping time out of the bus is what lets the functional and the simulated
stacks share one transport implementation, the same way the pure
:class:`~repro.core.certification.Certifier` is shared by both certifier
front-ends.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Message:
    """One published payload, stamped with its bus-wide sequence number."""

    topic: str
    payload: object
    seq: int


@dataclass
class BusStats:
    """Counters the benchmarks and tests read off a bus."""

    published: int = 0
    deliveries: int = 0
    dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class BusSubscription:
    """One subscriber's inbox on a topic.

    Messages are queued until :meth:`poll` drains them; alternatively a
    ``callback`` receives each message at publish time (used by the simulated
    certifier's durability announcements, where the subscriber reacts
    immediately and queueing would only add latency).
    """

    def __init__(self, bus: "MessageBus", topic: str, name: str,
                 callback: Callable[[Message], None] | None = None) -> None:
        self.bus = bus
        self.topic = topic
        self.name = name
        self.callback = callback
        self._queue: deque[Message] = deque()
        self.delivered = 0
        self.closed = False

    # -- delivery (bus side) -------------------------------------------------

    def _deliver(self, message: Message) -> None:
        self.delivered += 1
        if self.callback is not None:
            self.callback(message)
        else:
            self._queue.append(message)

    # -- consumption (subscriber side) ---------------------------------------

    def poll(self, max_messages: int | None = None) -> list[Message]:
        """Drain queued messages (all of them, or at most ``max_messages``)."""
        if max_messages is None or max_messages >= len(self._queue):
            drained = list(self._queue)
            self._queue.clear()
            return drained
        return [self._queue.popleft() for _ in range(max_messages)]

    @property
    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        """Detach from the bus; queued messages are dropped."""
        self.bus.unsubscribe(self)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"BusSubscription(topic={self.topic!r}, name={self.name!r}, "
            f"pending={len(self._queue)})"
        )


class MessageBus:
    """Topic-based publish/subscribe with per-subscriber queues."""

    def __init__(self, *, name: str = "bus") -> None:
        self.name = name
        self._subscriptions: dict[str, list[BusSubscription]] = {}
        self._seq = 0
        self.stats = BusStats()

    def subscribe(self, topic: str, name: str,
                  callback: Callable[[Message], None] | None = None) -> BusSubscription:
        """Open a subscription on ``topic``; ``name`` identifies the consumer."""
        if not topic:
            raise ConfigurationError("topic must be non-empty")
        subscription = BusSubscription(self, topic, name, callback)
        self._subscriptions.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: BusSubscription) -> None:
        subscribers = self._subscriptions.get(subscription.topic, [])
        if subscription in subscribers:
            subscribers.remove(subscription)
        subscription.closed = True
        # Honour close()'s contract: queued messages are dropped, so a
        # retained reference cannot poll stale deliveries or pin payloads.
        subscription._queue.clear()

    def publish(self, topic: str, payload: object) -> Message:
        """Publish ``payload`` on ``topic``, fanning out to every subscriber.

        Returns the stamped message.  Publishing on a topic nobody listens to
        is legal (the message is counted as dropped) — components announce
        unconditionally and do not care who listens, exactly like the
        certifier announcing durability whether or not a replica is behind.
        """
        self._seq += 1
        message = Message(topic=topic, payload=payload, seq=self._seq)
        self.stats.published += 1
        subscribers = self._subscriptions.get(topic, ())
        if not subscribers:
            self.stats.dropped += 1
            return message
        for subscription in list(subscribers):
            subscription._deliver(message)
            self.stats.deliveries += 1
        return message

    def subscriber_count(self, topic: str) -> int:
        return len(self._subscriptions.get(topic, ()))

    def __repr__(self) -> str:
        topics = {t: len(s) for t, s in self._subscriptions.items() if s}
        return f"MessageBus(name={self.name!r}, topics={topics}, published={self.stats.published})"
