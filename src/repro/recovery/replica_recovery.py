"""Replica recovery (paper Section 7.1 / 7.2).

Two database-level paths followed by a shared middleware step:

* **Tashkent-MW** — the replica ran with synchronous WAL writes disabled, so
  neither durability nor physical data integrity can be trusted.  The
  middleware restarts the database from the most recent *valid* dump (it
  keeps two) and then brings it up to date by replaying remote writesets from
  the certifier's log.
* **Base / Tashkent-API** — the database recovers with its own WAL redo;
  committed-but-unacknowledged transactions (at most one for Base, at most
  the concurrently-committing set for Tashkent-API) plus anything that
  committed globally while the replica was down are then re-applied from the
  certifier's log.  "Reapplying writesets in the global order is always
  safe."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.certifier_log import CertifierLog
from repro.engine.checkpoint import CheckpointStore
from repro.engine.database import Database
from repro.engine.recovery import recover_from_checkpoint, recover_from_wal
from repro.engine.table import TableSchema
from repro.engine.wal import WriteAheadLog
from repro.errors import RecoveryError


@dataclass
class RecoveryReport:
    """What happened during a replica recovery."""

    database: Database
    recovered_to_version: int
    writesets_replayed: int
    used_checkpoint_version: int | None = None

    @property
    def final_version(self) -> int:
        return self.database.current_version


def replay_writesets_from_certifier(database: Database, certifier_log: CertifierLog,
                                    *, after_version: int | None = None) -> int:
    """Apply every certified writeset the database is missing, in global order.

    Returns the number of writesets replayed.  Replay is idempotent: records
    at or below the database's current version are skipped, so it is safe to
    call with a conservative ``after_version``.  The starting point is
    clamped to the database's current version, which keeps replay working
    against a garbage-collected log; if the log has been pruned *beyond* the
    database's version the missing records are unrecoverable from the log
    and a :class:`RecoveryError` is raised (the replica needs a newer dump
    or a full state transfer).
    """
    if certifier_log.pruned_version > database.current_version:
        raise RecoveryError(
            f"certifier log is pruned up to version {certifier_log.pruned_version}, "
            f"but the database only reached version {database.current_version}; "
            "log replay cannot recover this replica"
        )
    start = database.current_version if after_version is None else after_version
    start = max(start, database.current_version)
    replayed = 0
    for record in certifier_log.records_after(start):
        if record.commit_version <= database.current_version:
            continue
        database.apply_writeset(record.writeset, version=record.commit_version, priority=True)
        replayed += 1
    return replayed


def recover_tashkent_mw_replica(checkpoints: CheckpointStore, certifier_log: CertifierLog) -> RecoveryReport:
    """Tashkent-MW replica recovery: latest valid dump + writeset replay."""
    database = recover_from_checkpoint(checkpoints, synchronous_commit=False)
    checkpoint_version = database.current_version
    replayed = replay_writesets_from_certifier(database, certifier_log)
    return RecoveryReport(
        database=database,
        recovered_to_version=checkpoint_version,
        writesets_replayed=replayed,
        used_checkpoint_version=checkpoint_version,
    )


def recover_base_replica(wal: WriteAheadLog, schemas: list[TableSchema],
                         certifier_log: CertifierLog, *, database_name: str = "db",
                         synchronous_commit: bool = True) -> RecoveryReport:
    """Base / Tashkent-API replica recovery: WAL redo + writeset replay."""
    database = recover_from_wal(
        wal, schemas, database_name=database_name, synchronous_commit=synchronous_commit
    )
    wal_version = database.current_version
    replayed = replay_writesets_from_certifier(database, certifier_log)
    return RecoveryReport(
        database=database,
        recovered_to_version=wal_version,
        writesets_replayed=replayed,
    )
