"""Recovery procedures and the Section 9.6 recovery-time model.

* :mod:`repro.recovery.replica_recovery` — the three replica recovery paths:
  Tashkent-MW (restore the latest valid dump, then replay remote writesets
  from the certifier log), Base / Tashkent-API (the database's own WAL
  recovery, then writeset replay for anything the database lost), and the
  shared writeset-replay step.
* :mod:`repro.recovery.certifier_recovery` — certifier crash/recovery via
  state transfer within the replicated group.
* :mod:`repro.recovery.sharded_recovery` — sharded-certifier coordinator
  recovery: per-shard leader election, completion of rounds interrupted
  mid-flush, directory/sequencer reconstruction from the shard groups'
  chosen prefixes, and the recovery report (``docs/recovery.md``).
* :mod:`repro.recovery.snapshots` — replicated shard snapshots at the GC
  horizon, log compaction of the per-shard Paxos groups, and the
  anti-entropy bootstrap path (plan / download+verify / install) by which a
  brand-new or long-dead group node joins from snapshot + retained suffix.
* :mod:`repro.recovery.timings` — the analytic recovery-time model that
  reproduces the numbers reported in Section 9.6 (dump 230 s, restore 140 s,
  2-4 s WAL recovery, 900 writesets/s replay, ~1 s log transfer per hour of
  downtime), extended with the snapshot + log-suffix state-transfer terms.

``benchmarks/test_recovery_times.py`` and
``benchmarks/test_replica_bootstrap.py`` drive the model (see
``docs/benchmarks.md``); the layer map is in ``docs/architecture.md``.
"""

from repro.recovery.replica_recovery import (
    RecoveryReport,
    recover_base_replica,
    recover_tashkent_mw_replica,
    replay_writesets_from_certifier,
)
from repro.recovery.certifier_recovery import recover_certifier_node
from repro.recovery.sharded_recovery import (
    ShardedCertifierRecoveryReport,
    recover_sharded_certifier,
)
from repro.recovery.snapshots import (
    BootstrapPlan,
    BootstrapReport,
    CompactionReport,
    ShardSnapshot,
    StateTransferPackage,
    bootstrap_group_node,
    capture_shard_snapshot,
    compact_certifier,
    plan_node_bootstrap,
)
from repro.recovery.timings import RecoveryTimingModel, RecoveryTimings

__all__ = [
    "BootstrapPlan",
    "BootstrapReport",
    "CompactionReport",
    "RecoveryReport",
    "RecoveryTimingModel",
    "RecoveryTimings",
    "ShardSnapshot",
    "ShardedCertifierRecoveryReport",
    "StateTransferPackage",
    "bootstrap_group_node",
    "capture_shard_snapshot",
    "compact_certifier",
    "plan_node_bootstrap",
    "recover_base_replica",
    "recover_certifier_node",
    "recover_sharded_certifier",
    "recover_tashkent_mw_replica",
    "replay_writesets_from_certifier",
]
