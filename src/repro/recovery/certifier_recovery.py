"""Certifier crash and recovery (paper Section 7.3 / 9.6).

A certifier node that recovers from a crash requests a state transfer from
an up peer, participates in (re-)electing a leader if necessary, and resumes
logging certification requests.  The heavy lifting lives in
:class:`repro.consensus.group.ReplicatedCertifierGroup`; this module adds
the recovery orchestration and reporting used by the examples and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.group import ReplicatedCertifierGroup


@dataclass
class CertifierRecoveryReport:
    """Outcome of one certifier node recovery."""

    node_id: int
    entries_transferred: int
    new_leader_id: int
    group_has_quorum: bool
    #: GC horizon of the leader's certifier log at recovery time.  A state
    #: transfer only carries the retained suffix (``CertifierLog.from_records``
    #: rebuilds the base offset from it); replicas whose dump predates this
    #: version cannot catch up by log replay and need a full state transfer.
    log_pruned_version: int = 0


def recover_certifier_node(group: ReplicatedCertifierGroup, node_id: int) -> CertifierRecoveryReport:
    """Recover ``node_id``: state transfer, then leader election if needed."""
    transferred = group.recover_node(node_id)
    leader = group.leader_id
    if not any(node.node_id == leader and node.up for node in group.nodes):
        leader = group.elect_new_leader()
    # Read the GC horizon only after leadership is settled: the report must
    # describe the log the recovered node will actually replay from.  (This
    # used to be sampled from a group that could never run GC, so it was
    # always 0 and a replica planning its catch-up could wrongly conclude
    # that log replay reaches all the way back to version 0.)
    pruned_version = group.certifier.log.pruned_version
    return CertifierRecoveryReport(
        node_id=node_id,
        entries_transferred=transferred,
        new_leader_id=leader,
        group_has_quorum=group.has_quorum(),
        log_pruned_version=pruned_version,
    )
