"""Sharded certifier recovery: rebuild the coordinator from the shard groups.

The :class:`~repro.consensus.sharded.ReplicatedShardedCertifier` keeps all
of its coordinator state — the global sequencer, the version-ordered
directory, the per-shard :class:`~repro.core.certifier_log.CertifierLog`
instances and their local↔global maps — volatile; what survives a crash is
the per-shard Paxos groups' chosen prefixes.  This module is the recovery
orchestration:

1. every shard group (re-)elects a leader among its up nodes and its chosen
   prefix is read — both require a majority per group, so recovery below
   quorum surfaces as :class:`~repro.errors.QuorumUnavailableError`;
2. the prefixes are merged into commit *rounds* keyed by global version,
   plus the highest replicated GC marker;
3. rounds interrupted mid-flush (present on some but not all touched
   groups) are **completed**: the surviving entry carries the full writeset
   and touched-shard set, so recovery appends it to the missing groups —
   deterministically finishing what the crashed coordinator started.  A
   round that reached *no* group simply never happened: its global version
   was never acknowledged and is re-allocated by the rebuilt sequencer;
4. the volatile coordinator is rebuilt by
   :meth:`~repro.core.sharding.ShardedCertifier.rebuild` — dense-version
   replay through the idempotent admit path — and the GC horizon is
   restored from the replicated markers;
5. the exactly-once commit table is rebuilt from the entries' ``tx_id``
   tokens, so client retries of rounds that survived the crash are answered
   instead of re-certified.

Every step is idempotent, so a crash *during* recovery (the
``mid-directory-rebuild`` fault-injection point, via ``record_hook``) is
handled by simply running :func:`recover_sharded_certifier` again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.consensus.sharded import (
    ENTRY_GC,
    ReplicatedShardedCertifier,
    ShardLogEntry,
)
from repro.core.sharding import ShardedCertifier


@dataclass
class ShardedCertifierRecoveryReport:
    """Outcome of one sharded-certifier coordinator recovery."""

    num_shards: int
    #: Post-recovery leader of each shard's Paxos group, shard order.
    shard_leader_ids: tuple[int, ...]
    #: Total chosen entries read across all groups (commit + GC markers).
    entries_scanned: int
    #: Commit rounds installed in the rebuilt directory.
    rounds_recovered: int
    #: Rounds that were interrupted mid-flush and finished by recovery.
    rounds_completed: int
    #: Group appends performed to finish those rounds.
    fragments_replayed: int
    #: Restored GC low-water horizon (highest replicated GC marker).
    pruned_version: int
    #: Rebuilt global sequencer position (== highest recovered commit).
    system_version: int
    #: Rebuilt contiguous durability frontier.
    durable_version: int
    #: Whether every shard group still has a majority after recovery.
    group_has_quorum: bool
    #: Highest snapshot horizon adopted (0 = no group was compacted).
    snapshot_version: int = 0
    #: Shard snapshots found behind truncated logs and checksum-validated.
    snapshots_validated: int = 0


def recover_sharded_certifier(
    certifier: ReplicatedShardedCertifier,
    *,
    record_hook: Callable[[int], None] | None = None,
) -> ShardedCertifierRecoveryReport:
    """Rebuild ``certifier``'s crashed coordinator from its shard groups.

    Safe to call again after a failure part-way through (including a
    ``record_hook`` that raised): group-side round completion only appends
    entries that are still missing, and the volatile rebuild starts from
    scratch each time.  Raises :class:`~repro.errors.QuorumUnavailableError`
    if any shard group lacks a majority.
    """
    groups = certifier.groups
    num_shards = groups.num_shards

    leaders = tuple(groups.ensure_leader(shard_id) for shard_id in range(num_shards))
    per_shard = [groups.chosen_entries(shard_id) for shard_id in range(num_shards)]
    entries_scanned = sum(len(entries) for entries in per_shard)

    # Compacted groups hold a snapshot behind their truncation point: the
    # recovered directory starts at the highest snapshot horizon, and entries
    # at or below it on *less*-truncated groups are skipped — their effect is
    # already folded into the snapshot, and completing such a round onto a
    # truncated group would append history out of order.
    snapshots = []
    for shard_id in range(num_shards):
        snapshot = groups.snapshot_at(shard_id)
        if snapshot is not None:
            snapshot.validate()
            snapshots.append(snapshot)
    base_version = max((snap.global_version for snap in snapshots), default=0)

    rounds: dict[int, ShardLogEntry] = {}
    presence: dict[int, set[int]] = {}
    pruned_to = base_version
    for shard_id, entries in enumerate(per_shard):
        for entry in entries:
            if entry.global_version <= base_version:
                continue
            if entry.kind == ENTRY_GC:
                # A GC round interrupted mid-append leaves the marker on a
                # subset of groups; taking the maximum over all copies
                # completes the round — every shard re-prunes to the decided
                # horizon, exactly as the crashed coordinator would have.
                pruned_to = max(pruned_to, entry.global_version)
                continue
            rounds.setdefault(entry.global_version, entry)
            presence.setdefault(entry.global_version, set()).add(shard_id)

    rounds_completed = 0
    fragments_replayed = 0
    for version in sorted(rounds):
        entry = rounds[version]
        missing = [shard_id for shard_id in entry.touched
                   if shard_id not in presence[version]]
        if missing:
            rounds_completed += 1
            for shard_id in missing:
                groups.append(shard_id, entry)
                presence[version].add(shard_id)
                fragments_replayed += 1

    ordered = [
        (version, rounds[version].writeset, rounds[version].origin_replica,
         rounds[version].certified_back_to)
        for version in sorted(rounds)
    ]
    core = ShardedCertifier.rebuild(
        num_shards,
        ordered,
        pruned_to=pruned_to,
        base_version=base_version,
        record_hook=record_hook,
        **certifier.rebuild_parameters(),
    )
    # Acks for rounds at or below the snapshot horizon come from the
    # snapshots (their log entries are gone); acks above it from the suffix.
    # The live table is horizon-bound — ``collect_garbage`` drops acks at or
    # below the pruned version — so the rebuilt table must be too: replaying
    # a retained-but-pruned round's tx_id would resurrect a dropped ack.
    committed_tx: dict[object, int] = {}
    for snapshot in snapshots:
        committed_tx.update(dict(snapshot.committed_tx))
    for version, entry in rounds.items():
        if entry.tx_id is not None:
            committed_tx[entry.tx_id] = version
    committed_tx = {tx: version for tx, version in committed_tx.items()
                    if version > pruned_to}
    certifier.adopt_core(core, committed_tx)
    # The low-water-mark inputs survive in the snapshots too: without them a
    # recovered coordinator could never GC again until every replica checked
    # back in.  note_replica_version is max-monotone, so replaying stale
    # watermarks is harmless.
    for snapshot in snapshots:
        for replica, version in snapshot.replica_versions:
            certifier.note_replica_version(replica, version)

    return ShardedCertifierRecoveryReport(
        num_shards=num_shards,
        shard_leader_ids=leaders,
        entries_scanned=entries_scanned,
        rounds_recovered=len(rounds),
        rounds_completed=rounds_completed,
        fragments_replayed=fragments_replayed,
        pruned_version=core.pruned_version,
        system_version=core.system_version.version,
        durable_version=core.durable_version,
        group_has_quorum=groups.all_have_quorum(),
        snapshot_version=base_version,
        snapshots_validated=len(snapshots),
    )
