"""Replicated snapshots, log compaction, and anti-entropy bootstrap.

The per-shard Paxos logs of :mod:`repro.consensus.sharded` grow without
bound unless something folds their prefix into a snapshot.  The paper's
state-transfer story (Section 9.6) is that certifier recovery is
"essentially a file transfer": a joining node receives a snapshot of the
certifier state plus the retained log suffix, never a replay of the full
history.  This module supplies the three pieces:

* :class:`ShardSnapshot` / :func:`capture_shard_snapshot` — a
  self-validating snapshot of one shard's certifier state (horizon,
  local↔global maps, replica watermarks, exactly-once acks) captured at the
  GC marker, in the style of :class:`repro.engine.checkpoint.Checkpoint`;
* :func:`compact_certifier` — truncate every shard group's replicated log
  beneath its snapshot slot (down nodes keep their longer logs and adopt
  the snapshot via anti-entropy when they return);
* :func:`plan_node_bootstrap` / :func:`bootstrap_group_node` — the
  recovery-plan / downloader / verifier path by which a brand-new or
  long-dead group node joins from snapshot + suffix, with checksum-mismatch
  re-fetch and idempotent crash-mid-install retry.

:class:`StateTransferPackage` is the coordinator-level analogue: the whole
retained certifier state as one checksummed unit, used by the middleware to
seed a warm standby without access to the live directory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Callable

from repro.consensus.sharded import ReplicatedShardedCertifier, ShardPaxosGroups
from repro.core.sharding import ShardedCertifier
from repro.errors import RecoveryError
from repro.recovery.timings import RecoveryTimingModel

#: Crash points fired by :func:`compact_certifier` (a raising hook models a
#: coordinator crash at that protocol boundary, exactly like the certify
#: path's ``pre-flush``/``mid-flush``/``post-flush`` seams).
COMPACTION_CRASH_POINTS = ("pre-compact", "mid-compact", "post-compact")

#: Crash points fired by :func:`bootstrap_group_node` inside the transfer.
BOOTSTRAP_CRASH_POINTS = ("pre-transfer", "mid-transfer", "post-transfer")


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's certifier state at its GC horizon, self-validating.

    Covers the shard group's log slots ``[0, up_to_slot)``: every commit
    entry at or below :attr:`global_version` is folded in (the coordinator
    has already pruned them, so the snapshot records the *horizon*, the
    shard-local frontier at that horizon, the replica watermarks that
    justified pruning, and the exactly-once acks still answerable), and the
    retained suffix above it replays through the idempotent rebuild path.
    """

    shard_id: int
    #: The GC horizon ``G`` the snapshot was captured at (global versions).
    global_version: int
    #: The shard-local frontier at ``G`` (``local_horizon(G)``).
    local_version: int
    #: First log slot *not* covered — the group truncates to this slot.
    up_to_slot: int
    #: Log entries folded into the snapshot (``up_to_slot - base`` at capture).
    entries_covered: int
    #: Exactly-once acks at or below ``G``: ``(tx_id, commit_version)``.
    committed_tx: tuple[tuple[object, int], ...] = ()
    #: Replica applied-version watermarks: ``(replica, version)``.
    replica_versions: tuple[tuple[str, int], ...] = ()
    checksum: str = ""
    complete: bool = True

    @staticmethod
    def _compute_checksum(shard_id: int, global_version: int, local_version: int,
                          up_to_slot: int, entries_covered: int,
                          committed_tx: tuple[tuple[object, int], ...],
                          replica_versions: tuple[tuple[str, int], ...]) -> str:
        canonical = json.dumps(
            {
                "shard": shard_id,
                "global": global_version,
                "local": local_version,
                "slot": up_to_slot,
                "covered": entries_covered,
                "acks": [[repr(tx), version] for tx, version in committed_tx],
                "replicas": [[name, version] for name, version in replica_versions],
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def validate(self) -> None:
        """Raise :class:`RecoveryError` when truncated or corrupt."""
        if not self.complete:
            raise RecoveryError(
                f"shard {self.shard_id} snapshot at version "
                f"{self.global_version} is incomplete"
            )
        expected = self._compute_checksum(
            self.shard_id, self.global_version, self.local_version,
            self.up_to_slot, self.entries_covered,
            self.committed_tx, self.replica_versions,
        )
        if expected != self.checksum:
            raise RecoveryError(
                f"shard {self.shard_id} snapshot at version "
                f"{self.global_version} failed its checksum"
            )

    def corrupted_copy(self) -> "ShardSnapshot":
        """A deliberately broken copy (crash-during-transfer injection)."""
        return replace(self, complete=False)

    def size_bytes(self) -> int:
        """Deterministic approximate wire size (drives the timing model)."""
        total = 96  # fixed header: ids, versions, slot, checksum
        for tx, _version in self.committed_tx:
            total += 24 + len(repr(tx))
        for name, _version in self.replica_versions:
            total += 16 + len(name)
        return total


def capture_shard_snapshot(certifier: ReplicatedShardedCertifier,
                           shard_id: int) -> ShardSnapshot:
    """Snapshot one shard's certifier state at the current GC horizon.

    The horizon is the coordinator's pruned version — everything at or below
    it is already unreachable through the volatile directory, so folding the
    matching log prefix into the snapshot loses nothing.  The covered prefix
    is the run of chosen entries whose ``global_version`` is at or below the
    horizon; a GC marker deeper in the suffix is harmless (recovery takes
    the max of the snapshot horizon and surviving markers).
    """
    if certifier.crashed:
        raise RecoveryError("cannot snapshot a crashed coordinator")
    core = certifier.core
    horizon = core.pruned_version
    entries = certifier.groups.chosen_entries(shard_id)
    base = certifier.groups.compaction_base(shard_id)
    covered = 0
    for entry in entries:
        if entry.global_version > horizon:
            break
        covered += 1
    committed_tx = tuple(sorted(
        ((tx, version) for tx, version in certifier.committed_acks().items()
         if version <= horizon),
        key=lambda item: (item[1], repr(item[0])),
    ))
    replica_versions = tuple(sorted(core.replica_watermarks().items()))
    local_version = core.shards[shard_id].local_horizon(horizon)
    checksum = ShardSnapshot._compute_checksum(
        shard_id, horizon, local_version, base + covered, covered,
        committed_tx, replica_versions,
    )
    return ShardSnapshot(
        shard_id=shard_id,
        global_version=horizon,
        local_version=local_version,
        up_to_slot=base + covered,
        entries_covered=covered,
        committed_tx=committed_tx,
        replica_versions=replica_versions,
        checksum=checksum,
    )


@dataclass(frozen=True)
class CompactionReport:
    """What one :func:`compact_certifier` round did."""

    snapshots: tuple[ShardSnapshot, ...]
    entries_truncated: int
    shards_compacted: int
    #: Shards skipped because their group lacked a majority (compaction is
    #: background work; it must never stall on a degraded shard).
    shards_skipped_no_quorum: int


def compact_certifier(certifier: ReplicatedShardedCertifier,
                      *, crash_hook: Callable[[str], None] | None = None,
                      ) -> CompactionReport:
    """Snapshot every shard at the GC horizon and truncate its group log.

    Idempotent: a shard whose covered prefix is empty (nothing new below
    the horizon) is left alone, so retrying after a crash mid-compaction
    simply finishes the shards the first attempt missed.  ``crash_hook``
    defaults to the certifier's own hook and fires at the
    :data:`COMPACTION_CRASH_POINTS` seams.
    """
    if certifier.crashed:
        raise RecoveryError("cannot compact a crashed coordinator")
    hook = crash_hook if crash_hook is not None else certifier.crash_hook

    def fire(point: str) -> None:
        if hook is not None:
            hook(point)

    fire("pre-compact")
    snapshots: list[ShardSnapshot] = []
    entries_truncated = 0
    skipped = 0
    for shard_id in range(certifier.num_shards):
        if not certifier.groups.has_quorum(shard_id):
            skipped += 1
            continue
        snapshot = capture_shard_snapshot(certifier, shard_id)
        if snapshot.entries_covered == 0:
            continue
        entries_truncated += certifier.groups.truncate_group(
            shard_id, snapshot.up_to_slot, snapshot)
        snapshots.append(snapshot)
        if len(snapshots) == 1:
            fire("mid-compact")
    if snapshots:
        certifier.stats.compactions += 1
    fire("post-compact")
    return CompactionReport(
        snapshots=tuple(snapshots),
        entries_truncated=entries_truncated,
        shards_compacted=len(snapshots),
        shards_skipped_no_quorum=skipped,
    )


@dataclass(frozen=True)
class BootstrapPlan:
    """The recovery plan for one group node: what a join will transfer."""

    shard_id: int
    node_id: int
    #: The joining node's known contiguous prefix (absolute slots).
    known_length: int
    #: Whether the group compacted past the node's prefix — the node cannot
    #: be repaired by suffix copy alone and must install the snapshot.
    needs_snapshot: bool
    #: The truncation point the snapshot covers (0 when no snapshot needed).
    snapshot_slot: int
    snapshot_bytes: int
    #: Retained log entries the transfer will copy.
    suffix_entries: int
    #: Modeled wall-clock seconds for the transfer (Section 9.6 rates).
    estimated_seconds: float


def plan_node_bootstrap(groups: ShardPaxosGroups, shard_id: int, node_id: int,
                        *, model: RecoveryTimingModel | None = None,
                        ) -> BootstrapPlan:
    """Plan the state transfer that would bring ``node_id`` up to date."""
    model = model if model is not None else RecoveryTimingModel()
    group = groups.group(shard_id)
    node = None
    for candidate in group.nodes:
        if candidate.node_id == node_id:
            node = candidate
            break
    if node is None:
        raise KeyError(f"shard {shard_id} has no node {node_id}")
    known = node.known_length()
    base = groups.compaction_base(shard_id)
    peers = [n for n in group.up_nodes() if n.node_id != node_id]
    frontier = max((peer.known_length() for peer in peers), default=known)
    needs_snapshot = base > known
    snapshot = groups.snapshot_at(shard_id) if needs_snapshot else None
    snapshot_bytes = snapshot.size_bytes() if snapshot is not None else 0
    suffix_entries = max(0, frontier - max(known, base))
    return BootstrapPlan(
        shard_id=shard_id,
        node_id=node_id,
        known_length=known,
        needs_snapshot=needs_snapshot,
        snapshot_slot=base if needs_snapshot else 0,
        snapshot_bytes=snapshot_bytes,
        suffix_entries=suffix_entries,
        estimated_seconds=model.certifier_bootstrap_seconds(
            snapshot_bytes, suffix_entries),
    )


@dataclass(frozen=True)
class BootstrapReport:
    """What one :func:`bootstrap_group_node` join actually did."""

    plan: BootstrapPlan
    #: Snapshot downloads attempted (``> 1`` means a corrupt copy was
    #: detected by its checksum and re-fetched).
    fetch_attempts: int
    snapshot_installed: bool
    entries_transferred: int
    #: The joined node's prefix matches the longest up peer's.
    verified: bool


def bootstrap_group_node(groups: ShardPaxosGroups, shard_id: int, node_id: int,
                         *, fetch_hook: Callable[[int, ShardSnapshot], ShardSnapshot | None] | None = None,
                         crash_hook: Callable[[str], None] | None = None,
                         max_fetch_attempts: int = 3,
                         model: RecoveryTimingModel | None = None,
                         ) -> BootstrapReport:
    """Anti-entropy join: bring a new or long-dead group node up to date.

    Plan, download, verify: the snapshot (when the group compacted past the
    node's prefix) is validated *before* installation — a checksum mismatch
    triggers a re-fetch, up to ``max_fetch_attempts``, and only then fails.
    ``fetch_hook(attempt, snapshot)`` may substitute the fetched copy (tests
    inject corrupt transfers this way); ``crash_hook`` fires at the
    :data:`BOOTSTRAP_CRASH_POINTS` seams, and a crash at any of them is
    repaired by simply calling this function again — snapshot installation
    and suffix copy are both idempotent.
    """
    plan = plan_node_bootstrap(groups, shard_id, node_id, model=model)
    group = groups.group(shard_id)
    node = next(n for n in group.nodes if n.node_id == node_id)

    def fire(point: str) -> None:
        if crash_hook is not None:
            crash_hook(point)

    node.recover()
    fire("pre-transfer")
    fetch_attempts = 0
    installed = False
    if groups.compaction_base(shard_id) > node.known_length():
        authoritative = groups.snapshot_at(shard_id)
        if authoritative is None:
            raise RecoveryError(
                f"shard {shard_id} group is truncated past node {node_id}'s "
                f"prefix but no up node holds the covering snapshot"
            )
        while True:
            fetch_attempts += 1
            fetched = authoritative
            if fetch_hook is not None:
                substituted = fetch_hook(fetch_attempts, fetched)
                if substituted is not None:
                    fetched = substituted
            try:
                fetched.validate()
            except RecoveryError:
                if fetch_attempts >= max_fetch_attempts:
                    raise RecoveryError(
                        f"shard {shard_id} snapshot transfer to node "
                        f"{node_id} failed validation "
                        f"{fetch_attempts} time(s); giving up"
                    )
                continue
            break
        installed = node.install_snapshot(fetched, plan.snapshot_slot or
                                          groups.compaction_base(shard_id))
    fire("mid-transfer")
    transferred = group.catch_up(node)
    groups.stats[shard_id].state_transfers += 1
    peers = [n for n in group.up_nodes() if n.node_id != node_id]
    frontier = max((peer.known_length() for peer in peers), default=0)
    verified = node.known_length() >= frontier
    fire("post-transfer")
    return BootstrapReport(
        plan=plan,
        fetch_attempts=fetch_attempts,
        snapshot_installed=installed,
        entries_transferred=transferred,
        verified=verified,
    )


@dataclass(frozen=True)
class StateTransferPackage:
    """The whole retained certifier state as one checksummed transfer unit.

    What a warm standby downloads to seed itself: the GC horizon, every
    retained commit round above it, and the replica watermarks — enough for
    :meth:`ShardedCertifier.rebuild <repro.core.sharding.ShardedCertifier.
    rebuild>` to reconstruct an equivalent coordinator.
    """

    num_shards: int
    #: The source's pruned horizon; rounds start at ``horizon + 1``.
    horizon: int
    #: ``(commit_version, writeset, origin_replica, certified_back_to)``.
    rounds: tuple[tuple[int, object, str, int], ...]
    replica_versions: tuple[tuple[str, int], ...] = ()
    checksum: str = ""
    complete: bool = True

    @staticmethod
    def _compute_checksum(num_shards: int, horizon: int,
                          rounds: tuple[tuple[int, object, str, int], ...],
                          replica_versions: tuple[tuple[str, int], ...]) -> str:
        canonical = json.dumps(
            {
                "shards": num_shards,
                "horizon": horizon,
                "rounds": [
                    [version, sorted(repr(item_id) for item_id in writeset.item_ids),
                     origin, back_to]
                    for version, writeset, origin, back_to in rounds
                ],
                "replicas": [[name, version] for name, version in replica_versions],
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def capture(cls, core: ShardedCertifier) -> "StateTransferPackage":
        """Package the coordinator's retained state for transfer."""
        rounds = tuple(
            (record.commit_version, record.writeset, record.origin_replica,
             core.certified_back_to(record.commit_version))
            for record in core.records_after(core.pruned_version)
        )
        replica_versions = tuple(sorted(core.replica_watermarks().items()))
        checksum = cls._compute_checksum(
            core.num_shards, core.pruned_version, rounds, replica_versions)
        return cls(
            num_shards=core.num_shards,
            horizon=core.pruned_version,
            rounds=rounds,
            replica_versions=replica_versions,
            checksum=checksum,
        )

    def validate(self) -> None:
        """Raise :class:`RecoveryError` when truncated or corrupt."""
        if not self.complete:
            raise RecoveryError(
                f"state-transfer package at horizon {self.horizon} is incomplete"
            )
        expected = self._compute_checksum(
            self.num_shards, self.horizon, self.rounds, self.replica_versions)
        if expected != self.checksum:
            raise RecoveryError(
                f"state-transfer package at horizon {self.horizon} "
                f"failed its checksum"
            )

    def corrupted_copy(self) -> "StateTransferPackage":
        """A deliberately broken copy (transfer-crash injection in tests)."""
        return replace(self, complete=False)

    def size_bytes(self) -> int:
        """Deterministic approximate wire size (drives the timing model)."""
        total = 96
        for _version, writeset, origin, _back_to in self.rounds:
            total += 32 + len(origin) + writeset.size_bytes()
        for name, _version in self.replica_versions:
            total += 16 + len(name)
        return total
