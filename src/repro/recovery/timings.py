"""The recovery-time model of Section 9.6.

The paper reports concrete recovery times for the TPC-W configuration at 15
replicas.  They all reduce to simple rate arithmetic, which this module
captures so the recovery bench can regenerate the same table and so users
can plug in their own parameters:

* Tashkent-MW: dumping a complete copy of the ~700 MB database takes about
  230 s (throughput on that replica degrades ~13% meanwhile); restoring from
  the dump takes about 140 s.
* Base / Tashkent-API: the database recovers with its own WAL redo in 2-4 s.
* All systems: the proxy then replays missed remote writesets at about 900
  writesets/s; with 15 replicas producing ~56 writesets/s, H hours of down
  time need roughly 222*H seconds of replay.
* Certifier: the log grows ~201,600 writesets/hour (~56 MB/h at 275 B each);
  transferring it over the LAN takes about 1 s per hour of down time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RecoveryTimings:
    """Computed recovery times (seconds) for one scenario."""

    dump_seconds: float
    restore_seconds: float
    wal_recovery_seconds: float
    writeset_replay_seconds: float
    certifier_transfer_seconds: float

    @property
    def tashkent_mw_total_seconds(self) -> float:
        """Restore from dump, then catch up by replaying writesets."""
        return self.restore_seconds + self.writeset_replay_seconds

    @property
    def base_total_seconds(self) -> float:
        """WAL recovery, then catch up by replaying writesets."""
        return self.wal_recovery_seconds + self.writeset_replay_seconds


@dataclass(frozen=True)
class RecoveryTimingModel:
    """Rates calibrated to the paper's measurements."""

    #: Database size for the TPC-W configuration (bytes).
    database_size_bytes: int = 700 * 1024 * 1024
    #: Dump rate implied by "230 seconds to dump a complete copy".
    dump_rate_bytes_per_s: float = (700 * 1024 * 1024) / 230.0
    #: Restore rate implied by "140 seconds to restore".
    restore_rate_bytes_per_s: float = (700 * 1024 * 1024) / 140.0
    #: Throughput degradation while dumping (13%).
    dump_degradation: float = 0.13
    #: Standalone WAL recovery takes "a few seconds (2-4 seconds)".
    wal_recovery_seconds: float = 3.0
    #: The proxy applies batched remote writesets at 900 writesets/s.
    writeset_apply_rate_per_s: float = 900.0
    #: System-wide update rate at 15 replicas for TPC-W (56 writesets/s).
    update_rate_per_s: float = 56.0
    #: Average writeset size (TPC-W, bytes).
    writeset_size_bytes: int = 275
    #: LAN transfer rate for certifier state transfer (bytes/s).
    lan_transfer_rate_bytes_per_s: float = 60 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.writeset_apply_rate_per_s <= 0 or self.update_rate_per_s < 0:
            raise ConfigurationError("rates must be positive")

    # -- individual components ---------------------------------------------------------

    def dump_seconds(self, database_size_bytes: int | None = None) -> float:
        size = self.database_size_bytes if database_size_bytes is None else database_size_bytes
        return size / self.dump_rate_bytes_per_s

    def restore_seconds(self, database_size_bytes: int | None = None) -> float:
        size = self.database_size_bytes if database_size_bytes is None else database_size_bytes
        return size / self.restore_rate_bytes_per_s

    def writesets_missed(self, downtime_hours: float) -> int:
        return int(self.update_rate_per_s * downtime_hours * 3600.0)

    def writeset_replay_seconds(self, downtime_hours: float) -> float:
        """≈ 222*H seconds for H hours of down time at the paper's rates."""
        return self.writesets_missed(downtime_hours) / self.writeset_apply_rate_per_s

    def certifier_log_growth_bytes_per_hour(self) -> float:
        return self.update_rate_per_s * 3600.0 * self.writeset_size_bytes

    def certifier_transfer_seconds(self, downtime_hours: float) -> float:
        """"about 1 second ... for each hour of down time" on the paper's LAN."""
        return (
            self.certifier_log_growth_bytes_per_hour() * downtime_hours
            / self.lan_transfer_rate_bytes_per_s
        )

    # -- state transfer (snapshot + log suffix) -----------------------------------------

    def snapshot_transfer_seconds(self, snapshot_bytes: int) -> float:
        """Shipping a certifier snapshot over the LAN."""
        return snapshot_bytes / self.lan_transfer_rate_bytes_per_s

    def log_suffix_transfer_seconds(self, suffix_entries: int,
                                    entry_bytes: int | None = None) -> float:
        """Shipping the retained log suffix (``suffix_entries`` writesets)."""
        per_entry = self.writeset_size_bytes if entry_bytes is None else entry_bytes
        return suffix_entries * per_entry / self.lan_transfer_rate_bytes_per_s

    def certifier_bootstrap_seconds(self, snapshot_bytes: int,
                                    suffix_entries: int,
                                    entry_bytes: int | None = None) -> float:
        """Total state-transfer time for a joining certifier node.

        Certifier recovery is "essentially a file transfer" (Section 9.6):
        snapshot plus retained suffix over the LAN.  With a zero-byte
        snapshot and one hour's worth of entries this reduces exactly to
        :meth:`certifier_transfer_seconds` at one hour — "about 1 second
        ... for each hour of down time".
        """
        return (
            self.snapshot_transfer_seconds(snapshot_bytes)
            + self.log_suffix_transfer_seconds(suffix_entries, entry_bytes)
        )

    # -- the full table -------------------------------------------------------------------

    def timings(self, *, downtime_hours: float = 1.0,
                database_size_bytes: int | None = None) -> RecoveryTimings:
        return RecoveryTimings(
            dump_seconds=self.dump_seconds(database_size_bytes),
            restore_seconds=self.restore_seconds(database_size_bytes),
            wal_recovery_seconds=self.wal_recovery_seconds,
            writeset_replay_seconds=self.writeset_replay_seconds(downtime_hours),
            certifier_transfer_seconds=self.certifier_transfer_seconds(downtime_hours),
        )
