"""Routed client sessions for the functional middleware stack.

A :class:`RoutedSession` is the scheduler-fronted counterpart of
:class:`~repro.middleware.client_api.ClientSession`: instead of being pinned
to one replica's proxy for its lifetime, it asks the cluster scheduler for a
replica at every ``begin`` and releases its admission slot at commit or
abort.  The statement API is identical, so workload bodies written against
``ClientSession`` run unchanged.

Because the functional stack cannot predict a transaction's writes before
executing them, ``begin`` accepts an optional ``items`` hint — the
``(table, key)`` identities the transaction intends to write — which is what
a conflict-aware policy groups on.  Without a hint the policy degrades to
its load-based tie-break, which is still correct (routing never affects
safety, only the abort rate).

See ``docs/scheduler.md`` for usage guidance and
:meth:`repro.middleware.systems.ReplicatedSystem.routed_session` for the
convenience constructor.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.balancer.policies import RoutingRequest
from repro.balancer.scheduler import ClusterScheduler, RouteTicket
from repro.errors import InvalidTransactionState, TransactionAborted
from repro.middleware.client_api import ClientSession
from repro.middleware.proxy import CommitOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.middleware.systems import ReplicatedSystem


def _normalize_items(items: Iterable[tuple[str, object]] | None) -> frozenset:
    if not items:
        return frozenset()
    return frozenset((table, key) for table, key in items)


class RoutedSession:
    """A client connection routed through the cluster scheduler.

    Each transaction may run on a different replica; between transactions
    the session holds no replica at all (and no admission slot).
    """

    def __init__(self, system: "ReplicatedSystem", scheduler: ClusterScheduler,
                 *, client_name: str = "client") -> None:
        self.system = system
        self.scheduler = scheduler
        self.client_name = client_name
        self._inner: ClientSession | None = None
        self._ticket: RouteTicket | None = None
        #: Replica index of the last (or current) routed transaction.
        self.last_replica_index: int | None = None
        self.commits = 0
        self.aborts = 0

    # -- transaction control -----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._inner is not None

    def begin(self, *, items: Iterable[tuple[str, object]] | None = None,
              readonly: bool = False) -> int:
        """Route and start a transaction; returns the chosen replica index.

        ``items`` is the optional write-intent hint for conflict-aware
        policies.  Raises :class:`~repro.errors.AdmissionTimeoutError` when
        every replica is at its multiprogramming limit (the functional stack
        cannot block on the admission queue) and
        :class:`~repro.errors.NoHealthyReplicaError` when no replica is up.
        """
        if self._inner is not None:
            raise InvalidTransactionState(
                f"client {self.client_name!r} already has an open transaction"
            )
        request = RoutingRequest(
            client=self.client_name,
            readonly=readonly,
            item_ids=_normalize_items(items),
        )
        ticket = self.scheduler.submit(request, queue=False)
        assert ticket.replica_index is not None
        replica = self.system.replicas[ticket.replica_index]
        inner = ClientSession(replica.proxy, client_name=self.client_name)
        inner.begin()
        self._inner = inner
        self._ticket = ticket
        self.last_replica_index = ticket.replica_index
        return ticket.replica_index

    def commit(self) -> CommitOutcome:
        inner = self._require_txn()
        try:
            outcome = inner.commit()
        finally:
            self._release()
        if outcome.committed:
            self.commits += 1
        else:
            self.aborts += 1
        return outcome

    def abort(self) -> None:
        inner = self._require_txn()
        try:
            inner.abort()
        finally:
            self._release()
        self.aborts += 1

    def _release(self) -> None:
        if self._ticket is not None:
            self.scheduler.release(self._ticket)
        self._inner = None
        self._ticket = None

    # -- statements -----------------------------------------------------------------

    def read(self, table: str, key: object) -> Mapping[str, object] | None:
        return self._require_txn().read(table, key)

    def scan(self, table: str) -> list[tuple[object, Mapping[str, object]]]:
        return self._require_txn().scan(table)

    def insert(self, table: str, key: object, **values: object) -> None:
        self._guarded(lambda s: s.insert(table, key, **values))

    def update(self, table: str, key: object, **values: object) -> None:
        self._guarded(lambda s: s.update(table, key, **values))

    def delete(self, table: str, key: object) -> None:
        self._guarded(lambda s: s.delete(table, key))

    def _guarded(self, statement) -> None:
        inner = self._require_txn()
        try:
            statement(inner)
        except TransactionAborted:
            # The inner session already dropped its transaction handle
            # (conflict, deadlock victim, eager pre-certification); free the
            # admission slot so the client can retry through a fresh route.
            self._release()
            self.aborts += 1
            raise

    # -- convenience ------------------------------------------------------------------

    @contextmanager
    def transaction(self, *, items: Iterable[tuple[str, object]] | None = None
                    ) -> Iterator["RoutedSession"]:
        """Context manager: route + begin, then commit on success."""
        self.begin(items=items)
        try:
            yield self
        except Exception:
            if self._inner is not None:
                self.abort()
            raise
        else:
            if self._inner is not None:
                self.commit()

    def _require_txn(self) -> ClientSession:
        if self._inner is None:
            raise InvalidTransactionState(
                f"client {self.client_name!r} has no open transaction"
            )
        return self._inner

    def __repr__(self) -> str:
        return (
            f"RoutedSession(client={self.client_name!r}, commits={self.commits}, "
            f"aborts={self.aborts}, open={self.in_transaction}, "
            f"last_replica={self.last_replica_index})"
        )
