"""The cluster scheduler: admission-controlled transaction routing.

The scheduler is the cluster's front door.  It keeps one
:class:`ReplicaEndpoint` per replica — live health, the in-flight count it
maintains itself, and callables reading the replica's applied version and
transport lag — and, for every incoming transaction, asks its
:class:`~repro.balancer.policies.RoutingPolicy` for a preference order, then
enforces **per-replica admission control**: at most ``multiprogramming_limit``
transactions run on a replica at once, and requests that find every replica
full wait in a bounded FIFO queue until a slot frees or their deadline
passes.

Like the transport layer, the scheduler is timing-free: every mutating call
takes an explicit ``now`` and time only moves when the caller says so.  The
functional middleware calls it inline (and never queues — a single-threaded
caller waiting on itself would deadlock, so it submits with ``queue=False``);
the simulated cluster drives it from client processes with virtual
timestamps and uses the :attr:`RouteTicket.on_admit` callback to wake a
queued client when :meth:`ClusterScheduler.release` promotes it.

See ``docs/scheduler.md`` for the policy catalogue and sizing guidance.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.balancer.policies import (
    ConflictAwarePolicy,
    ReplicaView,
    RoutingPolicy,
    RoutingRequest,
)
from repro.errors import (
    AdmissionTimeoutError,
    ConfigurationError,
    NoHealthyReplicaError,
    SchedulerSaturatedError,
)


class TicketState(str, enum.Enum):
    """Lifecycle of one routed transaction at the scheduler."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RELEASED = "released"
    TIMED_OUT = "timed-out"
    CANCELLED = "cancelled"


@dataclass
class RouteTicket:
    """One routed transaction's handle on the scheduler.

    Admitted tickets carry the chosen ``replica_index`` and must be given
    back via :meth:`ClusterScheduler.release` when the transaction finishes
    (commit or abort).  Queued tickets are promoted by ``release`` as slots
    free up; ``on_admit`` (if set) is called with the ticket at promotion
    time so a simulated client can be woken.
    """

    request: RoutingRequest
    state: TicketState = TicketState.QUEUED
    replica_index: int | None = None
    enqueued_at: float = 0.0
    deadline: float | None = None
    #: Virtual time spent waiting in the admission queue (set at promotion).
    queue_wait_ms: float = 0.0
    on_admit: Callable[["RouteTicket"], None] | None = None

    @property
    def admitted(self) -> bool:
        return self.state is TicketState.ADMITTED


class ReplicaEndpoint:
    """The scheduler's live view of one replica."""

    def __init__(
        self,
        index: int,
        name: str,
        *,
        applied_version: Callable[[], int] = lambda: 0,
        lag: Callable[[], int] = lambda: 0,
    ) -> None:
        self.index = index
        self.name = name
        self._applied_version = applied_version
        self._lag = lag
        self.healthy = True
        self.in_flight = 0
        self.routed = 0

    def view(self) -> ReplicaView:
        return ReplicaView(
            index=self.index,
            name=self.name,
            in_flight=self.in_flight,
            applied_version=self._applied_version(),
            lag=self._lag(),
            healthy=self.healthy,
        )

    def __repr__(self) -> str:
        state = "up" if self.healthy else "down"
        return (f"ReplicaEndpoint(index={self.index}, name={self.name!r}, "
                f"{state}, in_flight={self.in_flight})")


@dataclass
class SchedulerStats:
    """Counters the benchmarks and tests read off a scheduler."""

    submitted: int = 0
    admitted_immediately: int = 0
    queued: int = 0
    admitted_from_queue: int = 0
    admission_timeouts: int = 0
    saturation_rejections: int = 0
    cancelled: int = 0
    failovers: int = 0
    #: Routed transactions per replica name.
    routed_per_replica: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return dict(self.__dict__)


class ClusterScheduler:
    """Routes transactions to replicas under per-replica admission control."""

    def __init__(
        self,
        policy: RoutingPolicy,
        *,
        multiprogramming_limit: int | None = None,
        max_queue_depth: int = 64,
        queue_timeout_ms: float = 500.0,
    ) -> None:
        if multiprogramming_limit is not None and multiprogramming_limit < 1:
            raise ConfigurationError("multiprogramming_limit must be >= 1")
        if max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be >= 0")
        if queue_timeout_ms <= 0:
            raise ConfigurationError("queue_timeout_ms must be positive")
        self.policy = policy
        self.multiprogramming_limit = multiprogramming_limit
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_ms = queue_timeout_ms
        self.endpoints: list[ReplicaEndpoint] = []
        self._queue: deque[RouteTicket] = deque()
        self.stats = SchedulerStats()

    # -- topology ------------------------------------------------------------

    def add_replica(
        self,
        name: str,
        *,
        applied_version: Callable[[], int] = lambda: 0,
        lag: Callable[[], int] = lambda: 0,
    ) -> ReplicaEndpoint:
        """Register one replica and return its endpoint handle."""
        endpoint = ReplicaEndpoint(
            len(self.endpoints), name,
            applied_version=applied_version, lag=lag,
        )
        self.endpoints.append(endpoint)
        return endpoint

    def endpoint(self, index: int) -> ReplicaEndpoint:
        return self.endpoints[index]

    def mark_down(self, index: int) -> None:
        """Take a replica out of routing (disconnect / health-check failure).

        In-flight tickets on the replica are the caller's to resolve — use
        :meth:`fail_over` for transactions that had not started executing.
        A conflict-aware policy drops its affinities for the dead replica so
        grouped writers rebuild their affinity on a healthy one.
        """
        endpoint = self.endpoints[index]
        endpoint.healthy = False
        if isinstance(self.policy, ConflictAwarePolicy):
            self.policy.forget_replica(index)

    def mark_up(self, index: int, *, now: float = 0.0) -> list[RouteTicket]:
        """Return a replica to routing; promotes queued waiters onto it."""
        self.endpoints[index].healthy = True
        return self._promote(now)

    # -- admission -----------------------------------------------------------

    def submit(self, request: RoutingRequest, *, now: float = 0.0,
               queue: bool = True) -> RouteTicket:
        """Route one transaction.

        Returns an ``ADMITTED`` ticket when a healthy replica has a free
        slot.  When every healthy replica is at its multiprogramming limit:
        with ``queue=True`` the ticket joins the bounded wait queue (state
        ``QUEUED``; :class:`SchedulerSaturatedError` when the queue is full),
        with ``queue=False`` an :class:`AdmissionTimeoutError` is raised
        immediately — the single-threaded functional caller cannot block.
        Raises :class:`NoHealthyReplicaError` when no replica is routable.
        """
        self.expire_waiters(now)
        self.stats.submitted += 1
        ticket = RouteTicket(request=request, enqueued_at=now)
        index = self._choose(request)
        if index is not None:
            self._admit(ticket, index, now=now)
            self.stats.admitted_immediately += 1
            return ticket
        if not queue:
            raise AdmissionTimeoutError(
                f"no replica has a free multiprogramming slot for "
                f"{request.client!r} (limit {self.multiprogramming_limit})"
            )
        if len(self._queue) >= self.max_queue_depth:
            self.stats.saturation_rejections += 1
            raise SchedulerSaturatedError(
                f"admission queue full ({self.max_queue_depth} waiting)"
            )
        ticket.deadline = now + self.queue_timeout_ms
        self._queue.append(ticket)
        self.stats.queued += 1
        return ticket

    def release(self, ticket: RouteTicket, *, now: float = 0.0) -> list[RouteTicket]:
        """Finish a routed transaction and promote queued waiters.

        Returns the tickets admitted from the queue as a consequence (their
        ``on_admit`` callbacks have already fired).
        """
        if ticket.state is not TicketState.ADMITTED:
            return []
        assert ticket.replica_index is not None
        self.endpoints[ticket.replica_index].in_flight -= 1
        ticket.state = TicketState.RELEASED
        return self._promote(now)

    def cancel(self, ticket: RouteTicket, *, now: float = 0.0) -> None:
        """Withdraw a queued ticket (the caller no longer wants the slot)."""
        if ticket.state is not TicketState.QUEUED:
            return
        ticket.state = TicketState.CANCELLED
        try:
            self._queue.remove(ticket)
        except ValueError:
            pass
        self.stats.cancelled += 1

    def give_up(self, ticket: RouteTicket, *, now: float = 0.0) -> None:
        """A queued caller stops waiting; bucket the exit correctly.

        Counted as an **admission timeout** when the ticket's deadline has
        been reached, as a **cancellation** when the caller withdrew early —
        so ``SchedulerStats.admission_timeouts`` agrees with the
        ``admission-timeout`` aborts the simulated clients record.
        """
        if ticket.state is not TicketState.QUEUED:
            return
        try:
            self._queue.remove(ticket)
        except ValueError:
            pass
        if ticket.deadline is not None and now >= ticket.deadline:
            ticket.state = TicketState.TIMED_OUT
            self.stats.admission_timeouts += 1
        else:
            ticket.state = TicketState.CANCELLED
            self.stats.cancelled += 1

    def expire_waiters(self, now: float) -> list[RouteTicket]:
        """Time out queued tickets whose deadline has passed.

        The comparison is strict: a slot freed at *exactly* the deadline
        still promotes the waiter (:meth:`release` expires before admitting,
        so ``<=`` would time out a ticket a same-instant promotion should
        save).
        """
        expired: list[RouteTicket] = []
        for ticket in list(self._queue):
            if ticket.deadline is not None and ticket.deadline < now:
                ticket.state = TicketState.TIMED_OUT
                self._queue.remove(ticket)
                self.stats.admission_timeouts += 1
                expired.append(ticket)
        return expired

    def fail_over(self, ticket: RouteTicket, *, now: float = 0.0) -> RouteTicket:
        """Re-route an admitted ticket whose replica disconnected mid-route.

        Frees the dead replica's slot and re-admits the ticket on a healthy
        replica (queueing it when all are full).  The same ticket object is
        re-pointed so the caller's handle stays valid.
        """
        if ticket.state is TicketState.ADMITTED and ticket.replica_index is not None:
            self.endpoints[ticket.replica_index].in_flight -= 1
        ticket.state = TicketState.QUEUED
        ticket.replica_index = None
        self.stats.failovers += 1
        index = self._choose(ticket.request)
        if index is not None:
            self._admit(ticket, index, now=now)
            return ticket
        if len(self._queue) >= self.max_queue_depth:
            ticket.state = TicketState.TIMED_OUT
            self.stats.saturation_rejections += 1
            raise SchedulerSaturatedError(
                f"admission queue full ({self.max_queue_depth} waiting)"
            )
        ticket.deadline = now + self.queue_timeout_ms
        self._queue.append(ticket)
        return ticket

    # -- internals -----------------------------------------------------------

    def _healthy_views(self) -> list[ReplicaView]:
        views = [e.view() for e in self.endpoints if e.healthy]
        if not views:
            raise NoHealthyReplicaError(
                f"all {len(self.endpoints)} replicas are marked down"
            )
        return views

    def _has_capacity(self, index: int) -> bool:
        if self.multiprogramming_limit is None:
            return True
        return self.endpoints[index].in_flight < self.multiprogramming_limit

    def _choose(self, request: RoutingRequest) -> int | None:
        """Policy-ranked first healthy replica with a free slot, or None."""
        for index in self.policy.rank(request, self._healthy_views()):
            if self._has_capacity(index):
                return index
        return None

    def _admit(self, ticket: RouteTicket, index: int, *, now: float) -> None:
        endpoint = self.endpoints[index]
        endpoint.in_flight += 1
        endpoint.routed += 1
        ticket.state = TicketState.ADMITTED
        ticket.replica_index = index
        ticket.queue_wait_ms = now - ticket.enqueued_at
        self.stats.routed_per_replica[endpoint.name] = (
            self.stats.routed_per_replica.get(endpoint.name, 0) + 1
        )
        self.policy.note_routed(ticket.request, index)

    def _promote(self, now: float) -> list[RouteTicket]:
        """Admit queued tickets (FIFO) while capacity remains."""
        self.expire_waiters(now)
        admitted: list[RouteTicket] = []
        while self._queue:
            ticket = self._queue[0]
            index = self._choose(ticket.request)
            if index is None:
                break
            self._queue.popleft()
            self._admit(ticket, index, now=now)
            self.stats.admitted_from_queue += 1
            admitted.append(ticket)
            if ticket.on_admit is not None:
                ticket.on_admit(ticket)
        return admitted

    # -- introspection ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def waiting(self) -> Iterable[RouteTicket]:
        return tuple(self._queue)

    def snapshot(self) -> dict[str, object]:
        """Live per-replica signals plus the scheduler counters."""
        return {
            "policy": self.policy.describe(),
            "multiprogramming_limit": self.multiprogramming_limit,
            "queue_depth": self.queue_depth,
            "replicas": [
                {
                    "name": e.name,
                    "healthy": e.healthy,
                    "in_flight": e.in_flight,
                    "routed": e.routed,
                    "applied_version": e._applied_version(),
                    "lag": e._lag(),
                }
                for e in self.endpoints
            ],
            "stats": self.stats.as_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"ClusterScheduler(policy={self.policy.describe()}, "
            f"replicas={len(self.endpoints)}, queue={self.queue_depth})"
        )
