"""The cluster scheduler: conflict- and load-aware transaction routing.

The paper's evaluation statically pins a fixed client population to each
replica.  This package is the dynamic front door that replaces that pinning
for production-style traffic:

* :mod:`repro.balancer.policies` — pluggable routing policies (round-robin,
  least-loaded, staleness-aware, conflict-aware affinity grouping);
* :mod:`repro.balancer.scheduler` — :class:`ClusterScheduler`: per-replica
  admission control with a configurable multiprogramming limit, a bounded
  FIFO wait queue with deadlines, live health/lag signals fed from the
  replicas and their transport subscriptions, and mid-route fail-over;
* :mod:`repro.balancer.session` — :class:`RoutedSession`, the routed
  counterpart of the functional stack's pinned
  :class:`~repro.middleware.client_api.ClientSession`.

Both stacks consume it: the functional middleware via
:meth:`~repro.middleware.systems.ReplicatedSystem.routed_session`, the
simulated cluster via ``ExperimentConfig(routing=...)``.  See
``docs/scheduler.md`` for the policy catalogue and sizing guidance, and
``benchmarks/test_scheduler_routing.py`` for the measured abort-rate and
throughput deltas.
"""

from repro.balancer.policies import (
    ConflictAwarePolicy,
    LeastLoadedPolicy,
    ReplicaView,
    RoundRobinPolicy,
    RoutingPolicy,
    RoutingRequest,
    StalenessAwarePolicy,
    routing_policy_from_name,
)
from repro.balancer.scheduler import (
    ClusterScheduler,
    ReplicaEndpoint,
    RouteTicket,
    SchedulerStats,
    TicketState,
)
from repro.balancer.session import RoutedSession

__all__ = [
    "ClusterScheduler",
    "ConflictAwarePolicy",
    "LeastLoadedPolicy",
    "ReplicaEndpoint",
    "ReplicaView",
    "RoundRobinPolicy",
    "RouteTicket",
    "RoutedSession",
    "RoutingPolicy",
    "RoutingRequest",
    "SchedulerStats",
    "StalenessAwarePolicy",
    "TicketState",
    "routing_policy_from_name",
]
