"""Routing policies: which replica should run the next transaction.

The paper's experiments pin a fixed client population to each replica; the
cluster scheduler replaces that static assignment with a per-transaction
routing decision.  A policy sees one :class:`RoutingRequest` (who is asking,
what the transaction intends to write) and a snapshot of every healthy
replica (:class:`ReplicaView`: in-flight count, applied version, propagation
lag) and returns a *preference order*; the scheduler admits the first
preference with a free multiprogramming slot, so a policy never has to
reason about admission control itself.

Why conflict-aware routing matters under GSI: a replica learns about a
commit only when the next certification response (or a staleness refresh)
reaches it, so every replica trails the certifier head by roughly one
durability round trip.  A client whose consecutive transactions rewrite the
same item is therefore guaranteed a certification abort whenever it is
routed to a replica that has not yet observed its previous commit — the
writeset intersects its own predecessor.  Routing writers of overlapping
item sets to the same replica removes exactly those staleness self-conflicts
(the replica that executed the previous write observed its commit version
in-band) and it is the mechanism behind the abort-rate gap measured by
``benchmarks/test_scheduler_routing.py``.

See ``docs/scheduler.md`` for guidance on choosing a policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RoutingRequest:
    """What the scheduler knows about a transaction before routing it."""

    client: str = "client"
    readonly: bool = False
    #: Identities the transaction intends to write (``(table, key)`` pairs).
    #: Empty when unknown — the functional session API cannot always predict
    #: a transaction's writes, so hints are optional; the simulator passes
    #: the profile's writeset identities.
    item_ids: frozenset = frozenset()
    #: The replica the client would be pinned to under the paper's static
    #: assignment (used by workloads to key their key spaces; policies may
    #: use it as a stickiness hint).
    home_index: int | None = None


@dataclass(frozen=True)
class ReplicaView:
    """A policy's snapshot of one routing candidate."""

    index: int
    name: str
    #: Transactions currently admitted to this replica by the scheduler.
    in_flight: int
    #: The replica's applied GSI version (its proxy watermark).
    applied_version: int
    #: Writesets certified but not yet delivered to this replica (pending on
    #: its transport subscription) — the propagation lag signal.
    lag: int
    healthy: bool = True


class RoutingPolicy(abc.ABC):
    """Orders healthy replicas by preference for one request."""

    #: Short name used by :func:`routing_policy_from_name`, stats and benches.
    name: str = "?"

    @abc.abstractmethod
    def rank(self, request: RoutingRequest,
             candidates: Sequence[ReplicaView]) -> list[int]:
        """Return candidate replica indices, most preferred first.

        ``candidates`` contains only healthy replicas; the scheduler admits
        the first index with admission capacity and queues the request when
        none has any.
        """

    def note_routed(self, request: RoutingRequest, replica_index: int) -> None:
        """Hook invoked after admission with the finally-chosen replica.

        Stateful policies (conflict-aware affinity) update their maps here
        rather than in :meth:`rank`, because admission control may override
        the first preference.
        """

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _least_loaded_order(candidates: Sequence[ReplicaView]) -> list[int]:
    return [view.index for view in
            sorted(candidates, key=lambda v: (v.in_flight, v.index))]


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the healthy replicas, ignoring every load signal."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def rank(self, request: RoutingRequest,
             candidates: Sequence[ReplicaView]) -> list[int]:
        if not candidates:
            return []
        start = self._cursor % len(candidates)
        self._cursor += 1
        rotated = list(candidates[start:]) + list(candidates[:start])
        return [view.index for view in rotated]


class LeastLoadedPolicy(RoutingPolicy):
    """Prefer the replica with the fewest in-flight transactions."""

    name = "least-loaded"

    def rank(self, request: RoutingRequest,
             candidates: Sequence[ReplicaView]) -> list[int]:
        return _least_loaded_order(candidates)


class StalenessAwarePolicy(RoutingPolicy):
    """Prefer the replica with the freshest applied version.

    Ties break on propagation lag (fewer undelivered writesets pending on
    the transport subscription), then on in-flight load.  Useful for
    read-heavy traffic where response freshness matters more than spreading
    update load.
    """

    name = "staleness-aware"

    def rank(self, request: RoutingRequest,
             candidates: Sequence[ReplicaView]) -> list[int]:
        return [view.index for view in
                sorted(candidates,
                       key=lambda v: (-v.applied_version, v.lag,
                                      v.in_flight, v.index))]


class ConflictAwarePolicy(RoutingPolicy):
    """Group writers of overlapping item sets onto the same replica.

    Keeps a bounded affinity map ``item identity -> replica`` of where each
    item was last routed for writing.  A request is scored per candidate by
    how many of its write identities have affinity there; the best overlap
    wins, load breaks ties, and a request with no known items degrades to
    least-loaded.  At the cap the map resets wholesale (an epoch flip, the
    same bounded-cache shape as the writeset identity intern cache): hot
    affinities re-form within a few transactions while a cold flood of
    never-rewritten identities is released.

    ``load_slack`` guards against affinity herding: a candidate whose
    in-flight count exceeds the least-loaded candidate's by more than the
    slack forfeits its affinity score, so a popular item set cannot drag the
    whole workload onto one replica (hot TPC-B branch rows would otherwise
    do exactly that).  Losing an affinity to the guard costs at most one
    staleness self-conflict when the item moves; sustained imbalance costs
    throughput on every transaction.
    """

    name = "conflict-aware"

    def __init__(self, *, max_tracked_items: int = 1 << 16,
                 load_slack: int = 2) -> None:
        if max_tracked_items < 1:
            raise ConfigurationError("max_tracked_items must be >= 1")
        if load_slack < 0:
            raise ConfigurationError("load_slack must be >= 0")
        self.max_tracked_items = max_tracked_items
        self.load_slack = load_slack
        self._affinity: dict[object, int] = {}

    def rank(self, request: RoutingRequest,
             candidates: Sequence[ReplicaView]) -> list[int]:
        if not request.item_ids or not candidates:
            return _least_loaded_order(candidates)
        scores: dict[int, int] = {}
        for item_id in request.item_ids:
            replica_index = self._affinity.get(item_id)
            if replica_index is not None:
                scores[replica_index] = scores.get(replica_index, 0) + 1
        load_floor = min(view.in_flight for view in candidates)

        def effective_score(view: ReplicaView) -> int:
            if view.in_flight > load_floor + self.load_slack:
                return 0
            return scores.get(view.index, 0)

        return [view.index for view in
                sorted(candidates,
                       key=lambda v: (-effective_score(v),
                                      v.in_flight, v.index))]

    def note_routed(self, request: RoutingRequest, replica_index: int) -> None:
        if not request.item_ids:
            return
        if len(self._affinity) + len(request.item_ids) > self.max_tracked_items:
            self._affinity.clear()
        for item_id in request.item_ids:
            self._affinity[item_id] = replica_index

    @property
    def tracked_items(self) -> int:
        """Number of item identities currently holding an affinity."""
        return len(self._affinity)

    def forget_replica(self, replica_index: int) -> int:
        """Drop every affinity pointing at ``replica_index`` (it went down)."""
        stale = [item for item, index in self._affinity.items()
                 if index == replica_index]
        for item in stale:
            del self._affinity[item]
        return len(stale)


_POLICY_CLASSES: dict[str, Callable[[], RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    StalenessAwarePolicy.name: StalenessAwarePolicy,
    ConflictAwarePolicy.name: ConflictAwarePolicy,
}


def routing_policy_from_name(name: str) -> RoutingPolicy:
    """Instantiate a routing policy from its short name.

    Accepted names: ``round-robin``, ``least-loaded``, ``staleness-aware``
    and ``conflict-aware``.  Each call returns a fresh instance — policies
    are stateful (round-robin cursor, affinity map) and must not be shared
    between schedulers.
    """
    try:
        factory = _POLICY_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICY_CLASSES))
        raise ConfigurationError(
            f"unknown routing policy {name!r} (known: {known})"
        ) from None
    return factory()
