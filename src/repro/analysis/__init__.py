"""Result tables and paper-versus-measured reporting."""

from repro.analysis.results import ResultTable, SpeedupSummary, summarize_sweep
from repro.analysis.report import format_series, format_table, render_figure

__all__ = [
    "ResultTable",
    "SpeedupSummary",
    "format_series",
    "format_table",
    "render_figure",
    "summarize_sweep",
]
