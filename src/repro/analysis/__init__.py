"""Result tables and paper-versus-measured reporting.

Formatting helpers (:func:`format_table`, :func:`format_series`, ASCII
figure rendering) and sweep summarisation used by the benchmark harness to
print the paper's tables and by ``BENCH_*.json`` emitters —
``docs/benchmarks.md`` explains how to read the outputs.
"""

from repro.analysis.results import ResultTable, SpeedupSummary, summarize_sweep
from repro.analysis.report import format_series, format_table, render_figure

__all__ = [
    "ResultTable",
    "SpeedupSummary",
    "format_series",
    "format_table",
    "render_figure",
    "summarize_sweep",
]
