"""Turning sweep results into the tables the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.config import SystemKind
from repro.cluster.sweeps import ReplicaSweep


@dataclass
class ResultTable:
    """A simple column-oriented table of result rows."""

    columns: Sequence[str]
    rows: list[dict[str, object]] = field(default_factory=list)

    def add_row(self, row: Mapping[str, object]) -> None:
        self.rows.append({column: row.get(column) for column in self.columns})

    def column(self, name: str) -> list[object]:
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: object) -> "ResultTable":
        matching = [
            row for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        table = ResultTable(self.columns)
        table.rows = matching
        return table

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class SpeedupSummary:
    """The headline comparison the paper states in its abstract:
    Tashkent-MW / Tashkent-API versus Base at the largest replica count."""

    num_replicas: int
    base_tps: float
    tashkent_mw_tps: float
    tashkent_api_tps: float
    mw_speedup: float
    api_speedup: float

    def as_dict(self) -> dict[str, float]:
        return {
            "num_replicas": float(self.num_replicas),
            "base_tps": self.base_tps,
            "tashkent_mw_tps": self.tashkent_mw_tps,
            "tashkent_api_tps": self.tashkent_api_tps,
            "mw_speedup": self.mw_speedup,
            "api_speedup": self.api_speedup,
        }


def summarize_sweep(sweep: ReplicaSweep, *, num_replicas: int | None = None) -> SpeedupSummary:
    """Compute the MW/API-over-Base speedups from a sweep."""
    base_curve = sweep.curve(SystemKind.BASE)
    if not base_curve:
        raise ValueError("the sweep contains no Base measurements")
    target = num_replicas if num_replicas is not None else base_curve[-1].num_replicas

    def throughput(kind: SystemKind) -> float:
        for point in sweep.curve(kind):
            if point.num_replicas == target:
                return point.throughput_tps
        return 0.0

    base_tps = throughput(SystemKind.BASE)
    mw_tps = throughput(SystemKind.TASHKENT_MW)
    api_tps = throughput(SystemKind.TASHKENT_API)
    return SpeedupSummary(
        num_replicas=target,
        base_tps=base_tps,
        tashkent_mw_tps=mw_tps,
        tashkent_api_tps=api_tps,
        mw_speedup=mw_tps / base_tps if base_tps else 0.0,
        api_speedup=api_tps / base_tps if base_tps else 0.0,
    )


def sweep_to_table(sweep: ReplicaSweep) -> ResultTable:
    """Flatten a sweep into a :class:`ResultTable` (one row per point)."""
    columns = (
        "system", "workload", "replicas", "dedicated_io", "throughput_tps",
        "mean_response_ms", "p95_response_ms", "abort_rate",
        "writesets_per_fsync", "replica_fsyncs", "certifier_fsyncs",
    )
    table = ResultTable(columns)
    for row in sweep.rows():
        table.add_row(row)
    return table


def crossover_replicas(sweep: ReplicaSweep, winner: SystemKind, loser: SystemKind) -> int | None:
    """Smallest replica count at which ``winner`` beats ``loser``.

    The paper's headline claim is that the Tashkent systems pull away from
    Base as soon as remote writesets start flowing (two replicas onwards);
    this helper lets tests assert where the crossover lands.
    """
    loser_by_n = {p.num_replicas: p.throughput_tps for p in sweep.curve(loser)}
    for point in sweep.curve(winner):
        other = loser_by_n.get(point.num_replicas)
        if other is not None and point.throughput_tps > other:
            return point.num_replicas
    return None
