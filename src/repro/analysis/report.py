"""Plain-text rendering of figures and tables.

The benchmark harness prints each figure as the series the paper plots
(replica count on the x axis, one column per system).  Nothing here needs a
plotting library: the goal is rows that can be eyeballed against the paper
and archived in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.config import SystemKind
from repro.cluster.sweeps import ReplicaSweep

#: Display names matching the paper's figure legends.
SYSTEM_LABELS = {
    SystemKind.STANDALONE: "standalone",
    SystemKind.BASE: "base",
    SystemKind.TASHKENT_MW: "tashMW",
    SystemKind.TASHKENT_API: "tashAPI",
    SystemKind.TASHKENT_API_NO_CERT: "tashAPInoCERT",
}


def format_table(columns: Sequence[str], rows: Iterable[Mapping[str, object]]) -> str:
    """Render rows as a fixed-width text table."""
    rows = [dict(row) for row in rows]
    widths = {column: len(column) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(series: Iterable[tuple[int, float]], *, unit: str = "") -> str:
    """Render one curve as ``replicas -> value`` pairs."""
    parts = [f"{replicas}:{value:.1f}{unit}" for replicas, value in series]
    return "  ".join(parts)


def render_figure(sweep: ReplicaSweep, *, metric: str = "throughput",
                  title: str = "") -> str:
    """Render one paper figure (throughput or response time vs replicas)."""
    systems = []
    for system in SYSTEM_LABELS:
        if sweep.curve(system):
            systems.append(system)
    replica_counts = sorted({p.num_replicas for p in sweep.points})
    columns = ["replicas"] + [SYSTEM_LABELS[system] for system in systems]
    rows = []
    for count in replica_counts:
        row: dict[str, object] = {"replicas": count}
        for system in systems:
            for point in sweep.curve(system):
                if point.num_replicas == count:
                    if metric == "throughput":
                        row[SYSTEM_LABELS[system]] = round(point.throughput_tps, 1)
                    else:
                        row[SYSTEM_LABELS[system]] = round(point.mean_response_ms, 1)
                    break
        rows.append(row)
    body = format_table(columns, rows)
    heading = title or (
        f"{sweep.workload.value} — {'throughput (tps)' if metric == 'throughput' else 'response time (ms)'}"
        f" — {'dedicated' if sweep.dedicated_io else 'shared'} IO"
    )
    return f"{heading}\n{body}"
