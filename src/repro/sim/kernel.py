"""The discrete-event simulation kernel.

A tiny, dependency-free, generator-based simulator:

* :class:`Environment` owns virtual time (milliseconds) and the event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Timeout` is an event that triggers after a fixed delay.
* :class:`Process` wraps a generator; each ``yield`` suspends the process
  until the yielded event triggers, and the event's value is sent back into
  the generator.
* :class:`AllOf` triggers once all of its child events have triggered.

The kernel is deliberately small: no preemption, no event cancellation races,
no real-time pacing.  Determinism matters more than features — two runs with
the same seed produce identical schedules, which the reproducibility tests
assert.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, Iterable

from repro.errors import SimulationError


class Event:
    """A one-shot event that callbacks and processes can wait on."""

    __slots__ = ("env", "callbacks", "_triggered", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: object = None
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> object:
        return self._value

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (an exception to re-raise)."""
        return self._ok

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure; waiters see the exception raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.env._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            # Already triggered: deliver on the next scheduling round so the
            # caller observes consistent asynchronous behaviour.
            self.env._call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"{type(self).__name__}({state})"


class Timeout(Event):
    """An event that triggers ``delay`` time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        env._push(delay, lambda: self.succeed(value))


class AllOf(Event):
    """Triggers when every child event has triggered (values in order)."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._children:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if not event.ok:
            if not self._triggered:
                self.fail(event.value)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0 and not self._triggered:
            self.succeed([child.value for child in self._children])


class Process(Event):
    """A running process: a generator driven by the events it yields.

    The process itself is an event that triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each other.
    """

    __slots__ = ("generator", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        env._call_soon(lambda: self._resume(None, ok=True))

    def _resume(self, value: object, *, ok: bool) -> None:
        try:
            if ok:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(value)  # type: ignore[arg-type]
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # a crashed process fails its event
            self.env.failed_processes.append(self)
            if not self._triggered:
                self.fail(exc)
            else:
                raise
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"
            )
            self.env.failed_processes.append(self)
            if not self._triggered:
                self.fail(error)
            return
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._resume(event.value, ok=event.ok)

    def __repr__(self) -> str:
        state = "done" if self._triggered else "running"
        return f"Process(name={self.name!r}, {state})"


class Environment:
    """Virtual time and the event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.events_processed = 0
        #: Processes that terminated with an unhandled exception.  Kept so
        #: experiment drivers can surface silent failures instead of
        #: reporting an empty measurement.
        self.failed_processes: list["Process"] = []

    @property
    def now(self) -> float:
        """Current virtual time, in milliseconds."""
        return self._now

    # -- construction helpers ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling internals ------------------------------------------------------

    def _schedule_event(self, event: Event, *, delay: float = 0.0) -> None:
        self._push(delay, lambda: self._dispatch(event))

    def _call_soon(self, callback: Callable[[], None]) -> None:
        self._push(0.0, callback)

    def _push(self, delay: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    @staticmethod
    def _dispatch_callbacks(event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def _dispatch(self, event: Event) -> None:
        self._dispatch_callbacks(event)

    # -- running ----------------------------------------------------------------------

    def run_until(self, until: float) -> None:
        """Advance virtual time until ``until`` (inclusive of events at that time)."""
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards (now={self._now}, until={until})"
            )
        while self._queue and self._queue[0][0] <= until:
            time, _seq, callback = heapq.heappop(self._queue)
            self._now = time
            self.events_processed += 1
            callback()
        self._now = until

    def run_until_complete(self, process: Process, *, max_time: float = float("inf")) -> object:
        """Run until ``process`` finishes (or ``max_time`` passes); return its value."""
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: process {process.name!r} cannot finish, no events pending"
                )
            time, _seq, callback = heapq.heappop(self._queue)
            if time > max_time:
                raise SimulationError(
                    f"process {process.name!r} did not finish by t={max_time}"
                )
            self._now = time
            self.events_processed += 1
            callback()
        if not process.ok:
            raise process.value  # type: ignore[misc]
        return process.value

    def peek(self) -> float:
        """Time of the next scheduled event (inf when the queue is empty)."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return f"Environment(now={self._now:.3f}, pending={len(self._queue)})"
