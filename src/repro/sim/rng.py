"""Deterministic random-number streams.

Every stochastic quantity in the simulation (fsync service times, network
jitter, workload item choices, forced aborts) draws from a named stream so
that adding a new consumer does not perturb the draws seen by existing ones.
All streams derive deterministically from the experiment seed.
"""

from __future__ import annotations

import random


class RandomStreams:
    """A family of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = random.Random(f"{self.seed}:{name}")
        self._streams[name] = derived
        return derived

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, mean: float) -> float:
        if mean <= 0:
            return 0.0
        return self.stream(name).expovariate(1.0 / mean)

    def choice_index(self, name: str, count: int) -> int:
        return self.stream(name).randrange(count)

    def random(self, name: str) -> float:
        return self.stream(name).random()

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
