"""Measurement collection for simulated experiments.

The collector mirrors what the paper reports: throughput in requests per
second (committed and total), "goodput" (Section 9.5's committed-only
throughput under forced aborts), and mean / percentile response times, split
by transaction class (read-only vs update) for the TPC-W figures.
Measurements only count transactions that *complete* inside the measurement
window, excluding warm-up.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransactionRecord:
    """One completed transaction as seen by a client."""

    start_ms: float
    end_ms: float
    committed: bool
    readonly: bool
    replica: str
    aborted_reason: str | None = None

    @property
    def response_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class UtilizationTracker:
    """Named utilization samples gathered at the end of a run."""

    samples: dict[str, float] = field(default_factory=dict)

    def record(self, name: str, value: float) -> None:
        self.samples[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self.samples.get(name, default)


class MetricsCollector:
    """Collects completed transactions over a measurement window."""

    def __init__(self, warmup_ms: float, measure_ms: float) -> None:
        self.warmup_ms = warmup_ms
        self.measure_ms = measure_ms
        self.records: list[TransactionRecord] = []
        self.ignored_warmup = 0
        self.utilization = UtilizationTracker()

    # -- recording ----------------------------------------------------------------

    @property
    def window_end_ms(self) -> float:
        return self.warmup_ms + self.measure_ms

    def record(self, record: TransactionRecord) -> None:
        """Record a completed transaction if it falls inside the window."""
        if record.end_ms < self.warmup_ms or record.end_ms > self.window_end_ms:
            self.ignored_warmup += 1
            return
        self.records.append(record)

    # -- throughput -----------------------------------------------------------------

    def _seconds(self) -> float:
        return self.measure_ms / 1000.0

    def throughput_tps(self, *, committed_only: bool = True) -> float:
        """Requests per second completed in the measurement window."""
        count = sum(1 for r in self.records if r.committed or not committed_only)
        return count / self._seconds() if self._seconds() > 0 else 0.0

    def goodput_tps(self) -> float:
        """Committed-transactions-per-second (the paper's goodput)."""
        return self.throughput_tps(committed_only=True)

    def offered_tps(self) -> float:
        """All completed requests per second, aborted ones included."""
        return self.throughput_tps(committed_only=False)

    def abort_rate(self) -> float:
        total = len(self.records)
        if total == 0:
            return 0.0
        return sum(1 for r in self.records if not r.committed) / total

    # -- response time -----------------------------------------------------------------

    def _response_times(self, *, readonly: bool | None = None,
                        committed_only: bool = True) -> list[float]:
        times = []
        for r in self.records:
            if committed_only and not r.committed:
                continue
            if readonly is not None and r.readonly != readonly:
                continue
            times.append(r.response_ms)
        return times

    def mean_response_ms(self, *, readonly: bool | None = None) -> float:
        times = self._response_times(readonly=readonly)
        return statistics.fmean(times) if times else 0.0

    def percentile_response_ms(self, percentile: float, *, readonly: bool | None = None) -> float:
        times = sorted(self._response_times(readonly=readonly))
        if not times:
            return 0.0
        index = min(len(times) - 1, int(round((percentile / 100.0) * (len(times) - 1))))
        return times[index]

    # -- breakdowns ------------------------------------------------------------------------

    def count(self, *, committed: bool | None = None, readonly: bool | None = None) -> int:
        total = 0
        for r in self.records:
            if committed is not None and r.committed != committed:
                continue
            if readonly is not None and r.readonly != readonly:
                continue
            total += 1
        return total

    def per_replica_throughput(self) -> dict[str, float]:
        counts: dict[str, int] = {}
        for r in self.records:
            if r.committed:
                counts[r.replica] = counts.get(r.replica, 0) + 1
        seconds = self._seconds()
        return {replica: count / seconds for replica, count in counts.items()}

    def summary(self) -> dict[str, float]:
        return {
            "throughput_tps": self.goodput_tps(),
            "offered_tps": self.offered_tps(),
            "abort_rate": self.abort_rate(),
            "mean_response_ms": self.mean_response_ms(),
            "p95_response_ms": self.percentile_response_ms(95.0),
            "readonly_mean_response_ms": self.mean_response_ms(readonly=True),
            "update_mean_response_ms": self.mean_response_ms(readonly=False),
            "completed": float(len(self.records)),
        }
