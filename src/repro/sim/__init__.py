"""Deterministic discrete-event simulation substrate.

The paper's evaluation is dominated by IO arithmetic (how many commit
records share one fsync) and by queueing at the replicas' CPUs and disks.
Measuring wall-clock throughput of a pure-Python prototype would say more
about the Python interpreter than about the protocol, so the evaluation runs
the *real protocol code* (certification, ordering, grouping, conflict
detection) against simulated clocks, disks, CPUs and network links.

The kernel is a small generator-based simulator in the style of SimPy:
processes are generators that ``yield`` events (timeouts, resource requests,
other processes); the environment advances virtual time from event to event.
Everything is deterministic given the experiment's RNG seed.  See
``docs/architecture.md`` for how the simulated stack sits on this kernel.
"""

from repro.sim.kernel import AllOf, Environment, Event, Process, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.devices import CpuServer, DiskChannel, NetworkLink
from repro.sim.metrics import MetricsCollector, TransactionRecord, UtilizationTracker
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "CpuServer",
    "DiskChannel",
    "Environment",
    "Event",
    "MetricsCollector",
    "NetworkLink",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "Timeout",
    "TransactionRecord",
    "UtilizationTracker",
]
