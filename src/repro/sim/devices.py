"""Device models: disk channels, CPU servers and network links.

These translate the paper's hardware description (Section 9.1) into service
time distributions:

* :class:`DiskChannel` — the durability IO channel.  An fsync takes
  ``uniform(fsync_min, fsync_max)`` (defaults 6–12 ms, mean 8 ms).  A
  *shared* channel adds interference from database page reads and dirty-page
  write-back, scaled by the workload's page-IO intensity; a *dedicated*
  channel (the paper's ramdisk configuration) does not.
* :class:`CpuServer` — a single-CPU FIFO server (the paper's machines have
  one Xeon each).
* :class:`NetworkLink` — the switched 1 Gbps LAN: a per-message latency plus
  a size-proportional term and a small jitter.
"""

from __future__ import annotations

from typing import Generator

from repro.core.config import DiskConfig, NetworkConfig
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Resource
from repro.sim.rng import RandomStreams


class DiskChannel:
    """A FIFO disk channel serving synchronous writes (fsync calls)."""

    def __init__(
        self,
        env: Environment,
        config: DiskConfig,
        rng: RandomStreams,
        *,
        name: str = "disk",
        page_io_interference_ms: float = 0.0,
        sequential_log: bool = False,
    ) -> None:
        self.env = env
        self.config = config
        self.rng = rng
        self.name = name
        #: Extra mean delay per fsync caused by competing page IO.  Zero on a
        #: dedicated logging channel.
        self.page_io_interference_ms = (
            0.0 if config.dedicated_log_channel else page_io_interference_ms
        )
        #: Sequential append-only logs (the certifier's) see the low end of
        #: the seek-time distribution.
        self.sequential_log = sequential_log
        self.resource = Resource(env, capacity=1, name=name)
        self.fsync_count = 0
        self.total_service_ms = 0.0

    def _service_time(self) -> float:
        cfg = self.config
        if self.sequential_log:
            low, high = cfg.fsync_min_ms * 0.4, cfg.fsync_min_ms
        else:
            low, high = cfg.fsync_min_ms, cfg.fsync_max_ms
        service = self.rng.uniform(f"{self.name}:fsync", low, high)
        if self.page_io_interference_ms > 0:
            service += self.rng.expovariate(
                f"{self.name}:interference", self.page_io_interference_ms
            )
        return service

    def fsync(self) -> Generator:
        """Process fragment: wait for the channel and perform one fsync.

        Usage: ``yield from disk.fsync()``.  Returns the service time.
        """
        service = self._service_time()
        yield self.resource.request()
        try:
            yield self.env.timeout(service)
        finally:
            self.resource.release()
        self.fsync_count += 1
        self.total_service_ms += service
        return service

    def utilization(self, elapsed: float | None = None) -> float:
        return self.resource.utilization(elapsed)

    @property
    def mean_service_ms(self) -> float:
        return self.total_service_ms / self.fsync_count if self.fsync_count else 0.0

    def __repr__(self) -> str:
        return f"DiskChannel(name={self.name!r}, fsyncs={self.fsync_count})"


class CpuServer:
    """A single-CPU FIFO server."""

    def __init__(self, env: Environment, *, name: str = "cpu") -> None:
        self.env = env
        self.name = name
        self.resource = Resource(env, capacity=1, name=name)
        self.jobs = 0
        self.total_service_ms = 0.0

    def execute(self, service_ms: float) -> Generator:
        """Process fragment: queue for the CPU and hold it for ``service_ms``."""
        if service_ms <= 0:
            return 0.0
        yield self.resource.request()
        try:
            yield self.env.timeout(service_ms)
        finally:
            self.resource.release()
        self.jobs += 1
        self.total_service_ms += service_ms
        return service_ms

    def utilization(self, elapsed: float | None = None) -> float:
        return self.resource.utilization(elapsed)

    def __repr__(self) -> str:
        return f"CpuServer(name={self.name!r}, jobs={self.jobs})"


class NetworkLink:
    """The LAN between replicas and the certifier."""

    def __init__(self, env: Environment, config: NetworkConfig, rng: RandomStreams,
                 *, name: str = "lan") -> None:
        self.env = env
        self.config = config
        self.rng = rng
        self.name = name
        self.messages = 0
        self.bytes_sent = 0

    def transfer(self, size_bytes: int) -> Event:
        """An event that triggers when a message of ``size_bytes`` has arrived."""
        delay = self.config.message_delay_ms(size_bytes)
        if self.config.jitter_ms > 0:
            delay += self.rng.uniform(f"{self.name}:jitter", 0.0, self.config.jitter_ms)
        self.messages += 1
        self.bytes_sent += size_bytes
        return self.env.timeout(delay)

    def __repr__(self) -> str:
        return f"NetworkLink(name={self.name!r}, messages={self.messages})"
