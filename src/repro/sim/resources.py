"""Shared resources for the simulation kernel.

:class:`Resource` is a FIFO server with fixed capacity (a CPU, a disk
channel, a commit lock); :class:`Store` is an unbounded FIFO queue of items
(a request queue in front of a server process).
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event


class Resource:
    """A FIFO resource with ``capacity`` concurrent users."""

    def __init__(self, env: Environment, capacity: int = 1, *, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users = 0
        self._waiters: deque[Event] = deque()
        # Utilization accounting (single-capacity resources only give a
        # meaningful busy fraction, but the bookkeeping is harmless otherwise).
        self._busy_since: float | None = None
        self._busy_time = 0.0

    # -- acquire / release -----------------------------------------------------

    def request(self) -> Event:
        """Return an event that triggers when the resource is granted."""
        event = self.env.event()
        if self._users < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one unit of the resource (FIFO hand-off to waiters)."""
        if self._users <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._users -= 1
        if self._users == 0 and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        self._users += 1
        if self._busy_since is None:
            self._busy_since = self.env.now
        event.succeed(self)

    # -- convenience process fragments ---------------------------------------------

    def hold(self, duration: float) -> Generator:
        """Process fragment: acquire, hold for ``duration``, release.

        Usage inside a process: ``yield from resource.hold(2.5)``.
        """
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()

    # -- interrogation ------------------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._users

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def busy_time(self) -> float:
        """Total time the resource has had at least one user."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.env.now - self._busy_since
        return total

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time busy over ``elapsed`` (defaults to env.now)."""
        window = self.env.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time() / window)

    def __repr__(self) -> str:
        return (
            f"Resource(name={self.name!r}, users={self._users}/{self.capacity}, "
            f"queue={len(self._waiters)})"
        )


class Store:
    """An unbounded FIFO queue of items with blocking gets."""

    def __init__(self, env: Environment, *, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0

    def put(self, item: object) -> None:
        """Add ``item``; wakes the oldest waiting getter if any."""
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event delivering the next item (immediately if available)."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_all(self) -> list[object]:
        """Drain every queued item without blocking (group-commit batching)."""
        items = list(self._items)
        self._items.clear()
        return items

    @property
    def pending(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Store(name={self.name!r}, items={len(self._items)}, getters={len(self._getters)})"
