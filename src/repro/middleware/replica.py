"""A replica: one database instance plus its transparent proxy.

The replica also owns the Tashkent-MW checkpointing duty ("the middleware
periodically asks the database to make a copy") and the bounded-staleness
refresh timer, both of which are driven explicitly by the caller in the
functional path (there is no background thread) and by processes in the
simulated path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.config import SystemKind
from repro.engine.checkpoint import Checkpoint, CheckpointStore
from repro.engine.database import Database
from repro.engine.table import TableSchema
from repro.middleware.certifier import CertifierService
from repro.middleware.proxy import TransparentProxy


@dataclass
class ReplicaStats:
    """Per-replica counters exposed to the evaluation harness."""

    checkpoints_taken: int = 0
    #: Refreshes that actually applied at least one missed writeset.
    refreshes: int = 0
    #: Refreshes that found the replica already up to date.  Counted apart
    #: from :attr:`refreshes` so staleness metrics reflect genuine catch-up
    #: work rather than timer firings.
    noop_refreshes: int = 0
    #: Horizon-clamped vacuum passes run through :meth:`Replica.vacuum`.
    vacuum_passes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class Replica:
    """One database replica and its proxy."""

    def __init__(
        self,
        name: str,
        database: Database,
        certifier: CertifierService,
        *,
        system: SystemKind,
        local_certification: bool = True,
        eager_pre_certification: bool = True,
    ) -> None:
        self.name = name
        self.database = database
        self.system = system
        self.proxy = TransparentProxy(
            database,
            certifier,
            system=system,
            replica_name=name,
            local_certification=local_certification,
            eager_pre_certification=eager_pre_certification,
        )
        self.checkpoints = CheckpointStore()
        self.stats = ReplicaStats()

    # -- convenience pass-throughs ------------------------------------------------

    @property
    def replica_version(self) -> int:
        return self.proxy.replica_version.version

    @property
    def fsync_count(self) -> int:
        return self.database.fsync_count

    # -- Tashkent-MW checkpointing --------------------------------------------------

    def take_checkpoint(self) -> Checkpoint:
        """Ask the database for a complete copy (the paper's DUMP DATA)."""
        checkpoint = self.database.dump()
        self.checkpoints.add(checkpoint)
        self.stats.checkpoints_taken += 1
        return checkpoint

    # -- bounded staleness ------------------------------------------------------------

    def refresh(self) -> int:
        """Drain and apply any remote writesets the replica has missed."""
        applied = self.proxy.refresh()
        if applied:
            self.stats.refreshes += 1
        else:
            self.stats.noop_refreshes += 1
        return applied

    # -- storage maintenance -----------------------------------------------------------

    def vacuum(self, *, max_rows: int | None = None) -> int:
        """Vacuum the replica's version chains, clamped to the safe horizon.

        The horizon is ``min(local oldest active snapshot, certifier
        replication horizon)``: the certifier's replica low-water mark
        (minus GC headroom) bounds what any lagging or resubscribing replica
        could still request, so nothing a remote reader needs is reclaimed.
        Returns the number of versions reclaimed.
        """
        self.stats.vacuum_passes += 1
        return self.database.vacuum(
            replication_horizon=self.proxy.certifier.replication_horizon(),
            max_rows=max_rows,
        )

    # -- schema management ---------------------------------------------------------------

    def create_table(self, name: str, columns: Iterable[str], primary_key: str = "id") -> None:
        self.database.create_table(name, columns, primary_key)

    def create_table_from_schema(self, schema: TableSchema) -> None:
        self.database.create_table_from_schema(schema)

    def stats_snapshot(self) -> dict[str, object]:
        return {
            "name": self.name,
            "replica_version": self.replica_version,
            "fsyncs": self.fsync_count,
            "database": self.database.stats(),
            "proxy": self.proxy.stats.as_dict(),
            "replica": self.stats.as_dict(),
        }

    def __repr__(self) -> str:
        return f"Replica(name={self.name!r}, system={self.system.value}, version={self.replica_version})"
