"""Factories assembling whole replicated systems.

A :class:`ReplicatedSystem` is a set of replicas (database + proxy), one
certifier service (optionally backed by a Paxos-replicated certifier group)
and helpers to create client sessions, load schemas and data on every
replica, and collect statistics.  The three paper variants are produced by
:func:`build_base_system`, :func:`build_tashkent_mw_system` and
:func:`build_tashkent_api_system`; :func:`build_replicated_system` is the
generic entry point used by the examples and tests.

Clients connect in one of two modes: **pinned** (:meth:`ReplicatedSystem.session`
— the paper's static assignment, one replica per session for life) or
**routed** (:meth:`ReplicatedSystem.routed_session` — every transaction asks
the cluster scheduler of :mod:`repro.balancer` for a replica, with admission
control and health-aware fallback; see ``docs/scheduler.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

# Submodule imports (not the package): repro.balancer.session imports the
# middleware client API, so pulling the balancer *package* here would cycle
# when repro.balancer is imported first.  RoutedSession is imported lazily in
# :meth:`ReplicatedSystem.routed_session` for the same reason.
from repro.balancer.policies import routing_policy_from_name
from repro.balancer.scheduler import ClusterScheduler
from repro.core.config import ReplicationConfig, SystemKind
from repro.engine.database import Database
from repro.engine.table import TableSchema
from repro.errors import ConfigurationError
from repro.middleware.certifier import CertifierConfig, CertifierService
from repro.middleware.client_api import ClientSession
from repro.middleware.janitor import JanitorPolicy, MaintenanceJanitor
from repro.middleware.replica import Replica
from repro.middleware.sharded_certifier import (
    ShardedCertifierService,
    make_certifier_service,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.balancer.session import RoutedSession


@dataclass
class ReplicatedSystem:
    """A fully assembled replicated database system.

    ``certifier`` is the single :class:`CertifierService` when
    ``config.certifier_shards == 1`` (the paper's design, byte for byte) and
    a :class:`ShardedCertifierService` otherwise; both expose the same
    surface, so everything below is oblivious to the sharding.
    """

    config: ReplicationConfig
    certifier: CertifierService | ShardedCertifierService
    replicas: list[Replica] = field(default_factory=list)
    #: Lazily built by :meth:`janitor` / :meth:`run_maintenance`.
    _janitor: MaintenanceJanitor | None = field(default=None, repr=False)

    # -- schema / data management ------------------------------------------------

    def create_table(self, name: str, columns: Iterable[str], primary_key: str = "id") -> None:
        """Create a table on every replica."""
        columns = tuple(columns)
        for replica in self.replicas:
            replica.create_table(name, columns, primary_key)

    def create_tables_from_schemas(self, schemas: Sequence[TableSchema]) -> None:
        for schema in schemas:
            for replica in self.replicas:
                replica.create_table_from_schema(schema)

    def load_initial_data(self, loader: Callable[[ClientSession], None],
                          *, via_replica: int = 0) -> None:
        """Load initial data through one replica; replication propagates it.

        The loader receives a client session on ``via_replica`` and should
        run normal transactions; afterwards every other replica is refreshed
        so all replicas start from the same state.
        """
        session = self.session(via_replica, client_name="loader")
        loader(session)
        self.refresh_all()

    # -- clients ----------------------------------------------------------------------

    def session(self, replica_index: int = 0, *, client_name: str = "client") -> ClientSession:
        """Open a client session against the proxy of ``replica_index``."""
        try:
            replica = self.replicas[replica_index]
        except IndexError:
            raise ConfigurationError(
                f"replica index {replica_index} out of range (have {len(self.replicas)})"
            ) from None
        return ClientSession(replica.proxy, client_name=client_name)

    def sessions_round_robin(self, count: int) -> list[ClientSession]:
        """Open ``count`` sessions spread across replicas round-robin."""
        return [
            self.session(i % len(self.replicas), client_name=f"client-{i}")
            for i in range(count)
        ]

    # -- routed mode (the cluster scheduler) ------------------------------------------

    def scheduler(self, policy: str = "least-loaded", *,
                  multiprogramming_limit: int | None = None,
                  max_queue_depth: int = 64,
                  queue_timeout_ms: float = 200.0) -> ClusterScheduler:
        """Build a cluster scheduler fronting this system's replicas.

        The endpoints' live signals are wired to each replica: the applied
        version is the proxy's GSI watermark and the lag is the number of
        writesets pending on the replica's transport subscription.  One
        scheduler should front all routed sessions of a deployment — routing
        state (round-robin cursor, conflict affinities, in-flight counts) is
        only meaningful when shared.
        """
        scheduler = ClusterScheduler(
            routing_policy_from_name(policy),
            multiprogramming_limit=multiprogramming_limit,
            max_queue_depth=max_queue_depth,
            queue_timeout_ms=queue_timeout_ms,
        )
        for replica in self.replicas:
            scheduler.add_replica(
                replica.name,
                applied_version=lambda r=replica: r.replica_version,
                lag=lambda r=replica: r.proxy.subscription.pending_writesets,
            )
        return scheduler

    def routed_session(self, scheduler: ClusterScheduler | str = "least-loaded",
                       *, client_name: str = "client") -> "RoutedSession":
        """Open a scheduler-routed client session (the dynamic front door).

        Pass an existing :class:`ClusterScheduler` to share routing state
        between sessions (the normal deployment shape), or a policy name to
        get a session fronted by a fresh single-session scheduler (handy in
        tests and examples).
        """
        from repro.balancer.session import RoutedSession

        if isinstance(scheduler, str):
            scheduler = self.scheduler(scheduler)
        return RoutedSession(self, scheduler, client_name=client_name)

    # -- maintenance ---------------------------------------------------------------------

    def refresh_all(self) -> int:
        """Run the bounded-staleness refresh on every replica."""
        return sum(replica.refresh() for replica in self.replicas)

    def janitor(self, policy: JanitorPolicy | None = None) -> MaintenanceJanitor:
        """The system's maintenance janitor (built on first use).

        Without an explicit ``policy`` the knobs come from the system config
        (``vacuum_interval_ms`` — defaulting to 250 ms when the config left
        the janitor off but a caller asks for one anyway — and
        ``vacuum_batch_rows``).  The functional stack has no background
        threads: drive the janitor explicitly via :meth:`run_maintenance`
        (cadence-aware) or ``janitor().run_once()`` (unconditional), exactly
        like ``refresh_all`` drives the staleness timer.
        """
        if policy is not None:
            self._janitor = None
        if self._janitor is None:
            if policy is None:
                policy = JanitorPolicy(
                    vacuum_interval_ms=self.config.vacuum_interval_ms or 250.0,
                    vacuum_batch_rows=self.config.vacuum_batch_rows,
                )
            self._janitor = MaintenanceJanitor(
                [replica.database for replica in self.replicas],
                replication_horizon=self.certifier.replication_horizon,
                certifier_gc=self.certifier.collect_garbage,
                policy=policy,
            )
        return self._janitor

    def run_maintenance(self, now_ms: float | None = None) -> bool:
        """Drive the janitor: vacuum all replicas + certifier GC.

        With ``now_ms`` the janitor's cadence decides whether the run is due
        (call this from the deployment's clock loop); without it the run is
        unconditional.  Returns whether maintenance ran.
        """
        janitor = self.janitor()
        if now_ms is None:
            janitor.run_once()
            return True
        return janitor.maybe_run(now_ms)

    def vacuum_all(self, *, max_rows: int | None = None) -> int:
        """One horizon-clamped vacuum pass on every replica (no certifier GC)."""
        return sum(replica.vacuum(max_rows=max_rows) for replica in self.replicas)

    def checkpoint_all(self) -> None:
        """Take a Tashkent-MW recovery checkpoint on every replica."""
        for replica in self.replicas:
            replica.take_checkpoint()

    def replica(self, index: int) -> Replica:
        return self.replicas[index]

    # -- verification / statistics ------------------------------------------------------------

    def replicas_consistent(self) -> bool:
        """True when every up-to-date replica holds identical table contents.

        Replicas are refreshed first so staleness does not count as
        divergence; this is the invariant property tests assert after every
        workload.
        """
        self.refresh_all()
        if len(self.replicas) < 2:
            return True
        reference = self.replicas[0]
        ref_state = {
            name: reference.database.table(name).snapshot_state(reference.database.current_version)
            for name in reference.database.tables
        }
        for replica in self.replicas[1:]:
            for name, expected in ref_state.items():
                actual = replica.database.table(name).snapshot_state(
                    replica.database.current_version
                )
                if actual != expected:
                    return False
        return True

    def total_fsyncs(self) -> dict[str, int]:
        """Synchronous writes per component (the paper's central accounting)."""
        return {
            "certifier": self.certifier.fsync_count,
            "replicas": sum(replica.fsync_count for replica in self.replicas),
        }

    def stats(self) -> dict[str, object]:
        stats: dict[str, object] = {
            "system": self.config.system.value,
            "num_replicas": len(self.replicas),
            "certifier": self.certifier.stats(),
            "replicas": [replica.stats_snapshot() for replica in self.replicas],
            "fsyncs": self.total_fsyncs(),
        }
        if self._janitor is not None:
            stats["janitor"] = self._janitor.stats.as_dict()
        return stats

    def __repr__(self) -> str:
        return (
            f"ReplicatedSystem(system={self.config.system.value}, "
            f"replicas={len(self.replicas)}, version={self.certifier.system_version})"
        )


# ---------------------------------------------------------------------------- factories


def build_replicated_system(config: ReplicationConfig) -> ReplicatedSystem:
    """Assemble a replicated system according to ``config``."""
    if config.system is SystemKind.STANDALONE:
        raise ConfigurationError(
            "use repro.engine.Database directly for a standalone database"
        )
    certifier_config = CertifierConfig(
        durability_enabled=config.system.durability_in_certifier,
        forced_abort_rate=config.forced_abort_rate,
        rng_seed=config.rng_seed,
        shards=config.certifier_shards,
    )
    if config.certifier_gc_headroom is not None:
        certifier_config = dataclasses.replace(
            certifier_config, gc_headroom_versions=config.certifier_gc_headroom
        )
    certifier = make_certifier_service(certifier_config)
    system = ReplicatedSystem(config=config, certifier=certifier)
    for index in range(config.num_replicas):
        name = f"replica-{index}"
        database = Database(name=name, synchronous_commit=True)
        replica = Replica(
            name,
            database,
            certifier,
            system=config.system,
            local_certification=config.local_certification,
            eager_pre_certification=config.eager_pre_certification,
        )
        system.replicas.append(replica)
    return system


def build_base_system(num_replicas: int = 2, **overrides: object) -> ReplicatedSystem:
    """Base: ordering in the middleware, durability in the database, serial commits."""
    config = ReplicationConfig(system=SystemKind.BASE, num_replicas=num_replicas, **overrides)
    return build_replicated_system(config)


def build_tashkent_mw_system(num_replicas: int = 2, **overrides: object) -> ReplicatedSystem:
    """Tashkent-MW: durability united with ordering in the middleware."""
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=num_replicas, **overrides)
    return build_replicated_system(config)


def build_tashkent_api_system(num_replicas: int = 2, **overrides: object) -> ReplicatedSystem:
    """Tashkent-API: durability united with ordering in the database (COMMIT <n>)."""
    config = ReplicationConfig(system=SystemKind.TASHKENT_API, num_replicas=num_replicas, **overrides)
    return build_replicated_system(config)
