"""The background maintenance janitor: scheduled vacuum + certifier GC.

The functional stack has no background threads — maintenance, like the
bounded-staleness refresh, is driven explicitly by the caller (tests, the
examples' main loops) or by a simulation process in the cluster model.  The
:class:`MaintenanceJanitor` packages *what* a maintenance tick does and
*when* it is due, so both stacks share one policy object:

* **vacuum** every replica database incrementally (``vacuum_batch_rows``
  candidate rows per pass) down to ``min(local oldest snapshot, certifier
  replication horizon)`` — the certifier's replica low-water mark minus its
  GC headroom, the same boundary its own log GC prunes to;
* **certifier maintenance**: drive log GC (and with it the PR 6 compaction
  machinery behind ``collect_garbage``) on the janitor's cadence instead of
  only piggybacking on request counts.

The cadence (``vacuum_interval_ms``) and batch size are the sweepable knobs
of :class:`~repro.core.config.ReplicationConfig`; the janitor is off by
default (``vacuum_interval_ms=None``), which is the seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.stats import JanitorStats
from repro.engine.database import Database
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JanitorPolicy:
    """When the janitor runs and how much one run may do."""

    #: Milliseconds between maintenance runs.
    vacuum_interval_ms: float = 250.0
    #: Candidate rows one vacuum pass may visit per database (``None`` =
    #: drain the whole dead-version candidate index every run).
    vacuum_batch_rows: int | None = 4096
    #: Whether a run also drives certifier GC/compaction.
    run_certifier_gc: bool = True

    def __post_init__(self) -> None:
        if self.vacuum_interval_ms <= 0:
            raise ConfigurationError("vacuum_interval_ms must be positive")
        if self.vacuum_batch_rows is not None and self.vacuum_batch_rows < 1:
            raise ConfigurationError("vacuum_batch_rows must be >= 1 or None")


class MaintenanceJanitor:
    """Runs scheduled storage maintenance over a set of replica databases.

    ``replication_horizon`` supplies the certifier's safe-to-reclaim
    boundary (see ``CertifierService.replication_horizon``); it may return
    ``None`` for a standalone database, in which case vacuum is clamped by
    local snapshots only.  ``certifier_gc`` is the certifier's
    ``collect_garbage`` (or any zero-argument callable returning records
    pruned); pass ``None`` when there is no certifier to maintain.
    """

    def __init__(
        self,
        databases: Sequence[Database],
        *,
        replication_horizon: Callable[[], int | None] | None = None,
        certifier_gc: Callable[[], int] | None = None,
        policy: JanitorPolicy | None = None,
    ) -> None:
        self.databases = list(databases)
        self._replication_horizon = replication_horizon
        self._certifier_gc = certifier_gc
        self.policy = policy or JanitorPolicy()
        self.stats = JanitorStats()
        self._last_run_ms: float | None = None

    # -- scheduling ----------------------------------------------------------

    def due(self, now_ms: float) -> bool:
        """Whether a maintenance run is due at ``now_ms``."""
        if self._last_run_ms is None:
            return True
        return now_ms - self._last_run_ms >= self.policy.vacuum_interval_ms

    def maybe_run(self, now_ms: float) -> bool:
        """Run maintenance if the cadence says it is due; returns whether it ran."""
        if not self.due(now_ms):
            return False
        self.run_once()
        self._last_run_ms = now_ms
        return True

    # -- one maintenance tick ------------------------------------------------

    def run_once(self) -> dict[str, int]:
        """One maintenance tick: incremental vacuum + certifier GC.

        Returns a summary dict (versions reclaimed, rows visited, certifier
        records pruned); cumulative totals live in :attr:`stats`.
        """
        horizon = (self._replication_horizon()
                   if self._replication_horizon is not None else None)
        reclaimed = 0
        visited = 0
        for database in self.databases:
            visited_before = sum(
                t.vacuum_rows_visited for t in database.tables.values())
            reclaimed += database.vacuum(
                replication_horizon=horizon,
                max_rows=self.policy.vacuum_batch_rows,
            )
            visited += sum(
                t.vacuum_rows_visited for t in database.tables.values()
            ) - visited_before
            self.stats.vacuum_passes += 1
            self.stats.last_horizon = max(self.stats.last_horizon,
                                          database.last_vacuum_horizon)
        pruned = 0
        if self.policy.run_certifier_gc and self._certifier_gc is not None:
            pruned = self._certifier_gc()
            self.stats.certifier_gc_runs += 1
        self.stats.runs += 1
        self.stats.versions_reclaimed += reclaimed
        self.stats.rows_visited += visited
        self.stats.certifier_records_pruned += pruned
        return {
            "versions_reclaimed": reclaimed,
            "rows_visited": visited,
            "certifier_records_pruned": pruned,
        }

    def __repr__(self) -> str:
        return (f"MaintenanceJanitor(databases={len(self.databases)}, "
                f"interval_ms={self.policy.vacuum_interval_ms}, "
                f"runs={self.stats.runs})")
