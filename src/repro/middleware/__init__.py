"""The replication middleware: transparent proxy + certifier.

This package implements the functional (non-simulated) replicated system:
real :class:`~repro.engine.database.Database` instances fronted by
transparent proxies, talking to a certifier service.  The three system
variants of the paper — Base, Tashkent-MW and Tashkent-API — differ only in
where durability lives and in whether the proxy can pass the global commit
order to the database; everything else is shared.

Clients attach either pinned (``ReplicatedSystem.session``, the paper's
static assignment) or routed through the cluster scheduler
(``ReplicatedSystem.routed_session``, see :mod:`repro.balancer` and
``docs/scheduler.md``).  The certifier front-end is either the paper's
single :class:`CertifierService` or, with ``certifier_shards > 1``, the
:class:`ShardedCertifierService` (``docs/certifier.md``).  The layer map is
in ``docs/architecture.md``.
"""

from repro.middleware.certifier import CertifierService
from repro.middleware.sharded_certifier import (
    ShardedCertifierService,
    make_certifier_service,
)
from repro.middleware.proxy import CommitOutcome, ProxyTransaction, TransparentProxy
from repro.middleware.replica import Replica
from repro.middleware.client_api import ClientSession
from repro.middleware.systems import (
    ReplicatedSystem,
    build_base_system,
    build_replicated_system,
    build_tashkent_api_system,
    build_tashkent_mw_system,
)

__all__ = [
    "CertifierService",
    "ClientSession",
    "CommitOutcome",
    "ProxyTransaction",
    "Replica",
    "ReplicatedSystem",
    "ShardedCertifierService",
    "TransparentProxy",
    "build_base_system",
    "make_certifier_service",
    "build_replicated_system",
    "build_tashkent_api_system",
    "build_tashkent_mw_system",
]
