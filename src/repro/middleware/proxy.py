"""The transparent proxy.

A proxy sits in front of every database replica, "appears as the database to
clients, and appears as a client to the database" (paper, Section 4.1).  It
tracks ``replica_version``, keeps a small amount of state per active
transaction, invokes certification at commit, applies remote writesets, and
enforces the global commit order at the replica.

The three system variants differ only in how step [C4]/[C5] of the paper's
pseudo-code is executed:

* **Base** — remote writesets are applied and the local transaction is
  committed serially; every commit is a synchronous WAL write at the replica.
* **Tashkent-MW** — identical control flow, but the replica database runs
  with synchronous commit disabled, so the serial commits are in-memory
  operations; durability lives in the certifier's log.
* **Tashkent-API** — remote writesets and the local commit are staged with
  ``COMMIT <version>`` and flushed in as few synchronous writes as the
  artificial-conflict structure permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.artificial_conflicts import ArtificialConflictDetector, SubmissionPlan
from repro.core.certification import CertificationRequest, CertificationResult, RemoteWriteSetInfo
from repro.core.config import SystemKind
from repro.core.versions import TransactionVersions, VersionClock
from repro.core.writeset import WriteSet
from repro.engine.database import Database
from repro.engine.transaction import EngineTransaction, TransactionStatus
from repro.errors import CertificationAborted, InvalidTransactionState, TransactionAborted
from repro.middleware.certifier import CertifierService


@dataclass
class ProxyTransaction:
    """Proxy-side state for one client transaction."""

    engine_txn: EngineTransaction
    versions: TransactionVersions
    label: str = ""

    @property
    def tx_start_version(self) -> int:
        return self.versions.tx_start_version

    @property
    def is_active(self) -> bool:
        return self.engine_txn.status is TransactionStatus.ACTIVE


@dataclass
class CommitOutcome:
    """What the client learns when it asks the proxy to commit."""

    committed: bool
    readonly: bool = False
    commit_version: int | None = None
    abort_reason: str | None = None
    remote_writesets_applied: int = 0
    #: Synchronous writes at the replica attributable to this commit.
    replica_fsyncs: int = 0


@dataclass
class ProxyStats:
    """Counters the evaluation and the tests read off a proxy."""

    begun: int = 0
    readonly_commits: int = 0
    update_commits: int = 0
    certification_aborts: int = 0
    local_certification_aborts: int = 0
    eager_precert_aborts: int = 0
    remote_writesets_applied: int = 0
    remote_batches_applied: int = 0
    artificial_conflicts: int = 0
    staleness_refreshes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class TransparentProxy:
    """The replication proxy attached to one database replica.

    ``certifier`` is either certifier front-end — the single
    :class:`CertifierService` or a :class:`~repro.middleware.
    sharded_certifier.ShardedCertifierService`; the proxy only uses the
    shared surface (certify / subscribe / refresh / horizon extension), so
    it is oblivious to the sharding.
    """

    def __init__(
        self,
        database: Database,
        certifier: CertifierService,
        *,
        system: SystemKind = SystemKind.TASHKENT_MW,
        replica_name: str = "replica-0",
        local_certification: bool = True,
        eager_pre_certification: bool = True,
    ) -> None:
        if system is SystemKind.STANDALONE:
            raise InvalidTransactionState("a standalone database has no proxy")
        self.database = database
        self.certifier = certifier
        self.system = system
        self.replica_name = replica_name
        self.local_certification = local_certification
        self.eager_pre_certification = eager_pre_certification
        self.replica_version = VersionClock(database.current_version)
        #: The proxy's local copy of remote writesets seen so far, used for
        #: local certification (paper calls this the ``proxy_log``).
        self.proxy_log: list[tuple[int, WriteSet]] = []
        self.conflict_detector = ArtificialConflictDetector()
        self.stats = ProxyStats()
        # Subscribe to the certifier's writeset stream (which also joins the
        # log-GC low-water-mark protocol, so an idle replica is never pruned
        # past before its first commit).  All remote writesets now arrive as
        # pushed batches on this subscription; there is no pull protocol.
        self.subscription = self.certifier.subscribe_replica(
            replica_name, database.current_version
        )
        # Tashkent-MW replicas run without synchronous commit at the database.
        if system is SystemKind.TASHKENT_MW:
            self.database.set_synchronous_commit(False)

    # ------------------------------------------------------------------ BEGIN

    def begin(self, label: str = "") -> ProxyTransaction:
        """Intercept BEGIN: assign the replica's latest snapshot (step [A1])."""
        engine_txn = self.database.begin()
        versions = TransactionVersions(tx_start_version=self.replica_version.version)
        self.stats.begun += 1
        return ProxyTransaction(engine_txn=engine_txn, versions=versions, label=label)

    # ------------------------------------------------------------------ reads / writes

    def read(self, txn: ProxyTransaction, table: str, key: object):
        """Forward a read to the database (step [B1])."""
        self._require_live(txn)
        return self.database.read(txn.engine_txn, table, key)

    def scan(self, txn: ProxyTransaction, table: str):
        self._require_live(txn)
        return self.database.scan(txn.engine_txn, table)

    def insert(self, txn: ProxyTransaction, table: str, key: object, **values: object) -> None:
        self._require_live(txn)
        self._eager_pre_certify(txn, table, key)
        self.database.insert(txn.engine_txn, table, key, **values)

    def update(self, txn: ProxyTransaction, table: str, key: object, **values: object) -> None:
        self._require_live(txn)
        self._eager_pre_certify(txn, table, key)
        self.database.update(txn.engine_txn, table, key, **values)

    def delete(self, txn: ProxyTransaction, table: str, key: object) -> None:
        self._require_live(txn)
        self._eager_pre_certify(txn, table, key)
        self.database.delete(txn.engine_txn, table, key)

    def _eager_pre_certify(self, txn: ProxyTransaction, table: str, key: object) -> None:
        """Abort early if this write already conflicts with a seen remote writeset.

        This is the paper's eager pre-certification (Section 8.2): each write
        is checked against the remote writesets committed after the
        transaction's snapshot; a conflict means certification would fail
        anyway, so the transaction aborts immediately, freeing its locks.
        """
        if not self.eager_pre_certification:
            return
        for commit_version, writeset in self.proxy_log:
            if commit_version <= txn.versions.effective_start_version:
                continue
            if writeset.touches(table, key):
                self.database.abort(txn.engine_txn, reason="eager-pre-certification")
                self.stats.eager_precert_aborts += 1
                raise CertificationAborted(
                    f"write to {(table, key)!r} conflicts with remote writeset "
                    f"committed at version {commit_version}"
                )

    # ------------------------------------------------------------------ COMMIT

    def commit(self, txn: ProxyTransaction) -> CommitOutcome:
        """Intercept COMMIT (steps [C1]-[C5] of the paper's pseudo-code)."""
        self._require_live(txn)
        fsyncs_before = self.database.fsync_count

        # [C1] extract the writeset.
        writeset = self.database.extract_writeset(txn.engine_txn)

        # [C2] read-only transactions commit immediately.
        if writeset.is_empty():
            self.database.commit(txn.engine_txn)
            self.stats.readonly_commits += 1
            return CommitOutcome(committed=True, readonly=True)

        # Local certification (Section 6.2): check against remote writesets
        # already seen, advancing the effective start version as we go.
        if self.local_certification and not self._locally_certify(txn, writeset):
            self.database.abort(txn.engine_txn, reason="local-certification")
            self.stats.local_certification_aborts += 1
            self.stats.certification_aborts += 1
            return CommitOutcome(committed=False, abort_reason="local-certification")

        # [C2 cont.] invoke certification at the certifier.
        request = CertificationRequest(
            tx_start_version=txn.versions.effective_start_version,
            writeset=writeset,
            replica_version=self.replica_version.version,
            origin_replica=self.replica_name,
            check_remote_back_to=(
                self.replica_version.version if self.system.supports_ordered_commit else None
            ),
        )
        result = self.certifier.certify(request)

        # [C3]/[C4]/[C5] apply remote writesets and finalise the commit.
        if self.system.supports_ordered_commit:
            outcome = self._finalize_ordered(txn, writeset, result)
        else:
            outcome = self._finalize_serial(txn, writeset, result)
        outcome.replica_fsyncs = self.database.fsync_count - fsyncs_before
        # Everything up to replica_version arrived in-band with this commit;
        # trimming the subscription keeps a busy replica's queue bounded even
        # if it never becomes idle enough to refresh.
        self.subscription.advance_to(self.replica_version.version)
        return outcome

    def abort(self, txn: ProxyTransaction) -> None:
        """Client-requested abort."""
        if txn.engine_txn.status is TransactionStatus.ACTIVE:
            self.database.abort(txn.engine_txn, reason="client-abort")

    # ------------------------------------------------------------------ serial path (Base, Tashkent-MW)

    def _finalize_serial(self, txn: ProxyTransaction, writeset: WriteSet,
                         result: CertificationResult) -> CommitOutcome:
        """Steps [C4]+[C5] with serial commits (Base and Tashkent-MW).

        The grouped remote writesets commit first (one database commit, hence
        one synchronous write when durability is in the database), then the
        local transaction commits (a second synchronous write).
        """
        applied = self._apply_remote_serial(result.remote_writesets)

        if not result.committed:
            self.database.abort(txn.engine_txn, reason="certification")
            self.stats.certification_aborts += 1
            return CommitOutcome(
                committed=False,
                abort_reason="forced-abort" if result.forced_abort else "certification",
                remote_writesets_applied=applied,
            )

        commit_version = result.tx_commit_version
        assert commit_version is not None
        if txn.engine_txn.status is not TransactionStatus.ACTIVE:
            # The local transaction lost its locks to a remote writeset while
            # we were waiting for certification (priority rule).  The paper's
            # soft-recovery path re-applies it; here we surface the abort.
            self.stats.certification_aborts += 1
            return CommitOutcome(committed=False, abort_reason="soft-recovery",
                                 remote_writesets_applied=applied)
        self.database.commit(txn.engine_txn, version=commit_version)
        txn.versions.mark_committed(commit_version)
        self.proxy_log.append((commit_version, writeset))
        self.replica_version.advance_to(commit_version)
        self.stats.update_commits += 1
        return CommitOutcome(
            committed=True,
            commit_version=commit_version,
            remote_writesets_applied=applied,
        )

    def _apply_remote_serial(self, remote: list[RemoteWriteSetInfo]) -> int:
        """Apply remote writesets as one group ([C4]).

        Uses the engine's group-apply path: every writeset is installed at
        its own global commit version, but the batch costs a single version
        bump and a single WAL append (one synchronous write at most).
        """
        pending = [info for info in remote
                   if info.commit_version > self.replica_version.version]
        if not pending:
            return 0
        max_version = max(info.commit_version for info in pending)
        self.database.apply_writeset_batch(
            (info.commit_version, info.writeset) for info in pending
        )
        for info in pending:
            self.proxy_log.append((info.commit_version, info.writeset))
        self.replica_version.advance_to(max_version)
        self.stats.remote_writesets_applied += len(pending)
        self.stats.remote_batches_applied += 1
        return len(pending)

    # ------------------------------------------------------------------ ordered path (Tashkent-API)

    def _finalize_ordered(self, txn: ProxyTransaction, writeset: WriteSet,
                          result: CertificationResult) -> CommitOutcome:
        """Steps [C4]+[C5] using the extended COMMIT <version> API.

        Remote writesets and the local commit are staged concurrently; the
        database groups their commit records into one flush per
        artificial-conflict-free group (Section 5.2.1).
        """
        pending = [info for info in result.remote_writesets
                   if info.commit_version > self.replica_version.version]
        plan = self.conflict_detector.plan(pending, self.replica_version.version)
        self.stats.artificial_conflicts += plan.artificial_conflicts

        if not result.committed:
            # Still apply the remote writesets so the replica does not fall
            # behind, then abort the local transaction.
            applied = self._apply_plan(plan, local_txn=None, local_version=None)
            self.database.abort(txn.engine_txn, reason="certification")
            self.stats.certification_aborts += 1
            return CommitOutcome(
                committed=False,
                abort_reason="forced-abort" if result.forced_abort else "certification",
                remote_writesets_applied=applied,
            )

        commit_version = result.tx_commit_version
        assert commit_version is not None
        if txn.engine_txn.status is not TransactionStatus.ACTIVE:
            applied = self._apply_plan(plan, local_txn=None, local_version=None)
            self.stats.certification_aborts += 1
            return CommitOutcome(committed=False, abort_reason="soft-recovery",
                                 remote_writesets_applied=applied)

        applied = self._apply_plan(plan, local_txn=txn.engine_txn, local_version=commit_version)
        txn.versions.mark_committed(commit_version)
        self.proxy_log.append((commit_version, writeset))
        self.replica_version.advance_to(commit_version)
        self.stats.update_commits += 1
        return CommitOutcome(
            committed=True,
            commit_version=commit_version,
            remote_writesets_applied=applied,
        )

    def _apply_plan(self, plan: SubmissionPlan, *, local_txn: EngineTransaction | None,
                    local_version: int | None) -> int:
        """Submit a submission plan to the database using ordered commits."""
        applied = 0
        groups = plan.groups if plan.groups else []
        if not groups and local_txn is None:
            return 0
        if not groups:
            groups = [[]]
        last_index = len(groups) - 1
        max_remote_version = self.replica_version.version
        for index, group in enumerate(groups):
            for info in group:
                # The remote writeset runs as its own transaction whose
                # commit carries the original global version.
                self.database.abort_conflicting_transactions(
                    info.writeset, reason="remote-writeset-priority"
                )
                remote_txn = self.database.begin()
                self._buffer_writeset(remote_txn, info.writeset)
                self.database.commit_ordered(remote_txn, info.commit_version)
                self.proxy_log.append((info.commit_version, info.writeset))
                applied += 1
                max_remote_version = max(max_remote_version, info.commit_version)
            if index == last_index and local_txn is not None and local_version is not None:
                self.database.commit_ordered(local_txn, local_version)
            # One synchronous write per group; the local commit shares the
            # final group's flush.
            self.database.flush_ordered_commits()
        if applied:
            self.stats.remote_writesets_applied += applied
            self.stats.remote_batches_applied += 1
            if max_remote_version > self.replica_version.version:
                self.replica_version.advance_to(max_remote_version)
        return applied

    def _buffer_writeset(self, txn: EngineTransaction, writeset: WriteSet) -> None:
        from repro.core.writeset import WriteOp  # local import to avoid cycle noise

        for item in writeset:
            if item.op is WriteOp.INSERT:
                self.database.insert(txn, item.table, item.key, **dict(item.values))
            elif item.op is WriteOp.UPDATE:
                self.database.update(txn, item.table, item.key, **dict(item.values))
            else:
                self.database.delete(txn, item.table, item.key)

    # ------------------------------------------------------------------ local certification

    def _locally_certify(self, txn: ProxyTransaction, writeset: WriteSet) -> bool:
        """Partial certification against the proxy's copy of remote writesets.

        Advances the transaction's effective start version past every remote
        writeset it does not conflict with, reducing the work at the
        certifier; returns False when a conflict is found (the transaction
        can be aborted without a round trip).
        """
        effective = txn.versions.effective_start_version
        for commit_version, remote_ws in self.proxy_log:
            if commit_version <= effective:
                continue
            if writeset.conflicts_with(remote_ws):
                return False
            if commit_version == effective + 1:
                effective = commit_version
        txn.versions.advance_effective_start(effective)
        return True

    # ------------------------------------------------------------------ bounded staleness

    def refresh(self) -> int:
        """Drain the writeset subscription and apply what is missing (§6.2).

        Returns the number of writesets applied.  Called by the replica when
        it has not received updates for ``staleness_bound_ms``.  The pushed
        batches pending on the subscription are coalesced and applied as one
        group — the paper's grouped remote transaction (T1_2_3) — so a
        refresh costs at most one synchronous write on the serial path.
        """
        # Bounded staleness overrides the batching policy: deliver whatever
        # the certifier has released, even a sub-cap/sub-window tail the
        # policy would keep holding.  (One call on either certifier shape:
        # the sharded service flushes every shard stream.)
        self.certifier.flush_propagation()
        # The subscription cursor can trail ``replica_version`` when writesets
        # arrived in-band with a certification response; advancing it first
        # drops those from the poll, so the ordered path never re-applies a
        # version it already holds.
        self.subscription.advance_to(self.replica_version.version)
        remote = self.subscription.poll_flat()
        self.stats.staleness_refreshes += 1
        if not remote:
            # Report the applied watermark even when nothing new arrived, so a
            # read-mostly replica keeps feeding the certifier's log-GC protocol.
            self.certifier.register_replica(self.replica_name, self.replica_version.version)
            return 0
        if self.system.supports_ordered_commit:
            # Ask the certifier to extend the intersection tests back to this
            # replica's version (the pull protocol's check_back_to), so
            # conflict-free writesets can share one submission group instead
            # of serializing on their propagation-time horizons.
            remote = self.certifier.extend_remote_horizons(
                remote, self.replica_version.version
            )
            plan = self.conflict_detector.plan(remote, self.replica_version.version)
            applied = self._apply_plan(plan, local_txn=None, local_version=None)
        else:
            applied = self._apply_remote_serial(remote)
        # The watermark report happens *after* the batch is applied — a
        # refresh-only replica must feed its post-apply version to the
        # certifier's low-water protocol, or it pins GC (and the vacuum
        # replication horizon) at its pre-refresh version forever.
        self.certifier.register_replica(self.replica_name, self.replica_version.version)
        return applied

    # ------------------------------------------------------------------ helpers

    def _require_live(self, txn: ProxyTransaction) -> None:
        if txn.engine_txn.status is TransactionStatus.ABORTED:
            raise TransactionAborted(
                f"transaction {txn.engine_txn.txn_id} was aborted "
                f"({txn.engine_txn.abort_reason})",
                reason=txn.engine_txn.abort_reason or "abort",
            )
        if txn.engine_txn.status is not TransactionStatus.ACTIVE:
            raise InvalidTransactionState(
                f"transaction {txn.engine_txn.txn_id} is {txn.engine_txn.status.value}"
            )

    def __repr__(self) -> str:
        return (
            f"TransparentProxy(replica={self.replica_name!r}, system={self.system.value}, "
            f"replica_version={self.replica_version.version})"
        )
