"""The certifier service.

Wraps the pure certification logic of :class:`repro.core.certification.Certifier`
with the two responsibilities the paper gives the certifier process:

* a **persistent log** — every certified writeset is written to a log device
  and (when durability is enabled) made durable before the commit decision is
  released to the replica.  The single log-writer design means all writesets
  pending at flush time share one synchronous write; the resulting
  writesets-per-fsync statistic is the paper's key explanation of
  Tashkent-MW's scalability.
* **forced aborts** — the abort-injection knob used by the Section 9.5
  experiment, driven by a deterministic RNG.

The functional path in this module is synchronous (a certification request
returns only once the decision is durable).  The simulated certifier node in
:mod:`repro.cluster.certifier_node` reuses the same :class:`CertifierService`
but overlaps many requests against one flush, which is where batching pays
off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.certification import (
    CertificationRequest,
    CertificationResult,
    Certifier,
    RemoteWriteSetInfo,
)
from repro.core.certifier_log import CertifierLog
from repro.core.group_commit import GroupCommitBatcher
from repro.core.stats import CertifierServiceStats
from repro.engine.log_device import CountingLogDevice, LogDevice
from repro.errors import ConfigurationError, ReproError
from repro.transport import FlushPolicy, WritesetStream, WritesetSubscription


@dataclass
class CertifierConfig:
    """Behavioural switches of the certifier service."""

    #: Write the certification log to the log device on the critical path.
    durability_enabled: bool = True
    #: Fraction of successfully certified requests aborted anyway (§9.5).
    forced_abort_rate: float = 0.0
    rng_seed: int = 1
    #: Run log garbage collection every this many certification requests.
    #: 0 disables automatic GC (the log then grows without bound, as in the
    #: seed implementation); :meth:`CertifierService.collect_garbage` can
    #: still be called explicitly.
    gc_interval_requests: int = 256
    #: Records kept below the low-water mark so in-flight transactions whose
    #: start version slightly trails their replica's reported version are
    #: never conservatively aborted ("snapshot too old").
    gc_headroom_versions: int = 256
    #: Batching policy of the outbound writeset stream.  ``None`` keeps the
    #: stream on explicit flushing, which aligns every propagation batch with
    #: a durability flush: exactly the writesets that shared one fsync are
    #: delivered to the replicas as one batch.
    propagation_policy: FlushPolicy | None = None
    #: Number of certification shards.  1 (the default, and the paper's
    #: design) is served by :class:`CertifierService`; higher values are
    #: served by :class:`~repro.middleware.sharded_certifier.
    #: ShardedCertifierService`, which partitions the item keyspace across
    #: independent certify/flush/propagate pipelines (``docs/certifier.md``).
    shards: int = 1


class CertifierService:
    """A single certifier node (the leader of the certifier group)."""

    def __init__(
        self,
        config: CertifierConfig | None = None,
        *,
        log_device: LogDevice | None = None,
        log: CertifierLog | None = None,
    ) -> None:
        self.config = config if config is not None else CertifierConfig()
        if self.config.shards > 1:
            raise ConfigurationError(
                "CertifierService serves exactly one shard; build a "
                "ShardedCertifierService (or use make_certifier_service) "
                f"for shards={self.config.shards}"
            )
        self.device: LogDevice = log_device if log_device is not None else CountingLogDevice()
        self._rng = random.Random(self.config.rng_seed)
        self.core = Certifier(
            log,
            forced_abort_rate=self.config.forced_abort_rate,
            abort_chooser=self._rng.random,
        )
        self._batcher: GroupCommitBatcher[int] = GroupCommitBatcher()
        #: The outbound propagation channel shared by every replica proxy.
        self.stream = WritesetStream(policy=self.config.propagation_policy)
        #: With no custom policy, propagation batches align with durability
        #: flushes (the fsync group is the batch boundary).
        self._fsync_aligned_propagation = self.config.propagation_policy is None

    # -- main request path ------------------------------------------------------

    def certify(self, request: CertificationRequest) -> CertificationResult:
        """Certify a transaction and (if enabled) make the decision durable."""
        result = self.core.certify(request)
        if result.committed and result.tx_commit_version is not None:
            self._batcher.enqueue(result.tx_commit_version)
            if self.config.durability_enabled:
                self.flush()
            else:
                # The decision is released before the log write, so the
                # writeset propagates immediately rather than at flush time.
                self.stream.propagate_from_log(
                    self.core.log, (result.tx_commit_version,),
                    aligned=self._fsync_aligned_propagation,
                )
        interval = self.config.gc_interval_requests
        if interval > 0 and self.core.certification_requests % interval == 0:
            if not self.config.durability_enabled:
                # tashAPInoCERT keeps the log write off the critical path but
                # still writes it eventually (the sim's lazy log-writer loop);
                # flush here so the durable horizon — and with it GC — keeps
                # advancing instead of pinning prune_to at version 0.
                self.flush()
            self.collect_garbage()
        return result

    def certify_batch(
        self, requests: list[CertificationRequest],
    ) -> list[CertificationResult | ReproError]:
        """Certify a group of requests sharing one durability flush.

        Decisions, versions and remote windows are exactly what a sequential
        ``certify`` loop would produce (the requests run through the core one
        by one, in order); the batch only coalesces the *IO*: every commit in
        the round shares a single log flush — one fsync covering the whole
        group — instead of one per transaction.  Per-request failures are
        returned in place as the exception instance.
        """
        before = self.core.certification_requests
        outcomes: list[CertificationResult | ReproError] = []
        for request in requests:
            try:
                result = self.core.certify(request)
            except ReproError as exc:
                outcomes.append(exc)
                continue
            outcomes.append(result)
            if result.committed and result.tx_commit_version is not None:
                self._batcher.enqueue(result.tx_commit_version)
                if not self.config.durability_enabled:
                    self.stream.propagate_from_log(
                        self.core.log, (result.tx_commit_version,),
                        aligned=self._fsync_aligned_propagation,
                    )
        if self.config.durability_enabled:
            self.flush()
        interval = self.config.gc_interval_requests
        if interval > 0 and (before // interval
                             != self.core.certification_requests // interval):
            if not self.config.durability_enabled:
                self.flush()
            self.collect_garbage()
        return outcomes

    def fetch_remote_writesets(self, replica_version: int,
                               check_back_to: int | None = None,
                               *, replica: str | None = None,
                               up_to: int | None = None,
                               exclude_version: int | None = None) -> list[RemoteWriteSetInfo]:
        """Serve a bounded-staleness refresh request (no certification)."""
        return self.core.fetch_remote_writesets(replica_version, check_back_to,
                                                replica=replica, up_to=up_to,
                                                exclude_version=exclude_version)

    def extend_remote_horizons(self, infos: list[RemoteWriteSetInfo],
                               back_to: int) -> list[RemoteWriteSetInfo]:
        """Extend pushed writesets' conflict-free horizons (Section 5.2.1)."""
        return self.core.extend_remote_horizons(infos, back_to)

    # -- log garbage collection -----------------------------------------------

    def register_replica(self, replica: str, version: int = 0) -> None:
        """Introduce a replica to the low-water-mark protocol.

        Until a replica is known (registered or seen on a certification
        request) it does not constrain GC, so connected-but-idle replicas
        must be registered to keep their log suffix alive.
        """
        self.core.note_replica_version(replica, version)

    def disconnect_replica(self, replica: str) -> None:
        """Remove a replica from the low-water-mark protocol and the stream.

        Closing the stream subscription matters as much as forgetting the
        watermark: a dead subscription would otherwise accumulate every
        future batch unread, unbounded by log GC.
        """
        self.core.forget_replica(replica)
        self.stream.detach_replica(replica)

    def collect_garbage(self) -> int:
        """Prune the durable log prefix below the replicas' low-water mark."""
        return self.core.collect_garbage(headroom=self.config.gc_headroom_versions)

    def replication_horizon(self) -> int:
        """Highest version every subscribed replica has already applied.

        This is the replica low-water mark minus the GC headroom — the same
        retention boundary log GC prunes to — and is what replicas feed into
        ``Database.vacuum(replication_horizon=...)``: versions at or below
        it can never again be requested by a lagging or resubscribing
        replica.  Conservatively 0 while no replica has reported (an unknown
        fleet pins the horizon, exactly like it pins log GC).
        """
        low_water = self.core.low_water_mark()
        if low_water is None:
            return 0
        return max(0, low_water - self.config.gc_headroom_versions)

    # -- durability ---------------------------------------------------------------

    def flush(self) -> int:
        """Flush all pending log records with one synchronous write.

        Returns the number of records made durable.  Called automatically on
        the certification path when durability is enabled; the simulated
        certifier calls it from its log-writer loop instead.
        """
        if not self._batcher.has_pending:
            return 0
        batch = self._batcher.take_batch()
        for commit_version in batch:
            record = self.core.log.record_at(commit_version)
            self.device.append(record.writeset.size_bytes().to_bytes(4, "big"))
        self.device.sync()
        self._batcher.complete_batch()
        self.core.log.mark_durable(max(batch))
        # Propagate the freshly durable writesets: with the default explicit
        # policy the delivered batch is exactly this fsync group; a custom
        # policy decides its own batch boundaries.
        self.stream.propagate_from_log(self.core.log, batch,
                                       aligned=self._fsync_aligned_propagation)
        return len(batch)

    # -- propagation (the transport layer) -------------------------------------

    def flush_propagation(self) -> None:
        """Deliver everything the stream is still holding (refresh override).

        Bounded staleness overrides the batching policy: a refresh delivers
        whatever the certifier has released, even a sub-cap/sub-window tail.
        One method on both certifier front-ends (the sharded service flushes
        every shard stream), so the proxy needs no knowledge of the shape.
        """
        self.stream.flush()

    def subscribe_replica(self, replica: str, from_version: int = 0) -> WritesetSubscription:
        """Attach a replica to the writeset stream (and the GC protocol).

        The subscription is backfilled with every log record after
        ``from_version`` so a late joiner starts complete; afterwards the
        replica receives writesets purely as pushed batches.
        """
        return self.stream.attach_replica(self.core, replica, from_version)

    # -- statistics ------------------------------------------------------------------

    @property
    def fsync_count(self) -> int:
        return self.device.sync_count

    @property
    def writesets_per_fsync(self) -> float:
        """Average number of certified writesets per synchronous log write."""
        return self._batcher.stats.average_batch_size

    @property
    def system_version(self) -> int:
        return self.core.system_version.version

    @property
    def log(self) -> CertifierLog:
        return self.core.log

    def stats_snapshot(self) -> CertifierServiceStats:
        """Typed service snapshot (core + durability + propagation batching)."""
        return CertifierServiceStats(
            core=self.core.stats_snapshot(),
            flush=self._batcher.stats,
            propagation=self.stream.stats,
            fsyncs=self.fsync_count,
            durable_version=self.core.log.durable_version,
            shards=1,
        )

    def stats(self) -> dict[str, float]:
        return self.stats_snapshot().as_dict()

    def __repr__(self) -> str:
        return (
            f"CertifierService(version={self.system_version}, "
            f"durable={self.core.log.durable_version}, fsyncs={self.fsync_count})"
        )
