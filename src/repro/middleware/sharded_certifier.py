"""The sharded certifier service (functional stack).

Wraps the pure :class:`~repro.core.sharding.ShardedCertifier` with the IO
duties of a certifier deployment, one pipeline *per shard*:

* each shard owns its own log device, its own group-commit batcher and its
  own :class:`~repro.transport.WritesetStream` — a single-shard transaction
  certifies, flushes and propagates entirely within one shard, with no
  cross-shard coordination;
* a cross-shard transaction's decision is released only once its fragment
  is durable on **every** touched shard (the all-shards-commit half of the
  merge; the any-shard-aborts half never reaches IO — see
  :meth:`ShardedCertifier.certify <repro.core.sharding.ShardedCertifier.certify>`);
* propagation is driven by the global durability frontier: full writesets
  are offered to their *home shard*'s stream in strict global version
  order, and every replica consumes the per-shard streams through one
  :class:`~repro.transport.MergedSubscription`, so the proxy refresh path
  and :meth:`Database.apply_writeset_batch` work unchanged.

The service mirrors the :class:`~repro.middleware.certifier.CertifierService`
surface (``certify`` / ``subscribe_replica`` / ``flush`` /
``flush_propagation`` / ``stats`` / ...) — the transparent proxy and the
system factories treat the two interchangeably.  :func:`make_certifier_service`
picks the implementation from ``CertifierConfig.shards``; with ``shards=1``
the seed service is used, byte for byte.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.certification import (
    CertificationRequest,
    CertificationResult,
    RemoteWriteSetInfo,
)
from repro.core.certifier_log import CertifierLog
from repro.core.group_commit import GroupCommitBatcher
from repro.core.sharding import Partitioner, ShardedCertifier
from repro.core.stats import (
    CertifierServiceStats,
    merged_group_commit_stats,
)
from repro.engine.log_device import CountingLogDevice, LogDevice
from repro.errors import ConfigurationError, ReproError
from repro.middleware.certifier import CertifierConfig, CertifierService
from repro.transport import MergedSubscription, WritesetStream


class ShardedCertifierService:
    """N certification shards behind one certifier-service interface."""

    def __init__(
        self,
        config: CertifierConfig | None = None,
        *,
        log_devices: list[LogDevice] | None = None,
        partitioner: Partitioner | None = None,
    ) -> None:
        self.config = config if config is not None else CertifierConfig(shards=2)
        if self.config.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        shards = self.config.shards
        if log_devices is not None and len(log_devices) != shards:
            raise ConfigurationError(
                f"need one log device per shard ({shards}), got {len(log_devices)}"
            )
        self._rng = random.Random(self.config.rng_seed)
        self.core = ShardedCertifier(
            shards,
            partitioner=partitioner,
            forced_abort_rate=self.config.forced_abort_rate,
            abort_chooser=self._rng.random,
        )
        self.devices: list[LogDevice] = (
            list(log_devices) if log_devices is not None
            else [CountingLogDevice() for _ in range(shards)]
        )
        #: Per-shard flush queues: entries are (global, shard-local) versions.
        self._batchers: list[GroupCommitBatcher[tuple[int, int]]] = [
            GroupCommitBatcher() for _ in range(shards)
        ]
        #: Per-shard outbound propagation channels (home-shard publication).
        self.streams = [
            WritesetStream(policy=self.config.propagation_policy)
            for _ in range(shards)
        ]
        self._fsync_aligned_propagation = self.config.propagation_policy is None

    # -- main request path ------------------------------------------------------

    def certify(self, request: CertificationRequest) -> CertificationResult:
        """Certify a transaction; release the decision once it is durable on
        every shard it touched."""
        result = self.core.certify(request)
        if result.committed and result.tx_commit_version is not None:
            record = self.core.record_at(result.tx_commit_version)
            for shard_id, local in record.shard_locals:
                self._batchers[shard_id].enqueue((result.tx_commit_version, local))
            if self.config.durability_enabled:
                self.flush(shard_ids=[s for s, _ in record.shard_locals])
            else:
                # Decision released before the log write: propagate now (the
                # lazily flushed log stays off the critical path).
                self._propagate_up_to(self.core.last_version)
        interval = self.config.gc_interval_requests
        if interval > 0 and self.core.certification_requests % interval == 0:
            if not self.config.durability_enabled:
                self.flush()
            self.collect_garbage()
        return result

    def certify_batch(
        self, requests: list[CertificationRequest],
    ) -> list[CertificationResult | ReproError]:
        """Certify a group of requests as one round with shared flushes.

        Decisions/versions/remote windows come from
        :meth:`ShardedCertifier.certify_batch <repro.core.sharding.
        ShardedCertifier.certify_batch>` (sequentially equivalent by
        construction); the service then enqueues *every* admitted fragment of
        the round before flushing, so each touched shard pays **one**
        synchronous log write for the whole batch instead of one per
        transaction — the paper's group-commit economics, applied to the
        certifier's own log.  Per-request failures are returned in place.
        """
        before = self.core.certification_requests
        outcomes = self.core.certify_batch(requests)
        touched: set[int] = set()
        for outcome in outcomes:
            if (isinstance(outcome, CertificationResult) and outcome.committed
                    and outcome.tx_commit_version is not None):
                record = self.core.record_at(outcome.tx_commit_version)
                for shard_id, local in record.shard_locals:
                    self._batchers[shard_id].enqueue(
                        (outcome.tx_commit_version, local))
                    touched.add(shard_id)
        if touched:
            if self.config.durability_enabled:
                self.flush(shard_ids=sorted(touched))
            else:
                self._propagate_up_to(self.core.last_version)
        interval = self.config.gc_interval_requests
        if interval > 0 and (before // interval
                             != self.core.certification_requests // interval):
            if not self.config.durability_enabled:
                self.flush()
            self.collect_garbage()
        return outcomes

    def fetch_remote_writesets(self, replica_version: int,
                               check_back_to: int | None = None,
                               *, replica: str | None = None,
                               up_to: int | None = None,
                               exclude_version: int | None = None) -> list[RemoteWriteSetInfo]:
        """Serve a bounded-staleness refresh request (merged version order)."""
        return self.core.fetch_remote_writesets(replica_version, check_back_to,
                                                replica=replica, up_to=up_to,
                                                exclude_version=exclude_version)

    def extend_remote_horizons(self, infos: list[RemoteWriteSetInfo],
                               back_to: int) -> list[RemoteWriteSetInfo]:
        """Extend pushed writesets' conflict-free horizons (Section 5.2.1)."""
        return self.core.extend_remote_horizons(infos, back_to)

    # -- log garbage collection -----------------------------------------------

    def register_replica(self, replica: str, version: int = 0) -> None:
        """Introduce a replica to the low-water-mark protocol."""
        self.core.note_replica_version(replica, version)

    def disconnect_replica(self, replica: str) -> None:
        """Drop a replica from GC and close its shard-stream subscriptions."""
        self.core.forget_replica(replica)
        for stream in self.streams:
            stream.detach_replica(replica)

    def collect_garbage(self) -> int:
        """Prune the directory and every shard log below the low-water mark."""
        return self.core.collect_garbage(headroom=self.config.gc_headroom_versions)

    def replication_horizon(self) -> int:
        """Highest version every subscribed replica has applied, minus the GC
        headroom — the vacuum horizon replicas may safely reclaim below (see
        :meth:`CertifierService.replication_horizon`)."""
        low_water = self.core.low_water_mark()
        if low_water is None:
            return 0
        return max(0, low_water - self.config.gc_headroom_versions)

    # -- durability ---------------------------------------------------------------

    def flush(self, shard_ids: list[int] | None = None) -> int:
        """Flush the pending records of the given shards (default: all).

        Each shard costs one synchronous write on its own device; distinct
        shards never share an fsync — that independence is precisely what a
        sharded deployment buys.  Returns the number of log records (writeset
        fragments) made durable.
        """
        targets = range(self.config.shards) if shard_ids is None else shard_ids
        flushed = 0
        for shard_id in targets:
            flushed += self._flush_shard(shard_id)
        if flushed:
            self._propagate_up_to()
        return flushed

    def _flush_shard(self, shard_id: int) -> int:
        batcher = self._batchers[shard_id]
        if not batcher.has_pending:
            return 0
        shard = self.core.shards[shard_id]
        device = self.devices[shard_id]
        batch = batcher.take_batch()
        for _global_version, local_version in batch:
            record = shard.log.record_at(local_version)
            device.append(record.writeset.size_bytes().to_bytes(4, "big"))
        device.sync()
        batcher.complete_batch()
        shard.log.mark_durable(max(local for _, local in batch))
        self.core.advance_durable_frontier()
        return len(batch)

    # -- propagation (the transport layer) -------------------------------------

    def _propagate_up_to(self, version: int | None = None) -> None:
        """Offer committed records up to ``version`` to their home streams.

        The frontier-ordered walk itself lives in
        :meth:`ShardedCertifier.take_propagatable` (shared with the sim
        node); this method only places each record on its home stream and
        cuts the batches.  Strict global order means each shard stream
        carries an ascending (sparse) slice of the commit order, so the
        replica-side :class:`MergedSubscription` can release contiguous runs.
        """
        touched: set[int] = set()
        for record in self.core.take_propagatable(version):
            self.streams[record.home_shard].offer(
                RemoteWriteSetInfo(
                    commit_version=record.commit_version,
                    writeset=record.writeset,
                    origin_replica=record.origin_replica,
                    conflict_free_back_to=self.core.certified_back_to(
                        record.commit_version),
                )
            )
            touched.add(record.home_shard)
        for shard_id in touched:
            if self._fsync_aligned_propagation:
                self.streams[shard_id].flush()
            else:
                self.streams[shard_id].flush_due()

    def flush_propagation(self) -> None:
        """Deliver everything every shard stream is still holding."""
        for stream in self.streams:
            stream.flush()

    def subscribe_replica(self, replica: str, from_version: int = 0) -> MergedSubscription:
        """Attach a replica to every shard stream behind one merged view.

        Backfilled from the global directory so a late joiner starts
        complete; also enrols the replica in the log-GC low-water-mark
        protocol, exactly like the single service.
        """
        self.core.note_replica_version(replica, from_version)
        backfill = self.core.fetch_remote_writesets(from_version, replica=replica)
        parts = [
            stream.subscribe(replica, from_version=from_version)
            for stream in self.streams
        ]
        return MergedSubscription(parts, from_version=from_version, name=replica,
                                  backfill=backfill)

    # -- failover hooks ----------------------------------------------------------

    def export_rounds(self) -> list[tuple[int, object, str, int]]:
        """The retained commit rounds, oldest first, for a warm standby.

        Each element is ``(commit_version, writeset, origin_replica,
        global_conflict_horizon)`` — exactly the shape
        :meth:`ShardedCertifier.rebuild <repro.core.sharding.ShardedCertifier.
        rebuild>` replays, so a standby service can be rebuilt from a live
        service's directory (or, in the consensus-backed deployment, from the
        shard groups via :mod:`repro.recovery.sharded_recovery`).
        """
        return [
            (record.commit_version, record.writeset, record.origin_replica,
             self.core.certified_back_to(record.commit_version))
            for record in self.core.records_after(self.core.pruned_version)
        ]

    def export_state_transfer(self) -> "StateTransferPackage":
        """Package the retained state as one checksummed transfer unit.

        The anti-entropy analogue of :meth:`export_rounds`: a standby
        validates the package before installing it (a partial or corrupted
        download is detected and re-fetched instead of seeding a silently
        divergent certifier), and it carries the replica watermarks so the
        standby can keep garbage-collecting without waiting for every
        replica to check back in.
        """
        from repro.recovery.snapshots import StateTransferPackage

        return StateTransferPackage.capture(self.core)

    @classmethod
    def from_state_transfer(
        cls,
        package: "StateTransferPackage",
        *,
        config: CertifierConfig | None = None,
        log_devices: list[LogDevice] | None = None,
        partitioner: Partitioner | None = None,
    ) -> "ShardedCertifierService":
        """Bootstrap a standby service from a validated transfer package."""
        package.validate()
        core = ShardedCertifier.rebuild(
            package.num_shards,
            list(package.rounds),
            pruned_to=package.horizon,
            base_version=package.horizon,
            partitioner=partitioner,
        )
        for replica, version in package.replica_versions:
            core.note_replica_version(replica, version)
        return cls.from_recovered_core(core, config=config,
                                       log_devices=log_devices)

    @classmethod
    def from_recovered_core(
        cls,
        core: ShardedCertifier,
        *,
        config: CertifierConfig | None = None,
        log_devices: list[LogDevice] | None = None,
    ) -> "ShardedCertifierService":
        """Build a service around a recovered coordinator (failover).

        The per-shard IO pipelines — log devices, group-commit batchers,
        propagation streams — start empty: a recovered coordinator's records
        are already durable (that is what made them recoverable), and a
        re-subscribing replica is backfilled from the directory by
        :meth:`subscribe_replica`, so the fresh streams only ever carry
        post-failover commits.
        """
        base = config if config is not None else CertifierConfig()
        service = cls(
            dataclasses.replace(base, shards=core.num_shards),
            log_devices=log_devices,
            partitioner=core.partitioner,
        )
        service.core = core
        return service

    # -- statistics ------------------------------------------------------------------

    @property
    def fsync_count(self) -> int:
        return sum(device.sync_count for device in self.devices)

    @property
    def writesets_per_fsync(self) -> float:
        """Average log records per synchronous write, across all shards."""
        merged = merged_group_commit_stats([b.stats for b in self._batchers])
        return merged.average_batch_size

    @property
    def system_version(self) -> int:
        return self.core.system_version.version

    @property
    def shard_logs(self) -> list[CertifierLog]:
        """The per-shard logs (shard-local version coordinates)."""
        return [shard.log for shard in self.core.shards]

    def stats_snapshot(self) -> CertifierServiceStats:
        """Typed snapshot with per-shard pipelines merged (fresh aggregates,
        never the live per-shard objects)."""
        return CertifierServiceStats(
            core=self.core.stats_snapshot(),
            flush=merged_group_commit_stats([b.stats for b in self._batchers]),
            propagation=merged_group_commit_stats([s.stats for s in self.streams]),
            fsyncs=self.fsync_count,
            durable_version=self.core.durable_version,
            shards=self.config.shards,
        )

    def stats(self) -> dict[str, float]:
        return self.stats_snapshot().as_dict()

    def per_shard_stats(self) -> list[dict[str, float]]:
        return self.core.per_shard_stats()

    def __repr__(self) -> str:
        return (
            f"ShardedCertifierService(shards={self.config.shards}, "
            f"version={self.system_version}, durable={self.core.durable_version}, "
            f"fsyncs={self.fsync_count})"
        )


def make_certifier_service(
    config: CertifierConfig | None = None,
    **kwargs: object,
) -> "CertifierService | ShardedCertifierService":
    """Build the certifier front-end matching ``config.shards``.

    ``shards=1`` (the default) returns the seed :class:`CertifierService` —
    the sharded machinery is not even constructed, so the single-shard
    deployment is byte-for-byte the paper's certifier.
    """
    config = config if config is not None else CertifierConfig()
    if config.shards <= 1:
        return CertifierService(config, **kwargs)  # type: ignore[arg-type]
    return ShardedCertifierService(config, **kwargs)  # type: ignore[arg-type]
