"""Client-facing session API.

Clients of the replicated system talk JDBC to the proxy in the paper; here
:class:`ClientSession` is the equivalent convenience layer: it owns at most
one open transaction at a time, retries nothing on its own, and exposes
begin/read/insert/update/delete/commit/abort plus a context-manager form for
read-only work.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.errors import InvalidTransactionState, TransactionAborted
from repro.middleware.proxy import CommitOutcome, ProxyTransaction, TransparentProxy


class ClientSession:
    """A client connection to one replica's proxy."""

    def __init__(self, proxy: TransparentProxy, *, client_name: str = "client") -> None:
        self.proxy = proxy
        self.client_name = client_name
        self._txn: ProxyTransaction | None = None
        self.commits = 0
        self.aborts = 0

    # -- transaction control -----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin(self) -> None:
        """Start a transaction (implicit BEGIN)."""
        if self._txn is not None:
            raise InvalidTransactionState(
                f"client {self.client_name!r} already has an open transaction"
            )
        self._txn = self.proxy.begin(label=self.client_name)

    def commit(self) -> CommitOutcome:
        """Commit the open transaction and return the outcome."""
        txn = self._require_txn()
        self._txn = None
        try:
            outcome = self.proxy.commit(txn)
        except TransactionAborted as exc:
            self.aborts += 1
            return CommitOutcome(committed=False, abort_reason=exc.reason)
        if outcome.committed:
            self.commits += 1
        else:
            self.aborts += 1
        return outcome

    def abort(self) -> None:
        """Abort the open transaction (ROLLBACK)."""
        txn = self._require_txn()
        self._txn = None
        self.proxy.abort(txn)
        self.aborts += 1

    # -- statements -----------------------------------------------------------------

    def read(self, table: str, key: object) -> Mapping[str, object] | None:
        return self.proxy.read(self._require_txn(), table, key)

    def scan(self, table: str) -> list[tuple[object, Mapping[str, object]]]:
        return self.proxy.scan(self._require_txn(), table)

    def insert(self, table: str, key: object, **values: object) -> None:
        self._guarded_write("insert", table, key, values)

    def update(self, table: str, key: object, **values: object) -> None:
        self._guarded_write("update", table, key, values)

    def delete(self, table: str, key: object) -> None:
        self._guarded_write("delete", table, key, {})

    def _guarded_write(self, kind: str, table: str, key: object,
                       values: Mapping[str, object]) -> None:
        txn = self._require_txn()
        try:
            if kind == "insert":
                self.proxy.insert(txn, table, key, **values)
            elif kind == "update":
                self.proxy.update(txn, table, key, **values)
            else:
                self.proxy.delete(txn, table, key)
        except TransactionAborted:
            # The transaction is gone (conflict, deadlock victim, eager
            # pre-certification...); drop our handle so the client can retry
            # with a fresh transaction.
            self._txn = None
            self.aborts += 1
            raise

    # -- convenience ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["ClientSession"]:
        """Context manager: begin, then commit on success / abort on error."""
        self.begin()
        try:
            yield self
        except TransactionAborted:
            if self._txn is not None:
                self.abort()
            raise
        except Exception:
            if self._txn is not None:
                self.abort()
            raise
        else:
            if self._txn is not None:
                self.commit()

    def run_readonly(self, table: str, key: object) -> Mapping[str, object] | None:
        """One-shot read-only transaction."""
        self.begin()
        value = self.read(table, key)
        self.commit()
        return value

    def _require_txn(self) -> ProxyTransaction:
        if self._txn is None:
            raise InvalidTransactionState(
                f"client {self.client_name!r} has no open transaction"
            )
        return self._txn

    def __repr__(self) -> str:
        return (
            f"ClientSession(client={self.client_name!r}, commits={self.commits}, "
            f"aborts={self.aborts}, open={self.in_transaction})"
        )
