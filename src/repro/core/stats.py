"""Typed statistics snapshots for the certification pipeline.

Before this module the repository carried three near-duplicate dict shapes:
``Certifier.stats()`` (a hand-rolled dict of counters), the superset dict of
``CertifierService.stats()``, and the :class:`~repro.core.group_commit.
GroupCommitStats` batching aggregate.  Each grew keys independently, which
is exactly the kind of drift that turns "sum the per-shard stats" into a
``KeyError`` — or worse, a silently wrong report.

The snapshots here are the single source of truth for those shapes:

* :class:`CertifierStats` — the pure-logic certification counters.  Both the
  single :class:`~repro.core.certification.Certifier` and the sharded
  :class:`~repro.core.sharding.ShardedCertifier` produce one, so per-shard
  snapshots can be combined with :meth:`CertifierStats.merge` without any
  key bookkeeping.
* :class:`CertifierServiceStats` — what a certifier *service* (the IO-owning
  front-end in either stack) reports: the core snapshot plus durability and
  propagation batching, both expressed as the shared
  :class:`GroupCommitStats` aggregate.

``as_dict()`` reproduces the exact key set the seed dicts exposed, so every
existing consumer (reports, benchmarks, tests) keeps working while new code
can stay on the typed objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.group_commit import GroupCommitStats


@dataclass
class CertifierStats:
    """Snapshot of the certification counters (one certifier or one shard).

    Counter fields are additive under :meth:`merge`; the version/horizon
    fields take the maximum (they describe the global version space, which
    every shard observes a slice of) while the retained/pruned record counts
    add up (each shard retains its own records).
    """

    requests: int = 0
    commits: int = 0
    aborts: int = 0
    forced_aborts: int = 0
    readonly_requests: int = 0
    intersection_tests: int = 0
    snapshot_too_old_aborts: int = 0
    gc_runs: int = 0
    system_version: int = 0
    log_length: int = 0
    log_retained_records: int = 0
    log_pruned_version: int = 0
    log_pruned_records_total: int = 0

    @property
    def abort_rate(self) -> float:
        """Observed abort rate over update-transaction requests."""
        updates = self.commits + self.aborts
        return self.aborts / updates if updates else 0.0

    def merge(self, other: "CertifierStats") -> "CertifierStats":
        """Fold another snapshot into this one (in place); returns self."""
        self.requests += other.requests
        self.commits += other.commits
        self.aborts += other.aborts
        self.forced_aborts += other.forced_aborts
        self.readonly_requests += other.readonly_requests
        self.intersection_tests += other.intersection_tests
        self.snapshot_too_old_aborts += other.snapshot_too_old_aborts
        self.gc_runs += other.gc_runs
        self.system_version = max(self.system_version, other.system_version)
        self.log_length = max(self.log_length, other.log_length)
        self.log_retained_records += other.log_retained_records
        self.log_pruned_version = max(self.log_pruned_version, other.log_pruned_version)
        self.log_pruned_records_total += other.log_pruned_records_total
        return self

    def as_dict(self) -> dict[str, float]:
        """The seed ``Certifier.stats()`` dict, key for key."""
        return {
            "requests": self.requests,
            "commits": self.commits,
            "aborts": self.aborts,
            "forced_aborts": self.forced_aborts,
            "readonly_requests": self.readonly_requests,
            "intersection_tests": self.intersection_tests,
            "abort_rate": self.abort_rate,
            "system_version": self.system_version,
            "log_length": self.log_length,
            "log_retained_records": self.log_retained_records,
            "log_pruned_version": self.log_pruned_version,
            "log_pruned_records_total": self.log_pruned_records_total,
            "snapshot_too_old_aborts": self.snapshot_too_old_aborts,
            "gc_runs": self.gc_runs,
        }


@dataclass
class CertifierServiceStats:
    """Snapshot of a certifier front-end: core logic + durability + transport.

    ``flush`` aggregates the log-device fsync batching (writesets per
    synchronous write — the paper's central statistic) and ``propagation``
    the writeset-stream batching; both reuse :class:`GroupCommitStats` so a
    sharded service merges its per-shard pipelines with the same helper the
    engine WAL uses.
    """

    core: CertifierStats = field(default_factory=CertifierStats)
    flush: GroupCommitStats = field(default_factory=GroupCommitStats)
    propagation: GroupCommitStats = field(default_factory=GroupCommitStats)
    fsyncs: int = 0
    durable_version: int = 0
    shards: int = 1

    def merge(self, other: "CertifierServiceStats") -> "CertifierServiceStats":
        """Fold another service snapshot into this one (in place)."""
        self.core.merge(other.core)
        self.flush.merge(other.flush)
        self.propagation.merge(other.propagation)
        self.fsyncs += other.fsyncs
        self.durable_version = max(self.durable_version, other.durable_version)
        self.shards += other.shards
        return self

    def as_dict(self) -> dict[str, float]:
        """The seed ``CertifierService.stats()`` dict plus the shard count."""
        stats = self.core.as_dict()
        stats.update(
            {
                "fsyncs": float(self.fsyncs),
                "writesets_per_fsync": self.flush.average_batch_size,
                "durable_version": float(self.durable_version),
                "propagation_batches": float(self.propagation.flushes),
                "writesets_per_propagation_batch": self.propagation.average_batch_size,
                "shards": float(self.shards),
            }
        )
        return stats


@dataclass
class MvccStats:
    """Snapshot of the MVCC storage counters (one table or a whole database).

    Counter fields are additive under :meth:`merge`; the gauges describing
    current state (live rows, dead-version candidates, histogram buckets)
    also add — each table owns disjoint rows — while ``max_chain_length``
    takes the maximum.  ``chain_histogram`` maps chain length to the number
    of rows currently holding that many versions, the bounded-chains
    evidence the vacuum benchmark records.
    """

    versions_installed: int = 0
    versions_reclaimed: int = 0
    rows_dropped: int = 0
    vacuum_runs: int = 0
    vacuum_rows_visited: int = 0
    live_rows: int = 0
    dead_candidates: int = 0
    max_chain_length: int = 0
    chain_histogram: dict[int, int] = field(default_factory=dict)

    def merge(self, other: "MvccStats") -> "MvccStats":
        """Fold another snapshot into this one (in place); returns self."""
        self.versions_installed += other.versions_installed
        self.versions_reclaimed += other.versions_reclaimed
        self.rows_dropped += other.rows_dropped
        self.vacuum_runs += other.vacuum_runs
        self.vacuum_rows_visited += other.vacuum_rows_visited
        self.live_rows += other.live_rows
        self.dead_candidates += other.dead_candidates
        self.max_chain_length = max(self.max_chain_length, other.max_chain_length)
        for length, rows in other.chain_histogram.items():
            self.chain_histogram[length] = self.chain_histogram.get(length, 0) + rows
        return self

    def as_dict(self) -> dict[str, object]:
        return {
            "versions_installed": self.versions_installed,
            "versions_reclaimed": self.versions_reclaimed,
            "rows_dropped": self.rows_dropped,
            "vacuum_runs": self.vacuum_runs,
            "vacuum_rows_visited": self.vacuum_rows_visited,
            "live_rows": self.live_rows,
            "dead_candidates": self.dead_candidates,
            "max_chain_length": self.max_chain_length,
            "chain_histogram": dict(sorted(self.chain_histogram.items())),
        }


@dataclass
class JanitorStats:
    """Snapshot of one maintenance janitor (or several, merged).

    All fields are additive counters; ``last_horizon`` takes the maximum
    (it is a position in the shared version space).
    """

    runs: int = 0
    vacuum_passes: int = 0
    versions_reclaimed: int = 0
    rows_visited: int = 0
    certifier_gc_runs: int = 0
    certifier_records_pruned: int = 0
    last_horizon: int = 0

    def merge(self, other: "JanitorStats") -> "JanitorStats":
        """Fold another snapshot into this one (in place); returns self."""
        self.runs += other.runs
        self.vacuum_passes += other.vacuum_passes
        self.versions_reclaimed += other.versions_reclaimed
        self.rows_visited += other.rows_visited
        self.certifier_gc_runs += other.certifier_gc_runs
        self.certifier_records_pruned += other.certifier_records_pruned
        self.last_horizon = max(self.last_horizon, other.last_horizon)
        return self

    def as_dict(self) -> dict[str, int]:
        return {
            "runs": self.runs,
            "vacuum_passes": self.vacuum_passes,
            "versions_reclaimed": self.versions_reclaimed,
            "rows_visited": self.rows_visited,
            "certifier_gc_runs": self.certifier_gc_runs,
            "certifier_records_pruned": self.certifier_records_pruned,
            "last_horizon": self.last_horizon,
        }


def merged_group_commit_stats(parts: "list[GroupCommitStats]") -> GroupCommitStats:
    """Combine several batching aggregates into a fresh one (never in place)."""
    merged = GroupCommitStats()
    for part in parts:
        merged.merge(part)
    return merged
