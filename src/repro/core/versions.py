"""Version bookkeeping for generalized snapshot isolation.

The paper uses ``version`` to count database snapshots: the database starts
at version zero and every committed update transaction increments it.  A
transaction carries two numbers, ``tx_start_version`` (the snapshot it reads
from) and ``tx_commit_version`` (the snapshot its commit creates, valid only
for update transactions).  The certifier owns the authoritative
``system_version`` and each replica tracks its own ``replica_version``, which
is always a consistent prefix of the certifier's log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Snapshot:
    """A snapshot handle given to a transaction at BEGIN.

    ``version`` is the GSI version of the snapshot.  ``replica`` identifies
    which replica produced it, which matters only for diagnostics: GSI allows
    a transaction to receive a snapshot that is older than the latest global
    one, hence two replicas may hand out snapshots with different versions at
    the same wall-clock instant.
    """

    version: int
    replica: str = "standalone"

    def __post_init__(self) -> None:
        if self.version < 0:
            raise ConfigurationError("snapshot version must be >= 0")

    def is_at_least(self, version: int) -> bool:
        """True when this snapshot already reflects ``version``."""
        return self.version >= version


class VersionClock:
    """A monotonically increasing GSI version counter.

    Used both by the certifier (``system_version``) and by the replicas
    (``replica_version``).  ``advance_to`` is used by replicas when applying
    a batch of remote writesets, which may move the version forward by more
    than one (the paper's 0, 3, 4, 8, 9 sequence in Section 3).
    """

    __slots__ = ("_version",)

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ConfigurationError("initial version must be >= 0")
        self._version = initial

    @property
    def version(self) -> int:
        """The current version."""
        return self._version

    def increment(self) -> int:
        """Advance by one and return the new version (certifier commit)."""
        self._version += 1
        return self._version

    def advance_to(self, version: int) -> int:
        """Move the clock forward to ``version``.

        Moving backwards is a protocol violation (a replica can never regress
        to an older snapshot), so it raises ``ConfigurationError``.
        Advancing to the current version is a no-op, which happens when a
        replica learns about a commit it already applied.
        """
        if version < self._version:
            raise ConfigurationError(
                f"version clock cannot move backwards ({self._version} -> {version})"
            )
        self._version = version
        return self._version

    def snapshot(self, replica: str = "standalone") -> Snapshot:
        """Produce a snapshot handle at the current version."""
        return Snapshot(version=self._version, replica=replica)

    def __repr__(self) -> str:
        return f"VersionClock(version={self._version})"


@dataclass
class TransactionVersions:
    """The pair of versions the protocol tracks per transaction."""

    tx_start_version: int
    tx_commit_version: int | None = None
    #: Local certification may advance the *effective* start version past
    #: ``tx_start_version`` (Section 6.2, "Local certification"), reducing
    #: the window the certifier must intersection-test.
    effective_start_version: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.tx_start_version < 0:
            raise ConfigurationError("tx_start_version must be >= 0")
        if self.effective_start_version < self.tx_start_version:
            self.effective_start_version = self.tx_start_version

    @property
    def is_committed(self) -> bool:
        return self.tx_commit_version is not None

    def mark_committed(self, commit_version: int) -> None:
        if commit_version <= self.effective_start_version:
            raise ConfigurationError(
                "commit version must be greater than the (effective) start version"
            )
        self.tx_commit_version = commit_version

    def advance_effective_start(self, version: int) -> None:
        """Record that conflicts have been ruled out up to ``version``."""
        if version > self.effective_start_version:
            self.effective_start_version = version
