"""Commit-order enforcement.

Tashkent-API extends the database commit API with an optional sequence
number (``COMMIT 9``) and the database announces commits strictly in that
order.  The paper implements this in PostgreSQL with a semaphore that each
committing backend waits on after writing its commit record to disk
(Section 8.3).  :class:`CommitSequencer` is the equivalent mechanism in our
engine: commit records may be *written* (and grouped into one flush) in any
order, but the effects become *visible* only in sequence-number order.

The sequencer is also used by the simulated Tashkent-API database node to
decide which pending ordered commits can be announced after a flush.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError, InvalidTransactionState


@dataclass
class _PendingCommit:
    sequence: int
    callback: Callable[[], None] | None = None
    durable: bool = False


@dataclass
class CommitSequencer:
    """Announces commits in global sequence order.

    The sequencer starts expecting sequence 1 (the first update commit in the
    system creates version 1).  A commit is *announced* — i.e. its callback
    runs and :attr:`announced_version` advances — only when (a) its own
    record is durable and (b) every earlier sequence number has been
    announced.  ``register`` + ``mark_durable`` therefore tolerate commits
    whose records are flushed out of order, exactly like the PostgreSQL
    semaphore patch.
    """

    announced_version: int = 0
    _pending: dict[int, _PendingCommit] = field(default_factory=dict)

    def register(self, sequence: int, callback: Callable[[], None] | None = None) -> None:
        """Declare that a commit with ``sequence`` will arrive.

        Registering a sequence number at or below the announced version, or
        registering the same number twice, indicates middleware misuse (the
        paper notes the extended API must be restricted to the middleware).
        """
        if sequence <= self.announced_version:
            raise ConfigurationError(
                f"sequence {sequence} already announced (at {self.announced_version})"
            )
        if sequence in self._pending:
            raise ConfigurationError(f"sequence {sequence} already registered")
        self._pending[sequence] = _PendingCommit(sequence=sequence, callback=callback)

    def mark_durable(self, sequence: int) -> list[int]:
        """Record that the commit record for ``sequence`` is on disk.

        Returns the list of sequence numbers announced as a consequence (in
        order).  The list is empty when an earlier sequence is still missing
        — this is the situation the paper warns about: issuing ``COMMIT 9``
        without ever providing commits 1-8 leaves the database waiting.
        """
        pending = self._pending.get(sequence)
        if pending is None:
            raise InvalidTransactionState(f"sequence {sequence} was never registered")
        pending.durable = True
        return self._drain()

    def register_and_mark_durable(self, sequence: int,
                                  callback: Callable[[], None] | None = None) -> list[int]:
        """Convenience for callers that learn about a commit only at flush time."""
        self.register(sequence, callback)
        return self.mark_durable(sequence)

    def _drain(self) -> list[int]:
        announced: list[int] = []
        while True:
            next_sequence = self.announced_version + 1
            pending = self._pending.get(next_sequence)
            if pending is None or not pending.durable:
                break
            del self._pending[next_sequence]
            self.announced_version = next_sequence
            if pending.callback is not None:
                pending.callback()
            announced.append(next_sequence)
        return announced

    # -- interrogation -------------------------------------------------------

    @property
    def waiting_count(self) -> int:
        """Number of registered commits not yet announced."""
        return len(self._pending)

    def is_waiting_for(self, sequence: int) -> bool:
        """True when ``sequence`` is registered but not yet announced."""
        return sequence in self._pending

    def blocked_sequences(self) -> list[int]:
        """Durable commits blocked behind a missing earlier sequence."""
        return sorted(
            sequence for sequence, pending in self._pending.items() if pending.durable
        )

    def would_deadlock(self) -> bool:
        """True when durable commits are waiting on a sequence never registered.

        This detects the paper's abuse scenario (COMMIT 9 without COMMIT 1-8):
        some commit is durable and waiting, but the next expected sequence was
        never registered, so no future ``mark_durable`` can unblock it.
        """
        if not self._pending:
            return False
        next_sequence = self.announced_version + 1
        has_durable_waiters = any(p.durable for p in self._pending.values())
        return has_durable_waiters and next_sequence not in self._pending
