"""Artificial-conflict detection for Tashkent-API (paper Section 5.2.1).

Under Tashkent-API the proxy would like to submit the commits of several
local transactions — each preceded by its batch of remote writesets —
concurrently, so the database can group all the commit records into one
flush.  That is only safe when the remote writesets accompanying different
local commits do not modify a shared item: otherwise the database, which sees
them as concurrent transactions, raises a write-write conflict that never
existed globally (the remote transactions did not actually run concurrently).
The paper calls these *artificial conflicts*.

The proxy asks the certifier to extend the intersection test of each remote
writeset back to the replica's current version; the certifier responds with a
``conflict_free_back_to`` horizon per writeset.  This module turns those
horizons into a concrete submission plan: which remote writesets can go to
the database concurrently and which must wait for an earlier one to commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.certification import RemoteWriteSetInfo
from repro.core.writeset import WriteSet


@dataclass
class SubmissionPlan:
    """How a batch of remote writesets must be submitted to the database.

    ``groups`` is an ordered partition of the writesets: all writesets inside
    one group may be submitted concurrently (and can share one flush with the
    local commit), but a group may only be submitted after every writeset of
    the previous group has committed.  With no artificial conflicts there is
    a single group; in the worst case every writeset is its own group and
    Tashkent-API degrades towards Base.
    """

    groups: list[list[RemoteWriteSetInfo]] = field(default_factory=list)
    artificial_conflicts: int = 0

    @property
    def serialization_points(self) -> int:
        """Extra flush boundaries forced by artificial conflicts."""
        return max(0, len(self.groups) - 1)

    @property
    def total_writesets(self) -> int:
        return sum(len(group) for group in self.groups)

    def flush_count(self, include_local_commit: bool = True) -> int:
        """Number of synchronous writes needed to apply this plan.

        Each group costs one flush; the local commit rides on the final
        group's flush (or costs one flush of its own when the plan is empty).
        """
        if not self.groups:
            return 1 if include_local_commit else 0
        return len(self.groups)


class ArtificialConflictDetector:
    """Partitions remote writesets into concurrency-safe groups.

    Two strategies are combined, mirroring the paper:

    * the certifier-provided ``conflict_free_back_to`` horizon: a remote
      writeset whose horizon is at or below the replica's current version is
      known conflict-free against *everything* the replica has not applied
      yet, so it can join the current concurrent group;
    * a direct pairwise intersection test against the writesets already in
      the current group, used when the certifier horizon is insufficient
      (e.g. when the detector is used standalone in tests or by the
      simulator's workload models).
    """

    def __init__(self, *, use_pairwise_check: bool = True) -> None:
        self.use_pairwise_check = use_pairwise_check
        self.batches_planned = 0
        self.artificial_conflicts_found = 0

    def plan(self, remote_writesets: Sequence[RemoteWriteSetInfo],
             replica_version: int) -> SubmissionPlan:
        """Build a submission plan for ``remote_writesets``.

        The writesets must be given in commit-version order; the plan
        preserves that order within and across groups.
        """
        self.batches_planned += 1
        plan = SubmissionPlan()
        if not remote_writesets:
            return plan

        current_group: list[RemoteWriteSetInfo] = []
        current_items: WriteSet = WriteSet()
        for info in remote_writesets:
            safe_by_horizon = info.conflict_free_back_to <= replica_version
            conflicts_in_group = (
                self.use_pairwise_check
                and current_group
                and info.writeset.conflicts_with(current_items)
            )
            if current_group and (conflicts_in_group or not safe_by_horizon):
                # Either a genuine overlap with a writeset already in the
                # group, or the certifier could not vouch for this writeset
                # far enough back: start a new serial group.
                plan.groups.append(current_group)
                plan.artificial_conflicts += 1
                self.artificial_conflicts_found += 1
                current_group = []
                current_items = WriteSet()
            current_group.append(info)
            current_items.merge(info.writeset)
        if current_group:
            plan.groups.append(current_group)
        return plan

    @staticmethod
    def pairwise_conflict_rate(writesets: Iterable[WriteSet]) -> float:
        """Fraction of adjacent writeset pairs that overlap.

        Used by the TPC-B analysis bench to report the artificial-conflict
        rate between remote writeset groups (the paper reports 35%).
        """
        writesets = list(writesets)
        if len(writesets) < 2:
            return 0.0
        conflicts = sum(
            1
            for earlier, later in zip(writesets, writesets[1:])
            if earlier.conflicts_with(later)
        )
        return conflicts / (len(writesets) - 1)
