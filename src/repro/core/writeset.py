"""Writesets: the unit of update propagation and certification.

A writeset captures "the minimal set of actions necessary to recreate a
transaction's modifications" (paper, Section 2).  Each element identifies the
table, the primary key of the affected row, the operation kind and the new
column values (for inserts and updates).  Certification only needs the
*identity* of modified items — two writesets conflict when they touch the
same ``(table, key)`` pair — while replication needs the values so remote
replicas can re-apply the modification without re-executing SQL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


class WriteOp(str, enum.Enum):
    """Kind of modification captured by a write item."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class WriteItem:
    """A single modified row.

    ``table`` and ``key`` identify the row (the paper's "table and field
    identifiers"); ``op`` records whether the row was inserted, updated or
    deleted; ``values`` holds the new column values (empty for deletes).
    """

    table: str
    key: object
    op: WriteOp = WriteOp.UPDATE
    values: Mapping[str, object] = field(default_factory=dict)

    @property
    def item_id(self) -> tuple[str, object]:
        """The identity used for write-write conflict detection."""
        return (self.table, self.key)

    def size_bytes(self) -> int:
        """Approximate wire size of this item (used by the network model)."""
        size = len(self.table) + 8
        for column, value in self.values.items():
            size += len(column) + len(str(value))
        return size


class WriteSet:
    """An ordered collection of :class:`WriteItem` with fast intersection.

    The order of items is preserved because remote writesets must be applied
    in the order the original transaction produced them (later writes to the
    same row overwrite earlier ones).  The set of item identities is
    maintained alongside to make the certification intersection test O(min).
    """

    __slots__ = ("_items", "_item_ids")

    def __init__(self, items: Iterable[WriteItem] = ()) -> None:
        self._items: list[WriteItem] = []
        self._item_ids: set[tuple[str, object]] = set()
        for item in items:
            self.add(item)

    # -- construction ------------------------------------------------------

    def add(self, item: WriteItem) -> None:
        """Append ``item`` to the writeset."""
        self._items.append(item)
        self._item_ids.add(item.item_id)

    def add_update(self, table: str, key: object, **values: object) -> None:
        """Convenience helper to append an UPDATE item."""
        self.add(WriteItem(table=table, key=key, op=WriteOp.UPDATE, values=values))

    def add_insert(self, table: str, key: object, **values: object) -> None:
        """Convenience helper to append an INSERT item."""
        self.add(WriteItem(table=table, key=key, op=WriteOp.INSERT, values=values))

    def add_delete(self, table: str, key: object) -> None:
        """Convenience helper to append a DELETE item."""
        self.add(WriteItem(table=table, key=key, op=WriteOp.DELETE))

    def merge(self, other: "WriteSet") -> None:
        """Append all items of ``other`` (used when grouping remote writesets)."""
        for item in other:
            self.add(item)

    @classmethod
    def union(cls, writesets: Iterable["WriteSet"]) -> "WriteSet":
        """Combine several writesets into one (the paper's T1_2_3 grouping)."""
        combined = cls()
        for writeset in writesets:
            combined.merge(writeset)
        return combined

    # -- interrogation -----------------------------------------------------

    @property
    def item_ids(self) -> frozenset[tuple[str, object]]:
        """The identities of all modified rows."""
        return frozenset(self._item_ids)

    def is_empty(self) -> bool:
        """True when the transaction was read-only."""
        return not self._items

    def conflicts_with(self, other: "WriteSet") -> bool:
        """Write-write conflict test: do the two writesets overlap?"""
        if len(self._item_ids) > len(other._item_ids):
            return other.conflicts_with(self)
        return any(item_id in other._item_ids for item_id in self._item_ids)

    def conflicting_items(self, other: "WriteSet") -> frozenset[tuple[str, object]]:
        """The identities in common between the two writesets."""
        return frozenset(self._item_ids & other._item_ids)

    def touches(self, table: str, key: object) -> bool:
        """True when the writeset modifies the row ``(table, key)``."""
        return (table, key) in self._item_ids

    def size_bytes(self) -> int:
        """Approximate wire size of the writeset."""
        return sum(item.size_bytes() for item in self._items) or 0

    def tables(self) -> frozenset[str]:
        """All tables touched by the writeset."""
        return frozenset(item.table for item in self._items)

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[WriteItem]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WriteSet):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        preview = ", ".join(f"{item.table}:{item.key}" for item in self._items[:4])
        suffix = ", ..." if len(self._items) > 4 else ""
        return f"WriteSet([{preview}{suffix}], n={len(self._items)})"


def make_writeset(entries: Iterable[tuple[str, object]]) -> WriteSet:
    """Build a writeset of UPDATE items from ``(table, key)`` pairs.

    This is the compact form used by the simulator and by many tests, where
    only conflict identity matters and the concrete column values do not.
    """
    writeset = WriteSet()
    for table, key in entries:
        writeset.add_update(table, key)
    return writeset
