"""Writesets: the unit of update propagation and certification.

A writeset captures "the minimal set of actions necessary to recreate a
transaction's modifications" (paper, Section 2).  Each element identifies the
table, the primary key of the affected row, the operation kind and the new
column values (for inserts and updates).  Certification only needs the
*identity* of modified items — two writesets conflict when they touch the
same ``(table, key)`` pair — while replication needs the values so remote
replicas can re-apply the modification without re-executing SQL.

Item identities are *interned*: every ``(table, key)`` tuple flowing through
the certifier's hot path is shared via a module-level cache, so hot keys
(e.g. the TPC-B branch rows) hash once and compare by pointer in the common
case instead of allocating a fresh tuple per access.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


class WriteOp(str, enum.Enum):
    """Kind of modification captured by a write item."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


#: Shared ``(table, key)`` tuples keyed by themselves.  Capped so workloads
#: that write ever-new keys (bulk inserts) cannot grow it without bound; at
#: the cap the cache resets wholesale (an epoch flip) rather than freezing,
#: so genuinely hot identities re-intern within a few touches while the cold
#: flood that filled it is released.  Sharing is an optimisation only —
#: identity tuples compare equal whether or not they were interned.
_ITEM_ID_CACHE: dict[tuple[str, object], tuple[str, object]] = {}
_ITEM_ID_CACHE_MAX = 1 << 20


def intern_item_id(table: str, key: object) -> tuple[str, object]:
    """Return a canonical shared ``(table, key)`` tuple.

    Unhashable keys (never produced by the engine, but permitted by the
    forgiving ``WriteItem`` API) fall back to a fresh tuple.
    """
    item_id = (sys.intern(table) if type(table) is str else table, key)
    try:
        cached = _ITEM_ID_CACHE.get(item_id)
    except TypeError:
        return item_id
    if cached is not None:
        return cached
    if len(_ITEM_ID_CACHE) >= _ITEM_ID_CACHE_MAX:
        _ITEM_ID_CACHE.clear()
    _ITEM_ID_CACHE[item_id] = item_id
    return item_id


def intern_cache_size() -> int:
    """Number of distinct item identities currently interned (diagnostics)."""
    return len(_ITEM_ID_CACHE)


def clear_intern_cache() -> None:
    """Drop all interned identities (test isolation / memory reclamation)."""
    _ITEM_ID_CACHE.clear()


@dataclass(frozen=True)
class WriteItem:
    """A single modified row.

    ``table`` and ``key`` identify the row (the paper's "table and field
    identifiers"); ``op`` records whether the row was inserted, updated or
    deleted; ``values`` holds the new column values (empty for deletes).
    """

    table: str
    key: object
    op: WriteOp = WriteOp.UPDATE
    values: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_item_id", intern_item_id(self.table, self.key))

    @property
    def item_id(self) -> tuple[str, object]:
        """The (interned) identity used for write-write conflict detection."""
        return self._item_id  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        # The generated hash would include ``values`` — a Mapping, typically a
        # plain dict — and raise TypeError.  Identity plus operation is what
        # certification and replication distinguish items by.
        return hash((self.table, self.key, self.op))

    def size_bytes(self) -> int:
        """Approximate wire size of this item (used by the network model)."""
        size = len(self.table) + 8
        for column, value in self.values.items():
            size += len(column) + len(str(value))
        return size


class WriteSet:
    """An ordered collection of :class:`WriteItem` with fast intersection.

    The order of items is preserved because remote writesets must be applied
    in the order the original transaction produced them (later writes to the
    same row overwrite earlier ones).  The set of item identities is
    maintained alongside to make the certification intersection test O(min).
    """

    __slots__ = ("_items", "_item_ids", "_size_bytes")

    def __init__(self, items: Iterable[WriteItem] = ()) -> None:
        self._items: list[WriteItem] = []
        self._item_ids: set[tuple[str, object]] = set()
        self._size_bytes: int | None = 0
        for item in items:
            self.add(item)

    # -- construction ------------------------------------------------------

    def add(self, item: WriteItem) -> None:
        """Append ``item`` to the writeset."""
        self._items.append(item)
        self._item_ids.add(item.item_id)
        self._size_bytes = None

    def add_update(self, table: str, key: object, **values: object) -> None:
        """Convenience helper to append an UPDATE item."""
        self.add(WriteItem(table=table, key=key, op=WriteOp.UPDATE, values=values))

    def add_insert(self, table: str, key: object, **values: object) -> None:
        """Convenience helper to append an INSERT item."""
        self.add(WriteItem(table=table, key=key, op=WriteOp.INSERT, values=values))

    def add_delete(self, table: str, key: object) -> None:
        """Convenience helper to append a DELETE item."""
        self.add(WriteItem(table=table, key=key, op=WriteOp.DELETE))

    def merge(self, other: "WriteSet") -> None:
        """Append all items of ``other`` (used when grouping remote writesets)."""
        for item in other:
            self.add(item)

    @classmethod
    def union(cls, writesets: Iterable["WriteSet"]) -> "WriteSet":
        """Combine several writesets into one (the paper's T1_2_3 grouping).

        Items are shared, not copied, and identities merge set-at-a-time —
        this sits on the group-apply hot path where a batch of remote
        writesets becomes a single WAL record.
        """
        combined = cls()
        items = combined._items
        ids = combined._item_ids
        for writeset in writesets:
            items.extend(writeset._items)
            ids.update(writeset._item_ids)
        combined._size_bytes = None
        return combined

    # -- interrogation -----------------------------------------------------

    @property
    def item_ids(self) -> frozenset[tuple[str, object]]:
        """The identities of all modified rows."""
        return frozenset(self._item_ids)

    def iter_item_ids(self) -> Iterator[tuple[str, object]]:
        """Iterate distinct item identities without copying the set.

        The certifier's indexed conflict check probes one dict entry per
        identity; this accessor keeps that pass allocation-free.
        """
        return iter(self._item_ids)

    def distinct_item_count(self) -> int:
        """Number of distinct row identities (== probes per indexed check)."""
        return len(self._item_ids)

    def is_empty(self) -> bool:
        """True when the transaction was read-only."""
        return not self._items

    def conflicts_with(self, other: "WriteSet") -> bool:
        """Write-write conflict test: do the two writesets overlap?"""
        if len(self._item_ids) > len(other._item_ids):
            return other.conflicts_with(self)
        return any(item_id in other._item_ids for item_id in self._item_ids)

    def conflicting_items(self, other: "WriteSet") -> frozenset[tuple[str, object]]:
        """The identities in common between the two writesets."""
        return frozenset(self._item_ids & other._item_ids)

    def touches(self, table: str, key: object) -> bool:
        """True when the writeset modifies the row ``(table, key)``."""
        return (table, key) in self._item_ids

    def size_bytes(self) -> int:
        """Approximate wire size of the writeset.

        Cached — the network model sizes the same writeset for the request,
        the response and every remote-writeset propagation, so re-summing the
        items each time was a measurable hot-path cost.  The cache is
        invalidated by :meth:`add`.
        """
        if self._size_bytes is None:
            self._size_bytes = sum(item.size_bytes() for item in self._items)
        return self._size_bytes

    def tables(self) -> frozenset[str]:
        """All tables touched by the writeset."""
        return frozenset(item.table for item in self._items)

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[WriteItem]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WriteSet):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        preview = ", ".join(f"{item.table}:{item.key}" for item in self._items[:4])
        suffix = ", ..." if len(self._items) > 4 else ""
        return f"WriteSet([{preview}{suffix}], n={len(self._items)})"


def make_writeset(entries: Iterable[tuple[str, object]]) -> WriteSet:
    """Build a writeset of UPDATE items from ``(table, key)`` pairs.

    This is the compact form used by the simulator and by many tests, where
    only conflict identity matters and the concrete column values do not.
    """
    writeset = WriteSet()
    for table, key in entries:
        writeset.add_update(table, key)
    return writeset
