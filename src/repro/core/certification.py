"""The GSI certifier (pure logic, no IO or timing).

This module implements the pseudo-code of Section 6.1 of the paper.  On a
certification request carrying ``(tx_start_version, writeset)`` the certifier:

1. intersection-tests the writeset against every logged writeset whose
   commit version is greater than ``tx_start_version``;
2. if there is no intersection, increments ``system_version``, assigns it as
   the transaction's commit version and appends the writeset to the log;
   otherwise the decision is "abort";
3. returns the decision, the commit version, and the remote writesets the
   requesting replica has not received yet.

Durability of the log (the group-commit flush) is *not* performed here — the
caller (the functional certifier service in :mod:`repro.middleware.certifier`
or the simulated certifier node in :mod:`repro.cluster`) owns the IO so that
the same certification logic is reused in both paths.

Indexed certification and log garbage collection
================================================

The conflict check delegates to the :class:`CertifierLog` inverted version
index (see that module's docstring for the design and complexity table), so
a certification request costs O(|writeset|) dict probes instead of a scan
over every record after ``tx_start_version``.

The certifier also owns the **low-water-mark protocol** that bounds the log:

* every certification request carries ``(origin_replica, replica_version)``;
  :meth:`Certifier.certify` records the highest version reported per replica
  (:meth:`Certifier.note_replica_version` can be called directly for
  replicas that only ever read, and by cluster models at start-up so an
  idle replica is never pruned past).
* the low-water mark is the minimum reported version across all known
  replicas; no replica will re-request records at or below it.
* :meth:`Certifier.collect_garbage` prunes the log to ``low-water mark −
  headroom`` (clamped to the durable horizon).  The headroom keeps a margin
  of recent records so in-flight transactions whose ``tx_start_version``
  slightly trails their replica's reported version never hit the horizon.
* a request whose ``tx_start_version`` nevertheless predates the GC horizon
  is conservatively aborted ("snapshot too old") — aborting never violates
  snapshot-isolation safety.

Callers (the middleware service and the simulated certifier node) decide
*when* to collect garbage; the policy knobs live with them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.core.certifier_log import CertifierLog, LogRecord
from repro.core.stats import CertifierStats
from repro.core.versions import VersionClock
from repro.core.writeset import WriteSet
from repro.errors import LogPrunedError


class CertificationDecision(str, enum.Enum):
    """Outcome of a certification request."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass
class CertificationRequest:
    """A certification request as sent by a replica's proxy."""

    tx_start_version: int
    writeset: WriteSet
    #: The replica's current ``replica_version``; remote writesets committed
    #: after this version are returned with the response.
    replica_version: int
    #: Identity of the requesting replica.  Enrolls the replica in the log-GC
    #: low-water-mark protocol; empty means anonymous — the request is served
    #: (when its window is retained) but never constrains garbage collection.
    origin_replica: str = ""
    #: Under Tashkent-API the proxy asks that the returned remote writesets
    #: be conflict-checked back to this version so it can safely submit them
    #: concurrently (Section 5.2.1).  ``None`` disables the extended check.
    check_remote_back_to: int | None = None

    def request_size_bytes(self) -> int:
        """Approximate wire size of the request."""
        return 48 + self.writeset.size_bytes()


@dataclass
class RemoteWriteSetInfo:
    """A remote writeset returned to a replica, plus its safety horizon."""

    commit_version: int
    writeset: WriteSet
    origin_replica: str
    #: The writeset is known conflict-free against every writeset committed
    #: after this version.  The Tashkent-API proxy may submit two remote
    #: writesets concurrently only if each is conflict-free back to the
    #: replica's current version.
    conflict_free_back_to: int

    def size_bytes(self) -> int:
        return self.writeset.size_bytes() + 24


@dataclass
class CertificationResult:
    """The certifier's response to a certification request."""

    decision: CertificationDecision
    tx_commit_version: int | None
    remote_writesets: list[RemoteWriteSetInfo] = field(default_factory=list)
    #: True when the abort was injected by the forced-abort knob rather than
    #: by a genuine write-write conflict (Section 9.5).
    forced_abort: bool = False
    #: Commit version of the record that caused a genuine conflict.
    conflicting_version: int | None = None

    @property
    def committed(self) -> bool:
        return self.decision is CertificationDecision.COMMIT

    def response_size_bytes(self) -> int:
        return 32 + sum(info.size_bytes() for info in self.remote_writesets)


class Certifier:
    """Certification and global ordering of update transactions.

    The certifier is deliberately free of IO: appends go to the in-memory
    :class:`CertifierLog`, and the caller decides when and how the pending
    records become durable (one fsync per record in a naive deployment, a
    single batched fsync under group commit).

    ``forced_abort_rate`` reproduces the abort-injection experiment of
    Section 9.5: a fraction of requests is aborted *after* the full
    certification check so the computational cost is still paid.
    ``abort_chooser`` makes the injection deterministic for tests.
    """

    def __init__(
        self,
        log: CertifierLog | None = None,
        *,
        forced_abort_rate: float = 0.0,
        abort_chooser: Callable[[], float] | None = None,
    ) -> None:
        self.log = log if log is not None else CertifierLog()
        self.system_version = VersionClock(self.log.last_version)
        self.forced_abort_rate = forced_abort_rate
        self._abort_chooser = abort_chooser
        #: Highest version each known replica has reported having applied.
        #: The minimum across replicas is the log-GC low-water mark.
        self._replica_versions: dict[str, int] = {}
        # Statistics used by the evaluation harness.
        self.certification_requests = 0
        self.commits = 0
        self.aborts = 0
        self.forced_aborts = 0
        self.readonly_requests = 0
        self.intersection_tests = 0
        self.snapshot_too_old_aborts = 0
        self.gc_runs = 0

    # -- main entry point ----------------------------------------------------

    def certify(self, request: CertificationRequest) -> CertificationResult:
        """Process one certification request (paper Section 6.1 pseudo-code)."""
        result = self._certify(request)
        # Enroll the replica's watermark only after the request was accepted:
        # a refused below-horizon requester (LogPrunedError above) must not
        # enter the low-water-mark computation, where its stale version would
        # pin GC forever.
        self.note_replica_version(request.origin_replica, request.replica_version)
        return result

    def _certify(self, request: CertificationRequest) -> CertificationResult:
        # Refuse an unserveable remote-writeset window BEFORE any mutation:
        # raising after the commit record is appended would leave a committed
        # writeset the caller never learns about (retry double-commits it).
        self._check_remote_window(request)
        self.certification_requests += 1
        writeset = request.writeset

        if writeset.is_empty():
            # Read-only transactions never reach the certifier in the real
            # system; accepting them here keeps the API forgiving.
            self.readonly_requests += 1
            return CertificationResult(
                decision=CertificationDecision.COMMIT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
            )

        conflicting_version = self._find_conflict(writeset, request.tx_start_version)
        if conflicting_version is not None:
            self.aborts += 1
            if request.tx_start_version < self.log.pruned_version:
                # The snapshot predates the GC horizon; the abort is the
                # conservative "snapshot too old" answer, not a proven
                # write-write conflict.
                self.snapshot_too_old_aborts += 1
            return CertificationResult(
                decision=CertificationDecision.ABORT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
                conflicting_version=conflicting_version,
            )

        if self._should_force_abort():
            # The full certification check above was performed on purpose so
            # that the certifier pays the computational cost (Section 9.5).
            self.aborts += 1
            self.forced_aborts += 1
            return CertificationResult(
                decision=CertificationDecision.ABORT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
                forced_abort=True,
            )

        commit_version = self.system_version.increment()
        self.log.append(
            LogRecord(
                commit_version=commit_version,
                writeset=writeset,
                origin_replica=request.origin_replica or "unknown",
                certified_back_to=request.tx_start_version,
            )
        )
        self.commits += 1
        remote = self._remote_writesets_for(request, exclude_version=commit_version)
        return CertificationResult(
            decision=CertificationDecision.COMMIT,
            tx_commit_version=commit_version,
            remote_writesets=remote,
        )

    def fetch_remote_writesets(self, replica_version: int,
                               check_back_to: int | None = None,
                               *, replica: str | None = None,
                               up_to: int | None = None,
                               exclude_version: int | None = None) -> list[RemoteWriteSetInfo]:
        """Remote writesets committed after ``replica_version``.

        Used by the bounded-staleness refresh (Section 6.2) when a replica has
        not heard from the certifier for a while.  Passing ``replica`` also
        advances that replica's GC watermark, so idle replicas that only ever
        refresh keep feeding the low-water mark — and identifies the caller,
        which is required to be served from below the GC horizon (an
        anonymous request below the horizon raises
        :class:`~repro.errors.LogPrunedError`).

        ``up_to`` caps the window and ``exclude_version`` drops one version,
        so a resent certification can be answered with exactly the writesets
        its original response carried — never a transaction admitted after
        it, whose priority application would abort still-open local work.
        """
        request = CertificationRequest(
            tx_start_version=replica_version,
            writeset=WriteSet(),
            replica_version=replica_version,
            origin_replica=replica if replica is not None else "",
            check_remote_back_to=check_back_to,
        )
        remote = self._remote_writesets_for(request, exclude_version=exclude_version,
                                            up_to=up_to)
        # As in certify: enroll the watermark only for accepted requests.
        if replica is not None:
            self.note_replica_version(replica, replica_version)
        return remote

    def extend_remote_horizons(self, infos: list[RemoteWriteSetInfo],
                               back_to: int) -> list[RemoteWriteSetInfo]:
        """Extend delivered writesets' conflict-free horizons back to ``back_to``.

        The push-based transport stamps each writeset's horizon once, at
        propagation time; a Tashkent-API replica that wants to submit a
        refresh batch concurrently asks the certifier to extend the
        intersection tests to its own version afterwards (Section 5.2.1),
        exactly as the old pull carried ``check_back_to``.  Records already
        pruned by log GC keep their delivered horizon (the planner falls
        back to its pairwise check).
        """
        extended: list[RemoteWriteSetInfo] = []
        for info in infos:
            horizon = info.conflict_free_back_to
            if info.commit_version > self.log.pruned_version:
                # The delivered horizon is a propagation-time snapshot;
                # another replica may have extended the record since.  Read
                # the live one first so already-covered extensions charge no
                # intersection tests (matching the old pull accounting).
                horizon = min(horizon,
                              self.log.certified_back_to(info.commit_version))
            if back_to < horizon and info.commit_version > self.log.pruned_version:
                self.intersection_tests += info.writeset.distinct_item_count()
                if self.log.extend_certification(info.commit_version, back_to):
                    horizon = back_to
                else:
                    horizon = self.log.certified_back_to(info.commit_version)
            if horizon == info.conflict_free_back_to:
                extended.append(info)
            else:
                extended.append(
                    RemoteWriteSetInfo(
                        commit_version=info.commit_version,
                        writeset=info.writeset,
                        origin_replica=info.origin_replica,
                        conflict_free_back_to=horizon,
                    )
                )
        return extended

    # -- sharded certification hooks ----------------------------------------

    def probe_conflict(self, writeset: WriteSet, after_version: int) -> int | None:
        """Conflict-check ``writeset`` against the window after ``after_version``
        without mutating the log.

        This is the read-only half of :meth:`certify`, split out for the
        sharded certifier's cross-shard merge: every touched shard probes its
        fragment first, and only when *all* fragments are conflict-free does
        the coordinator :meth:`admit` them — an abort must never leave a
        partial cross-shard append behind.  Counts one certification request
        (a fragment check) and the usual per-item intersection tests.
        """
        self.certification_requests += 1
        return self._find_conflict(writeset, after_version)

    def admit(self, writeset: WriteSet, after_version: int,
              origin_replica: str = "unknown") -> int:
        """Append a pre-checked writeset at this certifier's next version.

        The caller vouches (via :meth:`probe_conflict`) that ``writeset`` is
        conflict-free after ``after_version``; no re-check is performed.
        Returns the allocated commit version.  Used by the sharded certifier
        to install each fragment of a cross-shard transaction once the
        all-shards-commit decision is reached.
        """
        commit_version = self.system_version.increment()
        self.log.append(
            LogRecord(
                commit_version=commit_version,
                writeset=writeset,
                origin_replica=origin_replica or "unknown",
                certified_back_to=after_version,
            )
        )
        self.commits += 1
        return commit_version

    # -- internals -----------------------------------------------------------

    def _find_conflict(self, writeset: WriteSet, after_version: int) -> int | None:
        """First conflicting commit version after ``after_version``.

        One indexed probe per distinct item in the writeset, independent of
        log length.  The ``intersection_tests`` statistic counts these item
        probes uniformly across the certify and extend-certification paths
        (in scan mode the probes are the same; only their unit cost differs).
        """
        self.intersection_tests += writeset.distinct_item_count()
        return self.log.first_conflicting_version(writeset, after_version)

    # -- log garbage collection (low-water-mark protocol) ---------------------

    def note_replica_version(self, replica: str, version: int) -> None:
        """Record that ``replica`` has applied remote writesets up to ``version``.

        Watermarks only move forward; a stale report never lowers one.
        Anonymous reports (empty name) are ignored — they would register a
        phantom replica that caps garbage collection forever.
        """
        if replica and version > self._replica_versions.get(replica, -1):
            self._replica_versions[replica] = version

    def forget_replica(self, replica: str) -> None:
        """Drop a disconnected replica from the low-water-mark computation.

        Its recovery path must then use a dump no older than the GC horizon
        (or a full state transfer) rather than log replay.
        """
        self._replica_versions.pop(replica, None)

    def low_water_mark(self) -> int | None:
        """Minimum reported replica version, or ``None`` before any report."""
        if not self._replica_versions:
            return None
        return min(self._replica_versions.values())

    def collect_garbage(self, *, headroom: int = 0) -> int:
        """Prune the log below the low-water mark (minus ``headroom``).

        Returns the number of records pruned.  A no-op until every known
        replica has reported a version; the log itself additionally clamps
        the horizon to its durable prefix.
        """
        low_water = self.low_water_mark()
        if low_water is None:
            return 0
        pruned = self.log.prune_to(low_water - headroom)
        if pruned:
            self.gc_runs += 1
        return pruned

    def _check_remote_window(self, request: CertificationRequest) -> int:
        """Validate that the requester's remote-writeset window is serveable.

        Returns the GC horizon (the effective lower bound of the window).
        Only a replica whose *own* recorded watermark reached the horizon may
        be served from it: its newer reports prove it already applied the
        pruned prefix, so a below-horizon ``replica_version`` is just a
        delayed view (and the proxy's claim_remote filter is idempotent).
        GC never prunes past the minimum watermark, so every registered
        replica qualifies.  An unknown or never-caught-up requester would
        silently lose the pruned writesets — raise
        :class:`~repro.errors.LogPrunedError` instead; it must bootstrap
        from a dump / state transfer.
        """
        pruned = self.log.pruned_version
        if (request.replica_version < pruned
                and self._replica_versions.get(request.origin_replica, -1) < pruned):
            raise LogPrunedError(request.replica_version, pruned)
        return pruned

    def _should_force_abort(self) -> bool:
        if self.forced_abort_rate <= 0.0:
            return False
        if self._abort_chooser is None:
            return False
        return self._abort_chooser() < self.forced_abort_rate

    def _remote_writesets_for(
        self,
        request: CertificationRequest,
        exclude_version: int | None = None,
        up_to: int | None = None,
    ) -> list[RemoteWriteSetInfo]:
        """Remote writesets the requesting replica has not seen yet.

        When the request carries ``check_remote_back_to`` (Tashkent-API), the
        certifier extends each returned writeset's intersection test back to
        that version and reports the resulting safety horizon.
        """
        remote: list[RemoteWriteSetInfo] = []
        back_to = request.check_remote_back_to
        after = max(request.replica_version, self._check_remote_window(request))
        for record in self.log.records_after(after):
            if up_to is not None and record.commit_version > up_to:
                break
            if exclude_version is not None and record.commit_version == exclude_version:
                continue
            horizon = self.log.certified_back_to(record.commit_version)
            if back_to is not None and back_to < horizon:
                self.intersection_tests += record.writeset.distinct_item_count()
                if self.log.extend_certification(record.commit_version, back_to):
                    horizon = back_to
                else:
                    horizon = self.log.certified_back_to(record.commit_version)
            remote.append(
                RemoteWriteSetInfo(
                    commit_version=record.commit_version,
                    writeset=record.writeset,
                    origin_replica=record.origin_replica,
                    conflict_free_back_to=horizon,
                )
            )
        return remote

    # -- statistics ----------------------------------------------------------

    @property
    def abort_rate(self) -> float:
        """Observed abort rate over update-transaction requests."""
        updates = self.commits + self.aborts
        return self.aborts / updates if updates else 0.0

    def stats_snapshot(self) -> CertifierStats:
        """Typed snapshot of the certifier counters (see :mod:`repro.core.stats`)."""
        return CertifierStats(
            requests=self.certification_requests,
            commits=self.commits,
            aborts=self.aborts,
            forced_aborts=self.forced_aborts,
            readonly_requests=self.readonly_requests,
            intersection_tests=self.intersection_tests,
            snapshot_too_old_aborts=self.snapshot_too_old_aborts,
            gc_runs=self.gc_runs,
            system_version=self.system_version.version,
            log_length=self.log.last_version,
            log_retained_records=self.log.retained_count,
            log_pruned_version=self.log.pruned_version,
            log_pruned_records_total=self.log.pruned_records_total,
        )

    def stats(self) -> dict[str, float]:
        """Snapshot of the certifier counters for reporting."""
        return self.stats_snapshot().as_dict()
