"""The GSI certifier (pure logic, no IO or timing).

This module implements the pseudo-code of Section 6.1 of the paper.  On a
certification request carrying ``(tx_start_version, writeset)`` the certifier:

1. intersection-tests the writeset against every logged writeset whose
   commit version is greater than ``tx_start_version``;
2. if there is no intersection, increments ``system_version``, assigns it as
   the transaction's commit version and appends the writeset to the log;
   otherwise the decision is "abort";
3. returns the decision, the commit version, and the remote writesets the
   requesting replica has not received yet.

Durability of the log (the group-commit flush) is *not* performed here — the
caller (the functional certifier service in :mod:`repro.middleware.certifier`
or the simulated certifier node in :mod:`repro.cluster`) owns the IO so that
the same certification logic is reused in both paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.core.certifier_log import CertifierLog, LogRecord
from repro.core.versions import VersionClock
from repro.core.writeset import WriteSet


class CertificationDecision(str, enum.Enum):
    """Outcome of a certification request."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass
class CertificationRequest:
    """A certification request as sent by a replica's proxy."""

    tx_start_version: int
    writeset: WriteSet
    #: The replica's current ``replica_version``; remote writesets committed
    #: after this version are returned with the response.
    replica_version: int
    origin_replica: str = "replica-0"
    #: Under Tashkent-API the proxy asks that the returned remote writesets
    #: be conflict-checked back to this version so it can safely submit them
    #: concurrently (Section 5.2.1).  ``None`` disables the extended check.
    check_remote_back_to: int | None = None

    def request_size_bytes(self) -> int:
        """Approximate wire size of the request."""
        return 48 + self.writeset.size_bytes()


@dataclass
class RemoteWriteSetInfo:
    """A remote writeset returned to a replica, plus its safety horizon."""

    commit_version: int
    writeset: WriteSet
    origin_replica: str
    #: The writeset is known conflict-free against every writeset committed
    #: after this version.  The Tashkent-API proxy may submit two remote
    #: writesets concurrently only if each is conflict-free back to the
    #: replica's current version.
    conflict_free_back_to: int

    def size_bytes(self) -> int:
        return self.writeset.size_bytes() + 24


@dataclass
class CertificationResult:
    """The certifier's response to a certification request."""

    decision: CertificationDecision
    tx_commit_version: int | None
    remote_writesets: list[RemoteWriteSetInfo] = field(default_factory=list)
    #: True when the abort was injected by the forced-abort knob rather than
    #: by a genuine write-write conflict (Section 9.5).
    forced_abort: bool = False
    #: Commit version of the record that caused a genuine conflict.
    conflicting_version: int | None = None

    @property
    def committed(self) -> bool:
        return self.decision is CertificationDecision.COMMIT

    def response_size_bytes(self) -> int:
        return 32 + sum(info.size_bytes() for info in self.remote_writesets)


class Certifier:
    """Certification and global ordering of update transactions.

    The certifier is deliberately free of IO: appends go to the in-memory
    :class:`CertifierLog`, and the caller decides when and how the pending
    records become durable (one fsync per record in a naive deployment, a
    single batched fsync under group commit).

    ``forced_abort_rate`` reproduces the abort-injection experiment of
    Section 9.5: a fraction of requests is aborted *after* the full
    certification check so the computational cost is still paid.
    ``abort_chooser`` makes the injection deterministic for tests.
    """

    def __init__(
        self,
        log: CertifierLog | None = None,
        *,
        forced_abort_rate: float = 0.0,
        abort_chooser: Callable[[], float] | None = None,
    ) -> None:
        self.log = log if log is not None else CertifierLog()
        self.system_version = VersionClock(self.log.last_version)
        self.forced_abort_rate = forced_abort_rate
        self._abort_chooser = abort_chooser
        # Statistics used by the evaluation harness.
        self.certification_requests = 0
        self.commits = 0
        self.aborts = 0
        self.forced_aborts = 0
        self.readonly_requests = 0
        self.intersection_tests = 0

    # -- main entry point ----------------------------------------------------

    def certify(self, request: CertificationRequest) -> CertificationResult:
        """Process one certification request (paper Section 6.1 pseudo-code)."""
        self.certification_requests += 1
        writeset = request.writeset

        if writeset.is_empty():
            # Read-only transactions never reach the certifier in the real
            # system; accepting them here keeps the API forgiving.
            self.readonly_requests += 1
            return CertificationResult(
                decision=CertificationDecision.COMMIT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
            )

        conflicting_version = self._find_conflict(writeset, request.tx_start_version)
        if conflicting_version is not None:
            self.aborts += 1
            return CertificationResult(
                decision=CertificationDecision.ABORT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
                conflicting_version=conflicting_version,
            )

        if self._should_force_abort():
            # The full certification check above was performed on purpose so
            # that the certifier pays the computational cost (Section 9.5).
            self.aborts += 1
            self.forced_aborts += 1
            return CertificationResult(
                decision=CertificationDecision.ABORT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
                forced_abort=True,
            )

        commit_version = self.system_version.increment()
        self.log.append(
            LogRecord(
                commit_version=commit_version,
                writeset=writeset,
                origin_replica=request.origin_replica,
                certified_back_to=request.tx_start_version,
            )
        )
        self.commits += 1
        remote = self._remote_writesets_for(request, exclude_version=commit_version)
        return CertificationResult(
            decision=CertificationDecision.COMMIT,
            tx_commit_version=commit_version,
            remote_writesets=remote,
        )

    def fetch_remote_writesets(self, replica_version: int,
                               check_back_to: int | None = None) -> list[RemoteWriteSetInfo]:
        """Remote writesets committed after ``replica_version``.

        Used by the bounded-staleness refresh (Section 6.2) when a replica has
        not heard from the certifier for a while.
        """
        request = CertificationRequest(
            tx_start_version=replica_version,
            writeset=WriteSet(),
            replica_version=replica_version,
            check_remote_back_to=check_back_to,
        )
        return self._remote_writesets_for(request)

    # -- internals -----------------------------------------------------------

    def _find_conflict(self, writeset: WriteSet, after_version: int) -> int | None:
        """First conflicting commit version after ``after_version``."""
        for record in self.log.records_after(after_version):
            self.intersection_tests += 1
            if writeset.conflicts_with(record.writeset):
                return record.commit_version
        return None

    def _should_force_abort(self) -> bool:
        if self.forced_abort_rate <= 0.0:
            return False
        if self._abort_chooser is None:
            return False
        return self._abort_chooser() < self.forced_abort_rate

    def _remote_writesets_for(
        self,
        request: CertificationRequest,
        exclude_version: int | None = None,
    ) -> list[RemoteWriteSetInfo]:
        """Remote writesets the requesting replica has not seen yet.

        When the request carries ``check_remote_back_to`` (Tashkent-API), the
        certifier extends each returned writeset's intersection test back to
        that version and reports the resulting safety horizon.
        """
        remote: list[RemoteWriteSetInfo] = []
        back_to = request.check_remote_back_to
        for record in self.log.records_after(request.replica_version):
            if exclude_version is not None and record.commit_version == exclude_version:
                continue
            horizon = self.log.certified_back_to(record.commit_version)
            if back_to is not None and back_to < horizon:
                self.intersection_tests += 1
                if self.log.extend_certification(record.commit_version, back_to):
                    horizon = back_to
                else:
                    horizon = self.log.certified_back_to(record.commit_version)
            remote.append(
                RemoteWriteSetInfo(
                    commit_version=record.commit_version,
                    writeset=record.writeset,
                    origin_replica=record.origin_replica,
                    conflict_free_back_to=horizon,
                )
            )
        return remote

    # -- statistics ----------------------------------------------------------

    @property
    def abort_rate(self) -> float:
        """Observed abort rate over update-transaction requests."""
        updates = self.commits + self.aborts
        return self.aborts / updates if updates else 0.0

    def stats(self) -> dict[str, float]:
        """Snapshot of the certifier counters for reporting."""
        return {
            "requests": self.certification_requests,
            "commits": self.commits,
            "aborts": self.aborts,
            "forced_aborts": self.forced_aborts,
            "readonly_requests": self.readonly_requests,
            "intersection_tests": self.intersection_tests,
            "abort_rate": self.abort_rate,
            "system_version": self.system_version.version,
            "log_length": self.log.last_version,
        }
