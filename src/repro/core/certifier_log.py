"""The certifier's log of certified writesets.

The certifier maintains a persistent log recording ``(writeset,
tx_commit_version)`` tuples for every committed update transaction (paper,
Section 6.1).  The log serves three purposes:

* it defines the global total order of update commits,
* it is the durable record that allows the certifier to recover, and
* under Tashkent-MW it is the *only* durable copy of committed updates, so
  replicas recover by replaying a suffix of it.

This module keeps the log as an in-memory structure with an explicit
"durable horizon": records are appended immediately (so certification can
proceed) but only become durable once the group-commit flush completes.  The
persistence itself (real file or simulated disk) is supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.writeset import WriteSet
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LogRecord:
    """One certified update transaction."""

    commit_version: int
    writeset: WriteSet
    #: Replica that originated the transaction (diagnostics / filtering).
    origin_replica: str = "unknown"
    #: How far back this writeset has been intersection-tested.  Initially
    #: the transaction's effective start version; Tashkent-API may extend the
    #: test further back on behalf of a replica (Section 5.2.1).
    certified_back_to: int = 0

    def size_bytes(self) -> int:
        return self.writeset.size_bytes() + 16


class CertifierLog:
    """Append-only log of certified writesets, indexed by commit version.

    Commit versions are dense and start at 1, so record ``i`` (0-based) holds
    commit version ``i + 1``.  The log also tracks ``durable_version`` — the
    highest commit version whose record has been flushed to stable storage —
    which the certifier advances after each group flush.
    """

    def __init__(self) -> None:
        self._records: list[LogRecord] = []
        self._durable_version = 0
        #: Mutable extension horizon per commit version, updated when the
        #: certifier performs additional intersection testing for a replica.
        self._certified_back_to: dict[int, int] = {}

    # -- append / flush ----------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Append a record; its commit version must be the next in sequence."""
        expected = len(self._records) + 1
        if record.commit_version != expected:
            raise ConfigurationError(
                f"log append out of order: expected version {expected}, "
                f"got {record.commit_version}"
            )
        self._records.append(record)
        self._certified_back_to[record.commit_version] = record.certified_back_to

    def mark_durable(self, up_to_version: int) -> None:
        """Advance the durable horizon after a successful flush."""
        if up_to_version < self._durable_version:
            raise ConfigurationError("durable horizon cannot move backwards")
        if up_to_version > self.last_version:
            raise ConfigurationError("cannot mark unwritten records durable")
        self._durable_version = up_to_version

    # -- queries -----------------------------------------------------------

    @property
    def last_version(self) -> int:
        """Highest appended commit version (0 when the log is empty)."""
        return len(self._records)

    @property
    def durable_version(self) -> int:
        """Highest commit version known to be on stable storage."""
        return self._durable_version

    @property
    def pending_flush_count(self) -> int:
        """Number of appended records not yet durable."""
        return self.last_version - self._durable_version

    def record_at(self, commit_version: int) -> LogRecord:
        """Return the record that created ``commit_version``."""
        if not 1 <= commit_version <= self.last_version:
            raise KeyError(f"no log record for version {commit_version}")
        return self._records[commit_version - 1]

    def records_between(self, after_version: int, up_to_version: int) -> list[LogRecord]:
        """Records with ``after_version < commit_version <= up_to_version``.

        This is exactly the set of "remote writesets the replica has not
        received yet" returned by the certifier to a replica whose
        ``replica_version`` is ``after_version``.
        """
        if up_to_version > self.last_version:
            up_to_version = self.last_version
        if after_version >= up_to_version:
            return []
        return self._records[after_version:up_to_version]

    def records_after(self, after_version: int) -> list[LogRecord]:
        """All records with commit version greater than ``after_version``."""
        return self.records_between(after_version, self.last_version)

    def conflicts(self, writeset: WriteSet, after_version: int,
                  up_to_version: int | None = None) -> bool:
        """Intersection test against the records in ``(after, up_to]``.

        Returns True when ``writeset`` overlaps any logged writeset committed
        after ``after_version``.  This is the paper's certification check.
        """
        end = self.last_version if up_to_version is None else up_to_version
        for record in self.records_between(after_version, end):
            if writeset.conflicts_with(record.writeset):
                return True
        return False

    def first_conflicting_version(self, writeset: WriteSet, after_version: int) -> int | None:
        """Commit version of the earliest conflicting record, or ``None``."""
        for record in self.records_after(after_version):
            if writeset.conflicts_with(record.writeset):
                return record.commit_version
        return None

    # -- extended certification bookkeeping (Tashkent-API) ------------------

    def certified_back_to(self, commit_version: int) -> int:
        """How far back the writeset at ``commit_version`` has been tested."""
        return self._certified_back_to.get(commit_version, commit_version - 1)

    def extend_certification(self, commit_version: int, back_to_version: int) -> bool:
        """Extend the intersection test of an already-certified writeset.

        The certifier "records for each writeset the point to where it has
        been (further) certified and avoids repeated checks" (Section 5.2.1).
        Returns True when the writeset is conflict-free back to
        ``back_to_version``, False when a conflict with an earlier record was
        found (in which case the horizon is left unchanged).
        """
        record = self.record_at(commit_version)
        current = self.certified_back_to(commit_version)
        if back_to_version >= current:
            return True  # Already tested at least that far back.
        if self.conflicts(record.writeset, back_to_version, current):
            return False
        self._certified_back_to[commit_version] = back_to_version
        return True

    # -- persistence helpers -------------------------------------------------

    def total_size_bytes(self) -> int:
        """Approximate size of the whole log (used by the recovery model)."""
        return sum(record.size_bytes() for record in self._records)

    def iter_records(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def replay(self, apply: Callable[[LogRecord], None],
               after_version: int = 0) -> int:
        """Replay the durable suffix of the log through ``apply``.

        Used by certifier recovery and by Tashkent-MW replica recovery.
        Returns the number of records replayed.
        """
        replayed = 0
        for record in self.records_between(after_version, self._durable_version):
            apply(record)
            replayed += 1
        return replayed

    def truncate_to_durable(self) -> int:
        """Drop records that never became durable (simulating a crash).

        Returns the number of records lost.  Only used by crash-injection
        tests; during normal operation the certifier never truncates.
        """
        lost = self.last_version - self._durable_version
        del self._records[self._durable_version:]
        for version in list(self._certified_back_to):
            if version > self._durable_version:
                del self._certified_back_to[version]
        return lost

    @classmethod
    def from_records(cls, records: Iterable[LogRecord], durable: bool = True) -> "CertifierLog":
        """Rebuild a log from records (certifier state-transfer recovery)."""
        log = cls()
        for record in records:
            log.append(record)
        if durable:
            log.mark_durable(log.last_version)
        return log

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"CertifierLog(last={self.last_version}, "
            f"durable={self._durable_version})"
        )
