"""The certifier's log of certified writesets.

The certifier maintains a persistent log recording ``(writeset,
tx_commit_version)`` tuples for every committed update transaction (paper,
Section 6.1).  The log serves three purposes:

* it defines the global total order of update commits,
* it is the durable record that allows the certifier to recover, and
* under Tashkent-MW it is the *only* durable copy of committed updates, so
  replicas recover by replaying a suffix of it.

This module keeps the log as an in-memory structure with an explicit
"durable horizon": records are appended immediately (so certification can
proceed) but only become durable once the group-commit flush completes.  The
persistence itself (real file or simulated disk) is supplied by the caller.

Inverted version index
======================

Every update transaction in the cluster funnels through the certifier, so
the conflict check is the system's single serialized hot path.  The log
therefore maintains an **inverted version index**: for each item identity
``(table, key)`` an ascending list of the commit versions that wrote it.
Certification of a writeset against the window ``(after, up_to]`` becomes
one dict probe plus one binary search per distinct item — an item conflicts
iff some writer version falls inside the window — independent of log length.
The paper's own memoization ("the certifier records for each writeset the
point to where it has been certified and avoids repeated checks",
Section 5.2.1) is kept on top of the index via ``certified_back_to``.

========================  =======================  =====================
operation                 linear scan (seed)       indexed (this module)
========================  =======================  =====================
``conflicts``             O(window × |ws|)         O(|ws| × log k)
``first_conflicting``     O(window × |ws|)         O(|ws| × log k)
``extend_certification``  O(window × |ws|)         O(|ws| × log k)
``append``                O(1)                     O(|ws|)
``prune_to`` (GC)         —                        O(pruned records)
========================  =======================  =====================

(``k`` is the number of retained versions per item, typically tiny.)

The legacy linear scan is retained as a reference implementation.  The mode
is chosen per-log via the constructor or the ``REPRO_CERTIFIER_MODE``
environment variable: ``indexed`` (default), ``scan`` (seed behaviour, used
by the micro-benchmark baseline) or ``verify`` (run both and assert they
agree — the belt-and-braces mode used by the property tests).

Garbage collection and the low-water mark
=========================================

The seed log grew without bound.  :meth:`prune_to` discards the durable
prefix up to a **low-water mark** — the minimum ``replica_version`` across
connected replicas (minus a configurable headroom for in-flight
transactions), fed by :class:`repro.core.certification.Certifier` — because
no replica will ever again ask for those records and no live transaction
started below that version.  Physical truncation is transparent to the
version-based API: ``record_at`` / ``records_between`` / ``replay`` apply
the base offset internally.  Reads that genuinely reference pruned records
raise :class:`repro.errors.LogPrunedError`; conflict *checks* whose window
starts below the horizon conservatively report a conflict (the GSI
equivalent of "snapshot too old" — aborting is always safe).
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.writeset import WriteSet
from repro.errors import ConfigurationError, LogPrunedError

#: Conflict-check implementations: indexed (default), the seed's linear
#: scan, or both-with-assertion.
MODE_INDEXED = "indexed"
MODE_SCAN = "scan"
MODE_VERIFY = "verify"
_VALID_MODES = (MODE_INDEXED, MODE_SCAN, MODE_VERIFY)


def default_mode() -> str:
    """Conflict-check mode from ``REPRO_CERTIFIER_MODE`` (default indexed)."""
    mode = os.environ.get("REPRO_CERTIFIER_MODE", MODE_INDEXED).strip().lower()
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"REPRO_CERTIFIER_MODE must be one of {_VALID_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class LogRecord:
    """One certified update transaction."""

    commit_version: int
    writeset: WriteSet
    #: Replica that originated the transaction (diagnostics / filtering).
    origin_replica: str = "unknown"
    #: How far back this writeset has been intersection-tested.  Initially
    #: the transaction's effective start version; Tashkent-API may extend the
    #: test further back on behalf of a replica (Section 5.2.1).
    certified_back_to: int = 0

    def size_bytes(self) -> int:
        return self.writeset.size_bytes() + 16


class CertifierLog:
    """Append-only log of certified writesets, indexed by commit version.

    Commit versions are dense and start at 1.  After garbage collection the
    retained records start at ``pruned_version + 1``; record lookups apply
    the offset internally so callers keep addressing records by commit
    version.  The log also tracks ``durable_version`` — the highest commit
    version whose record has been flushed to stable storage — which the
    certifier advances after each group flush.  Only durable records may be
    pruned (a crash must never lose the tail we still might truncate to).
    """

    def __init__(self, *, mode: str | None = None, base_version: int = 0) -> None:
        resolved = default_mode() if mode is None else mode
        if resolved not in _VALID_MODES:
            raise ConfigurationError(
                f"certifier log mode must be one of {_VALID_MODES}, got {resolved!r}"
            )
        if base_version < 0:
            raise ConfigurationError("base_version must be non-negative")
        self.mode = resolved
        self._records: list[LogRecord] = []
        #: All commit versions <= _base_version have been garbage collected.
        self._base_version = base_version
        self._durable_version = base_version
        #: Mutable extension horizon per commit version, updated when the
        #: certifier performs additional intersection testing for a replica.
        self._certified_back_to: dict[int, int] = {}
        #: Inverted version index: item identity -> ascending commit versions
        #: that wrote it (absent in pure scan mode).
        self._item_versions: dict[tuple[str, object], list[int]] = {}
        self._pruned_records_total = 0

    @property
    def _index_enabled(self) -> bool:
        return self.mode != MODE_SCAN

    # -- append / flush ----------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Append a record; its commit version must be the next in sequence."""
        expected = self.last_version + 1
        if record.commit_version != expected:
            raise ConfigurationError(
                f"log append out of order: expected version {expected}, "
                f"got {record.commit_version}"
            )
        self._records.append(record)
        self._certified_back_to[record.commit_version] = record.certified_back_to
        if self._index_enabled:
            version = record.commit_version
            index = self._item_versions
            for item_id in record.writeset.iter_item_ids():
                index.setdefault(item_id, []).append(version)

    def mark_durable(self, up_to_version: int) -> None:
        """Advance the durable horizon after a successful flush."""
        if up_to_version < self._durable_version:
            raise ConfigurationError("durable horizon cannot move backwards")
        if up_to_version > self.last_version:
            raise ConfigurationError("cannot mark unwritten records durable")
        self._durable_version = up_to_version

    # -- queries -----------------------------------------------------------

    @property
    def last_version(self) -> int:
        """Highest appended commit version (0 when the log is empty)."""
        return self._base_version + len(self._records)

    @property
    def durable_version(self) -> int:
        """Highest commit version known to be on stable storage."""
        return self._durable_version

    @property
    def pruned_version(self) -> int:
        """Highest commit version discarded by garbage collection."""
        return self._base_version

    @property
    def retained_count(self) -> int:
        """Number of records currently held in memory."""
        return len(self._records)

    @property
    def pruned_records_total(self) -> int:
        """Cumulative number of records discarded by :meth:`prune_to`."""
        return self._pruned_records_total

    @property
    def index_item_count(self) -> int:
        """Number of distinct item identities in the inverted index."""
        return len(self._item_versions)

    @property
    def pending_flush_count(self) -> int:
        """Number of appended records not yet durable."""
        return self.last_version - self._durable_version

    def record_at(self, commit_version: int) -> LogRecord:
        """Return the record that created ``commit_version``."""
        if not 1 <= commit_version <= self.last_version:
            raise KeyError(f"no log record for version {commit_version}")
        if commit_version <= self._base_version:
            raise LogPrunedError(commit_version - 1, self._base_version)
        return self._records[commit_version - self._base_version - 1]

    def records_between(self, after_version: int, up_to_version: int) -> list[LogRecord]:
        """Records with ``after_version < commit_version <= up_to_version``.

        This is exactly the set of "remote writesets the replica has not
        received yet" returned by the certifier to a replica whose
        ``replica_version`` is ``after_version``.  Raises
        :class:`LogPrunedError` when the window reaches below the GC horizon.
        """
        if up_to_version > self.last_version:
            up_to_version = self.last_version
        if after_version >= up_to_version:
            return []
        if after_version < self._base_version:
            raise LogPrunedError(after_version, self._base_version)
        base = self._base_version
        return self._records[after_version - base:up_to_version - base]

    def records_after(self, after_version: int) -> list[LogRecord]:
        """All records with commit version greater than ``after_version``."""
        return self.records_between(after_version, self.last_version)

    # -- conflict checks ---------------------------------------------------

    def conflicts(self, writeset: WriteSet, after_version: int,
                  up_to_version: int | None = None) -> bool:
        """Intersection test against the records in ``(after, up_to]``.

        Returns True when ``writeset`` overlaps any logged writeset committed
        after ``after_version``.  This is the paper's certification check.
        A window starting below the GC horizon conservatively reports a
        conflict ("snapshot too old") because the pruned records can no
        longer be inspected.
        """
        end = self.last_version if up_to_version is None else min(up_to_version, self.last_version)
        if after_version >= end:
            return False
        if after_version < self._base_version:
            return True
        if self.mode == MODE_SCAN:
            return self._scan_conflicts(writeset, after_version, end)
        indexed = self._indexed_conflicts(writeset, after_version, end)
        if self.mode == MODE_VERIFY:
            scanned = self._scan_conflicts(writeset, after_version, end)
            assert indexed == scanned, (
                f"index/scan divergence: conflicts({after_version}, {end}) "
                f"indexed={indexed} scan={scanned}"
            )
        return indexed

    def first_conflicting_version(self, writeset: WriteSet, after_version: int) -> int | None:
        """Commit version of the earliest conflicting record, or ``None``.

        When ``after_version`` lies below the GC horizon the pruned prefix
        cannot be checked; the horizon itself is returned as a conservative
        "may conflict with a pruned record" answer.
        """
        if after_version >= self.last_version:
            return None
        if after_version < self._base_version:
            return self._base_version
        if self.mode == MODE_SCAN:
            return self._scan_first_conflicting_version(writeset, after_version)
        indexed = self._indexed_first_conflicting_version(writeset, after_version)
        if self.mode == MODE_VERIFY:
            scanned = self._scan_first_conflicting_version(writeset, after_version)
            assert indexed == scanned, (
                f"index/scan divergence: first_conflicting({after_version}) "
                f"indexed={indexed} scan={scanned}"
            )
        return indexed

    def _indexed_conflicts(self, writeset: WriteSet, after_version: int, end: int) -> bool:
        index = self._item_versions
        for item_id in writeset.iter_item_ids():
            versions = index.get(item_id)
            if not versions:
                continue
            position = bisect_right(versions, after_version)
            if position < len(versions) and versions[position] <= end:
                return True
        return False

    def _indexed_first_conflicting_version(self, writeset: WriteSet,
                                           after_version: int) -> int | None:
        index = self._item_versions
        earliest: int | None = None
        for item_id in writeset.iter_item_ids():
            versions = index.get(item_id)
            if not versions:
                continue
            position = bisect_right(versions, after_version)
            if position < len(versions):
                version = versions[position]
                if earliest is None or version < earliest:
                    earliest = version
        return earliest

    def _scan_conflicts(self, writeset: WriteSet, after_version: int, end: int) -> bool:
        for record in self.records_between(after_version, end):
            if writeset.conflicts_with(record.writeset):
                return True
        return False

    def _scan_first_conflicting_version(self, writeset: WriteSet,
                                        after_version: int) -> int | None:
        for record in self.records_after(after_version):
            if writeset.conflicts_with(record.writeset):
                return record.commit_version
        return None

    # -- extended certification bookkeeping (Tashkent-API) ------------------

    def certified_back_to(self, commit_version: int) -> int:
        """How far back the writeset at ``commit_version`` has been tested."""
        return self._certified_back_to.get(commit_version, commit_version - 1)

    def extend_certification(self, commit_version: int, back_to_version: int) -> bool:
        """Extend the intersection test of an already-certified writeset.

        The certifier "records for each writeset the point to where it has
        been (further) certified and avoids repeated checks" (Section 5.2.1).
        Returns True when the writeset is conflict-free back to
        ``back_to_version``, False when a conflict with an earlier record was
        found (in which case the horizon is left unchanged).  A target below
        the GC horizon cannot be vouched for and returns False.
        """
        record = self.record_at(commit_version)
        current = self.certified_back_to(commit_version)
        if back_to_version >= current:
            return True  # Already tested at least that far back.
        if self.conflicts(record.writeset, back_to_version, current):
            return False
        self._certified_back_to[commit_version] = back_to_version
        return True

    # -- garbage collection -------------------------------------------------

    def prune_to(self, low_water_version: int) -> int:
        """Discard records at or below ``low_water_version`` (log GC).

        Only durable records may be pruned; the effective horizon is clamped
        to ``durable_version``.  Index entries and extension horizons for the
        pruned prefix are discarded with the records.  Returns the number of
        records pruned.
        """
        target = min(low_water_version, self._durable_version)
        if target <= self._base_version:
            return 0
        drop = target - self._base_version
        pruned = self._records[:drop]
        del self._records[:drop]
        self._base_version = target
        self._pruned_records_total += drop
        for record in pruned:
            self._certified_back_to.pop(record.commit_version, None)
        if self._index_enabled:
            touched: set[tuple[str, object]] = set()
            for record in pruned:
                touched.update(record.writeset.iter_item_ids())
            index = self._item_versions
            for item_id in touched:
                versions = index[item_id]
                keep_from = bisect_right(versions, target)
                if keep_from >= len(versions):
                    del index[item_id]
                elif keep_from:
                    del versions[:keep_from]
        return drop

    # -- persistence helpers -------------------------------------------------

    def total_size_bytes(self) -> int:
        """Approximate size of the retained log (used by the recovery model)."""
        return sum(record.size_bytes() for record in self._records)

    def iter_records(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def replay(self, apply: Callable[[LogRecord], None],
               after_version: int = 0) -> int:
        """Replay the durable suffix of the log through ``apply``.

        Used by certifier recovery and by Tashkent-MW replica recovery.
        Returns the number of records replayed.  Raises
        :class:`LogPrunedError` when ``after_version`` predates the GC
        horizon — the caller must recover from a newer dump or a full state
        transfer instead.
        """
        replayed = 0
        for record in self.records_between(after_version, self._durable_version):
            apply(record)
            replayed += 1
        return replayed

    def truncate_to_durable(self) -> int:
        """Drop records that never became durable (simulating a crash).

        Returns the number of records lost.  All auxiliary state — the
        inverted index and the extension horizons — is kept consistent with
        the surviving records.  Only used by crash-injection tests; during
        normal operation the certifier never truncates.
        """
        cut = self._durable_version - self._base_version
        lost_records = self._records[cut:]
        del self._records[cut:]
        for record in lost_records:
            self._certified_back_to.pop(record.commit_version, None)
        if self._index_enabled and lost_records:
            durable = self._durable_version
            touched: set[tuple[str, object]] = set()
            for record in lost_records:
                touched.update(record.writeset.iter_item_ids())
            index = self._item_versions
            for item_id in touched:
                versions = index[item_id]
                keep_to = bisect_left(versions, durable + 1)
                if keep_to == 0:
                    del index[item_id]
                else:
                    del versions[keep_to:]
        return len(lost_records)

    @classmethod
    def from_records(cls, records: Iterable[LogRecord], durable: bool = True,
                     *, mode: str | None = None) -> "CertifierLog":
        """Rebuild a log from records (certifier state-transfer recovery).

        The records may be the retained suffix of a pruned log: the base
        offset is inferred from the first record's commit version, so a
        recovering certifier can be seeded from a peer that has already
        garbage-collected its prefix.
        """
        iterator = iter(records)
        first = next(iterator, None)
        base = 0 if first is None else first.commit_version - 1
        log = cls(mode=mode, base_version=base)
        if first is not None:
            log.append(first)
            for record in iterator:
                log.append(record)
        if durable:
            log.mark_durable(log.last_version)
        return log

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"CertifierLog(last={self.last_version}, "
            f"durable={self._durable_version}, pruned={self._base_version}, "
            f"mode={self.mode})"
        )
