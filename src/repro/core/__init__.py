"""Pure protocol logic for GSI replication.

This package contains no timing, no IO and no engine dependencies.  It is the
shared vocabulary between the functional replicated system
(:mod:`repro.middleware`) and the simulated clusters used by the evaluation
(:mod:`repro.cluster`): writesets and their intersection test, GSI version
bookkeeping, the certifier with its indexed log and GC protocol, the
sharded certifier with its stable partitioner and deterministic cross-shard
merge (``docs/certifier.md``), the group-commit batching engine, typed
statistics snapshots, commit ordering and artificial-conflict planning.
See ``docs/architecture.md`` for where it sits in the layer map.
"""

from repro.core.artificial_conflicts import ArtificialConflictDetector
from repro.core.certification import CertificationDecision, CertificationResult, Certifier
from repro.core.certifier_log import CertifierLog, LogRecord
from repro.core.config import (
    DiskConfig,
    NetworkConfig,
    ReplicationConfig,
    SystemKind,
    WorkloadName,
)
from repro.core.group_commit import GroupCommitBatcher, GroupCommitStats
from repro.core.ordering import CommitSequencer
from repro.core.sharding import HashPartitioner, Partitioner, ShardedCertifier
from repro.core.stats import CertifierServiceStats, CertifierStats
from repro.core.versions import Snapshot, VersionClock
from repro.core.writeset import WriteItem, WriteOp, WriteSet

__all__ = [
    "ArtificialConflictDetector",
    "CertificationDecision",
    "CertificationResult",
    "Certifier",
    "CertifierLog",
    "CertifierServiceStats",
    "CertifierStats",
    "CommitSequencer",
    "DiskConfig",
    "GroupCommitBatcher",
    "GroupCommitStats",
    "HashPartitioner",
    "LogRecord",
    "NetworkConfig",
    "Partitioner",
    "ReplicationConfig",
    "ShardedCertifier",
    "Snapshot",
    "SystemKind",
    "VersionClock",
    "WorkloadName",
    "WriteItem",
    "WriteOp",
    "WriteSet",
]
