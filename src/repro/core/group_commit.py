"""Group-commit batching policy.

The heart of the paper's argument is arithmetic about how many commit
records share one synchronous disk write:

* a standalone database groups every commit that is pending when the log
  writer wakes up into a single fsync;
* Base cannot group at all — the middleware must submit commits serially to
  preserve the global order, so every local commit *and* every batch of
  remote writesets costs one fsync (2 fsyncs per local update transaction
  once remote writesets start flowing, Section 9.2);
* Tashkent-MW groups at the certifier: every writeset that arrives while the
  previous flush is in progress joins the next flush (the paper reports an
  average of 29 writesets per fsync at 15 replicas);
* Tashkent-API groups inside the database, limited by artificial conflicts
  among remote writesets which force serialisation points.

:class:`GroupCommitBatcher` models the queue of pending commit requests in
front of a single log-writer thread.  It is used by the engine's WAL, by the
functional certifier service and by the simulated certifier/database nodes,
so the batching statistics reported by the benchmarks come from one shared
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterable, TypeVar

T = TypeVar("T")


@dataclass
class GroupCommitStats:
    """Aggregate statistics about flush batching.

    Per-flush state is O(1): instead of remembering every batch size forever
    (the seed kept an ever-growing ``batch_sizes`` list — one entry per flush
    for the lifetime of the process), sizes are folded into a running
    histogram over power-of-two buckets.  ``largest_batch`` and the mean
    (``records_flushed / flushes``) are exact; the distribution is available
    at bucket granularity via :attr:`batch_size_histogram`.
    """

    flushes: int = 0
    records_flushed: int = 0
    largest_batch: int = 0
    #: Flush count per power-of-two batch-size bucket: key ``b`` counts
    #: batches of size in ``(b/2, b]`` (so 1, 2, 4, 8, ... records).  At most
    #: ~60 keys ever exist, regardless of how long the process runs.
    batch_size_histogram: dict[int, int] = field(default_factory=dict)

    @staticmethod
    def _bucket(batch_size: int) -> int:
        return 1 << (batch_size - 1).bit_length()

    def record_flush(self, batch_size: int) -> None:
        if batch_size <= 0:
            return
        self.flushes += 1
        self.records_flushed += batch_size
        self.largest_batch = max(self.largest_batch, batch_size)
        bucket = self._bucket(batch_size)
        self.batch_size_histogram[bucket] = self.batch_size_histogram.get(bucket, 0) + 1

    @property
    def average_batch_size(self) -> float:
        """Mean number of commit records per fsync."""
        return self.records_flushed / self.flushes if self.flushes else 0.0

    def merge(self, other: "GroupCommitStats") -> None:
        self.flushes += other.flushes
        self.records_flushed += other.records_flushed
        self.largest_batch = max(self.largest_batch, other.largest_batch)
        for bucket, count in other.batch_size_histogram.items():
            self.batch_size_histogram[bucket] = (
                self.batch_size_histogram.get(bucket, 0) + count
            )


class GroupCommitBatcher(Generic[T]):
    """Queue of pending commit records waiting for the next flush.

    The protocol is: producers :meth:`enqueue` records; when the log writer
    is free it calls :meth:`take_batch`, performs the (real or simulated)
    fsync, then calls :meth:`complete_batch`.  Anything enqueued while the
    flush is in flight waits for the next one — exactly the behaviour of a
    single log-writer thread with an fsync in progress.
    """

    def __init__(self, max_batch_size: int | None = None) -> None:
        self._pending: list[T] = []
        self._in_flight: list[T] = []
        self._max_batch_size = max_batch_size
        self.stats = GroupCommitStats()

    # -- producer side -------------------------------------------------------

    def enqueue(self, record: T) -> None:
        """Add a commit record to the queue for the next flush."""
        self._pending.append(record)

    def enqueue_many(self, records: Iterable[T]) -> None:
        for record in records:
            self.enqueue(record)

    # -- log-writer side -----------------------------------------------------

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def flush_in_progress(self) -> bool:
        return bool(self._in_flight)

    def take_batch(self) -> list[T]:
        """Claim the records for the next flush.

        Raises ``RuntimeError`` if a flush is already in progress — the log
        writer is single-threaded by construction.
        """
        if self._in_flight:
            raise RuntimeError("a flush is already in progress")
        if self._max_batch_size is None:
            batch = self._pending
            self._pending = []
        else:
            batch = self._pending[: self._max_batch_size]
            self._pending = self._pending[self._max_batch_size:]
        self._in_flight = list(batch)
        return batch

    def complete_batch(self) -> list[T]:
        """Mark the in-flight batch durable and return it."""
        batch = self._in_flight
        self._in_flight = []
        self.stats.record_flush(len(batch))
        return batch

    def abandon_batch(self) -> list[T]:
        """Return the in-flight batch to the head of the queue (crash path)."""
        batch = self._in_flight
        self._in_flight = []
        self._pending = batch + self._pending
        return batch
