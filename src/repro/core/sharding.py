"""Sharded certification: partition the certifier keyspace, merge deterministically.

The paper's certifier is a single process: one log, one version clock, one
fsync pipeline.  PR 1 made each certification O(|writeset|) and PR 2 batched
the fsyncs, but every update transaction in the cluster still serializes
through that one pipeline.  This module splits it.

Design
======

* A pluggable :class:`Partitioner` (default :class:`HashPartitioner`, a
  stable CRC-32 hash) assigns every item identity ``(table, key)`` to one of
  N **certification shards**.
* Each :class:`CertifierShard` owns a full :class:`~repro.core.certification.
  Certifier` over its own :class:`~repro.core.certifier_log.CertifierLog`.
  The shard log is addressed in *shard-local* dense versions; the shard keeps
  the local↔global maps (``_globals``) so conflict windows expressed in
  global versions translate to the shard's own **conflict horizon** with one
  binary search.
* The :class:`ShardedCertifier` coordinator owns the **global sequencer**
  (one :class:`~repro.core.versions.VersionClock`) and a global **directory**
  of committed records.  Commit versions are allocated *only* on commit, so
  the global version space stays dense over commits — the property the
  deterministic cross-shard merge and the replica apply path rely on.

Certification of one request:

1. split the writeset into per-shard fragments;
2. **probe phase** — every touched shard conflict-checks its fragment
   against its own horizon (``local_horizon(tx_start_version)``).  Because
   the partitioner maps each item to exactly one shard, the union of the
   fragment checks equals the seed's single-log check item for item;
3. any fragment conflict ⇒ the whole transaction aborts, with the earliest
   conflicting *global* version reported — and nothing was appended anywhere
   (all-shards-commit ∨ any-shard-aborts, resolved before any mutation);
4. all clean ⇒ the sequencer allocates the global commit version and each
   touched shard admits (:meth:`~repro.core.certification.Certifier.admit`)
   its fragment at its next local version.

A single-shard transaction — the common case under workload locality —
therefore certifies, flushes and propagates entirely within one shard; only
genuinely cross-shard writesets pay the multi-fragment merge.

Durability and propagation stay with the callers (the functional
:class:`~repro.middleware.sharded_certifier.ShardedCertifierService` and the
simulated ``SimShardedCertifierNode``), exactly as with the single
:class:`Certifier`: shards expose their local durable horizons, and
:meth:`ShardedCertifier.advance_durable_frontier` converts them into the
contiguous global frontier in whose order full writesets are handed to the
per-shard streams (see :class:`repro.transport.MergedSubscription` for the
replica-side merge).

With ``num_shards=1`` every mapping is the identity and the behaviour is
equivalent to the seed certifier decision for decision, version for version
— the property test in ``tests/test_property_certifier_index.py`` pins this.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

from repro.core.certification import (
    CertificationDecision,
    CertificationRequest,
    CertificationResult,
    Certifier,
    RemoteWriteSetInfo,
)
from repro.core.certifier_log import CertifierLog
from repro.core.stats import CertifierStats
from repro.core.versions import VersionClock
from repro.core.writeset import WriteSet
from repro.errors import (
    ConfigurationError,
    LogPrunedError,
    RecoveryError,
    ReproError,
)


class Partitioner(Protocol):
    """Maps item identities to certification shards (stable across restarts)."""

    num_shards: int

    def shard_of(self, item_id: tuple[str, object]) -> int:
        """Shard owning ``item_id``; must be deterministic and stable."""


class HashPartitioner:
    """Stable hash partitioning of item identities across shards.

    Hashes the ``repr`` of the identity with CRC-32 rather than Python's
    built-in ``hash``: string hashing is salted per process
    (``PYTHONHASHSEED``), and the shard map must agree between certifier
    restarts, between the functional and simulated stacks, and between the
    certifier and any shard-aware router.  A small bounded cache keeps hot
    identities (interned by :mod:`repro.core.writeset`) from re-hashing.
    """

    _CACHE_MAX = 1 << 18

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._cache: dict[tuple[str, object], int] = {}

    def shard_of(self, item_id: tuple[str, object]) -> int:
        if self.num_shards == 1:
            return 0
        shard = self._cache.get(item_id)
        if shard is None:
            shard = zlib.crc32(repr(item_id).encode("utf-8")) % self.num_shards
            if len(self._cache) >= self._CACHE_MAX:
                self._cache.clear()
            self._cache[item_id] = shard
        return shard

    def split(self, writeset: WriteSet) -> dict[int, WriteSet]:
        """Fragment ``writeset`` by owning shard.

        The overwhelmingly common single-shard case returns the original
        writeset object under its shard id — no copy, no allocation beyond
        the dict.  Cross-shard writesets are split item by item, preserving
        the original item order within each fragment.
        """
        if writeset.is_empty():
            return {}
        shards = {self.shard_of(item_id) for item_id in writeset.iter_item_ids()}
        if len(shards) == 1:
            return {next(iter(shards)): writeset}
        fragments: dict[int, WriteSet] = {}
        for item in writeset:
            fragments.setdefault(self.shard_of(item.item_id), WriteSet()).add(item)
        return fragments

    def __repr__(self) -> str:
        return f"HashPartitioner(num_shards={self.num_shards})"


class CertifierShard:
    """One certification shard: a certifier over its own log, plus the maps.

    The shard's :class:`Certifier`/:class:`CertifierLog` pair is addressed in
    shard-local dense commit versions (1, 2, 3, ... per shard), which keeps
    every log facility — the inverted version index, scan/verify modes,
    durability horizons, garbage collection — working unchanged.  The shard
    additionally records, for each retained local version, the *global*
    commit version the coordinator assigned, so windows and horizons convert
    between coordinate systems with a binary search.
    """

    def __init__(self, shard_id: int, *, log: CertifierLog | None = None) -> None:
        self.shard_id = shard_id
        self.certifier = Certifier(log if log is not None else CertifierLog())
        #: Global commit version of each retained local record (ascending);
        #: entry ``i`` belongs to local version ``log.pruned_version + 1 + i``.
        self._globals: list[int] = []
        #: Global version the pruned local prefix maps to (GC horizon).
        self._pruned_global = 0

    @property
    def log(self) -> CertifierLog:
        return self.certifier.log

    # -- version coordinate mapping ----------------------------------------

    def local_horizon(self, global_version: int) -> int:
        """This shard's conflict horizon for a snapshot at ``global_version``.

        The shard-local version of the last shard record committed at or
        below ``global_version``: fragment certification checks exactly the
        local records above it, which are exactly the shard's records with a
        global commit version above ``global_version``.
        """
        return self.log.pruned_version + bisect_right(self._globals, global_version)

    def global_of(self, local_version: int) -> int:
        """Global commit version of a shard-local version.

        A local version at or below the pruned prefix maps to the global GC
        horizon — the conservative answer for records no longer inspectable.
        """
        if local_version <= self.log.pruned_version:
            return self._pruned_global
        return self._globals[local_version - self.log.pruned_version - 1]

    # -- certification ------------------------------------------------------

    def probe(self, fragment: WriteSet, global_after: int) -> int | None:
        """Conflict-check a fragment; returns the earliest conflicting
        *global* version, or ``None`` when the fragment is clean."""
        local = self.certifier.probe_conflict(fragment,
                                              self.local_horizon(global_after))
        return None if local is None else self.global_of(local)

    def admit(self, fragment: WriteSet, global_after: int, global_version: int,
              origin_replica: str) -> int:
        """Install a probed-clean fragment; returns its local version."""
        local = self.certifier.admit(fragment, self.local_horizon(global_after),
                                     origin_replica)
        self._globals.append(global_version)
        return local

    def admit_at(self, fragment: WriteSet, global_after: int, global_version: int,
                 origin_replica: str) -> int:
        """Install a fragment at ``global_version``, idempotently.

        The recovery replay path: a round interrupted by a crash may already
        have installed this fragment on some shards, so re-offering it must
        be a no-op there (and must install it everywhere else).  Returns the
        fragment's shard-local version either way.  A ``global_version`` that
        is neither already present nor the shard's next global is a replay
        protocol violation and raises :class:`~repro.errors.RecoveryError`.
        """
        if global_version <= self._pruned_global:
            # Below this shard's GC horizon: the fragment was pruned; the
            # horizon itself is the conservative local coordinate.
            return self.log.pruned_version
        if self._globals and self._globals[-1] >= global_version:
            index = bisect_right(self._globals, global_version) - 1
            if index < 0 or self._globals[index] != global_version:
                raise RecoveryError(
                    f"shard {self.shard_id}: replay offered global version "
                    f"{global_version}, which is neither installed nor next"
                )
            return self.log.pruned_version + index + 1
        return self.admit(fragment, global_after, global_version, origin_replica)

    # -- recovery accessors --------------------------------------------------

    @property
    def pruned_global(self) -> int:
        """Global version the pruned local prefix maps to (GC horizon)."""
        return self._pruned_global

    def global_map(self) -> tuple[int, ...]:
        """The retained local→global version map (ascending global versions;
        entry ``i`` belongs to local version ``pruned_version + 1 + i``)."""
        return tuple(self._globals)

    # -- extended certification (Tashkent-API horizons) ---------------------

    def global_horizon(self, local_version: int) -> int:
        """How far back (globally) the fragment at ``local_version`` is
        known conflict-free."""
        return self.global_of(self.log.certified_back_to(local_version))

    def extend_to_global(self, local_version: int, global_back_to: int) -> bool:
        """Extend a fragment's intersection test back to a global version."""
        return self.log.extend_certification(local_version,
                                             self.local_horizon(global_back_to))

    # -- garbage collection --------------------------------------------------

    def prune_to_global(self, global_target: int) -> int:
        """Prune this shard's log below the global GC horizon.

        Returns the number of local records pruned (the shard log clamps to
        its own durable horizon, so a lagging shard simply retains more).
        """
        local_target = self.local_horizon(global_target)
        pruned = self.log.prune_to(local_target)
        if pruned:
            self._pruned_global = self._globals[pruned - 1]
            del self._globals[:pruned]
        return pruned

    def __repr__(self) -> str:
        return (
            f"CertifierShard(id={self.shard_id}, local_last={self.log.last_version}, "
            f"durable={self.log.durable_version})"
        )


@dataclass(frozen=True)
class GlobalRecord:
    """Directory entry for one committed (possibly cross-shard) transaction."""

    commit_version: int
    #: The full writeset (fragments reference the same items).
    writeset: WriteSet
    origin_replica: str
    #: ``(shard_id, shard-local version)`` per touched shard, shard-id order.
    shard_locals: tuple[tuple[int, int], ...]

    @property
    def home_shard(self) -> int:
        """The shard whose stream propagates this record (lowest touched id)."""
        return self.shard_locals[0][0]


class ShardedCertifier:
    """Certification and global ordering across N shards (pure logic, no IO).

    Mirrors the :class:`~repro.core.certification.Certifier` API surface —
    ``certify`` / ``fetch_remote_writesets`` / ``extend_remote_horizons`` /
    the log-GC low-water-mark protocol / ``stats`` — so the middleware
    service and the simulated node wrap it exactly as they wrap the single
    certifier.  See the module docstring for the protocol.
    """

    def __init__(
        self,
        num_shards: int = 1,
        *,
        partitioner: Partitioner | None = None,
        forced_abort_rate: float = 0.0,
        abort_chooser: Callable[[], float] | None = None,
        log_mode: str | None = None,
    ) -> None:
        self.partitioner: Partitioner = (
            partitioner if partitioner is not None else HashPartitioner(num_shards)
        )
        if self.partitioner.num_shards != num_shards:
            raise ConfigurationError(
                f"partitioner covers {self.partitioner.num_shards} shards, "
                f"certifier was asked for {num_shards}"
            )
        self.shards = [
            CertifierShard(i, log=CertifierLog(mode=log_mode))
            for i in range(num_shards)
        ]
        #: The lightweight global sequencer: allocates commit versions (only
        #: on commit, so the global version space is dense over commits).
        self.system_version = VersionClock()
        self.forced_abort_rate = forced_abort_rate
        self._abort_chooser = abort_chooser
        self._replica_versions: dict[str, int] = {}
        # Global directory of committed records (version-ordered, prunable).
        self._records: list[GlobalRecord] = []
        self._base_version = 0
        self._durable_version = 0
        #: Highest global version claimed through :meth:`take_propagatable`.
        self._propagated_version = 0
        self._pruned_records_total = 0
        # Coordinator-level counters; per-item intersection tests live on the
        # shard certifiers and are summed in :meth:`stats_snapshot`.
        self.certification_requests = 0
        self.commits = 0
        self.aborts = 0
        self.forced_aborts = 0
        self.readonly_requests = 0
        self.snapshot_too_old_aborts = 0
        self.gc_runs = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # -- directory accessors -------------------------------------------------

    @property
    def last_version(self) -> int:
        """Highest allocated global commit version."""
        return self._base_version + len(self._records)

    @property
    def durable_version(self) -> int:
        """The contiguous global durability frontier: every commit at or
        below it is durable on every shard it touched."""
        return self._durable_version

    @property
    def pruned_version(self) -> int:
        """Highest global commit version discarded by garbage collection."""
        return self._base_version

    @property
    def retained_count(self) -> int:
        return len(self._records)

    def record_at(self, commit_version: int) -> GlobalRecord:
        if not 1 <= commit_version <= self.last_version:
            raise KeyError(f"no committed record for version {commit_version}")
        if commit_version <= self._base_version:
            raise LogPrunedError(commit_version - 1, self._base_version)
        return self._records[commit_version - self._base_version - 1]

    def records_after(self, after_version: int) -> list[GlobalRecord]:
        if after_version >= self.last_version:
            return []
        if after_version < self._base_version:
            raise LogPrunedError(after_version, self._base_version)
        return self._records[after_version - self._base_version:]

    # -- main entry point ----------------------------------------------------

    def certify(self, request: CertificationRequest,
                fragments: dict[int, WriteSet] | None = None,
                *, phase_hook: Callable[[str], None] | None = None) -> CertificationResult:
        """Process one certification request (the seed pseudo-code, sharded).

        ``fragments`` may carry a precomputed ``partitioner.split(request.
        writeset)`` when the caller already split the writeset (the
        simulated node does, to charge each touched shard's CPU lane) —
        the hot path then hashes every item exactly once.

        ``phase_hook`` is the fault-injection seam used by the crash-schedule
        harness: it is invoked with the phase name at the boundaries of the
        commit path — ``post-probe`` (all fragments checked clean),
        ``pre-admit`` (global version allocated, nothing installed),
        ``mid-admit`` (first touched shard installed) and ``post-admit``
        (directory record appended).  A hook that raises models a coordinator
        crash at exactly that point; the volatile state it leaves behind is
        what recovery must resolve.
        """
        result = self._certify(request, fragments, phase_hook)
        # As in the single certifier: enroll the replica's watermark only
        # after the request was accepted (a refused below-horizon requester
        # must not pin GC forever).
        self.note_replica_version(request.origin_replica, request.replica_version)
        return result

    def _certify(self, request: CertificationRequest,
                 fragments: dict[int, WriteSet] | None = None,
                 phase_hook: Callable[[str], None] | None = None) -> CertificationResult:
        self._check_remote_window(request)
        self.certification_requests += 1
        writeset = request.writeset

        if writeset.is_empty():
            self.readonly_requests += 1
            return CertificationResult(
                decision=CertificationDecision.COMMIT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
            )

        if fragments is None:
            fragments = self.partitioner.split(writeset)
        touched = sorted(fragments)
        conflict = self._find_conflict(fragments, touched, request.tx_start_version)
        if conflict is not None:
            self.aborts += 1
            if request.tx_start_version < self._base_version:
                self.snapshot_too_old_aborts += 1
            return CertificationResult(
                decision=CertificationDecision.ABORT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
                conflicting_version=conflict,
            )

        if self._should_force_abort():
            self.aborts += 1
            self.forced_aborts += 1
            return CertificationResult(
                decision=CertificationDecision.ABORT,
                tx_commit_version=None,
                remote_writesets=self._remote_writesets_for(request),
                forced_abort=True,
            )

        if phase_hook is not None:
            phase_hook("post-probe")
        # All touched shards certified their fragment clean: allocate the
        # global commit version and install every fragment.  Nothing below
        # can fail, so cross-shard atomicity holds by construction.
        commit_version = self.system_version.increment()
        if phase_hook is not None:
            phase_hook("pre-admit")
        origin = request.origin_replica or "unknown"
        shard_locals: list[tuple[int, int]] = []
        for position, shard_id in enumerate(touched):
            shard_locals.append((shard_id, self.shards[shard_id].admit(
                fragments[shard_id], request.tx_start_version, commit_version, origin)))
            if position == 0 and phase_hook is not None:
                phase_hook("mid-admit")
        self._records.append(
            GlobalRecord(
                commit_version=commit_version,
                writeset=writeset,
                origin_replica=origin,
                shard_locals=tuple(shard_locals),
            )
        )
        self.commits += 1
        if phase_hook is not None:
            phase_hook("post-admit")
        remote = self._remote_writesets_for(request, exclude_version=commit_version)
        return CertificationResult(
            decision=CertificationDecision.COMMIT,
            tx_commit_version=commit_version,
            remote_writesets=remote,
        )

    # -- group certification (one round, many requests) ----------------------

    def certify_batch(
        self, requests: list[CertificationRequest],
    ) -> list[CertificationResult | ReproError]:
        """Certify a batch of requests as one round, sequentially-equivalent.

        Produces exactly the decisions, commit versions, counters and remote
        writeset windows a ``for request: certify(request)`` loop would — the
        point of batching is that the *caller* can then install every
        admitted fragment with one log flush per touched shard instead of
        one per transaction.  Per-request failures (e.g. a pruned remote
        window) are returned in place as the exception instance, so one bad
        request cannot poison its batchmates.

        Three phases, all in batch order:

        1. **decide** — per request: window check, the shard log probes
           (charged exactly as sequential), plus an *overlay* conflict check
           against the batch's own earlier pending commits (which sequential
           certification would have found in the shard logs); clean requests
           allocate their global version and stake their items in the
           overlay.
        2. **admit** — pending fragments install per shard in global-version
           order (the same admit-call sequence the loop would make, merely
           deferred past the later probes, which are content-independent).
        3. **respond** — remote writesets are computed per request with the
           window capped at the versions that preceded it (``up_to``), so
           request *i* sees its earlier batchmates' commits but not later
           ones — byte-identical to the sequential interleaving.
        """
        outcomes: list[CertificationResult | ReproError | None] = [None] * len(requests)
        plans: list[tuple | None] = [None] * len(requests)
        #: item identity -> earliest pending (not yet admitted) commit version.
        overlay: dict[tuple[str, object], int] = {}

        for i, request in enumerate(requests):
            try:
                self._check_remote_window(request)
            except LogPrunedError as exc:
                outcomes[i] = exc
                continue
            self.certification_requests += 1
            writeset = request.writeset

            if writeset.is_empty():
                self.readonly_requests += 1
                plans[i] = ("readonly", self.system_version.version)
                self.note_replica_version(request.origin_replica,
                                          request.replica_version)
                continue

            fragments = self.partitioner.split(writeset)
            touched = sorted(fragments)
            conflict = self._find_conflict(fragments, touched,
                                           request.tx_start_version)
            if conflict is None:
                # Earlier batchmates' items are not yet in the shard logs;
                # overlay versions are all above any request's snapshot, so
                # any staked item the writeset touches is a conflict (and the
                # log conflict, when present, is always the earlier version).
                pending = [overlay[item_id] for item_id in writeset.iter_item_ids()
                           if item_id in overlay]
                conflict = min(pending) if pending else None
            if conflict is not None:
                self.aborts += 1
                if request.tx_start_version < self._base_version:
                    self.snapshot_too_old_aborts += 1
                plans[i] = ("abort", self.system_version.version, conflict, False)
                self.note_replica_version(request.origin_replica,
                                          request.replica_version)
                continue

            if self._should_force_abort():
                self.aborts += 1
                self.forced_aborts += 1
                plans[i] = ("abort", self.system_version.version, None, True)
                self.note_replica_version(request.origin_replica,
                                          request.replica_version)
                continue

            commit_version = self.system_version.increment()
            for item_id in writeset.iter_item_ids():
                overlay.setdefault(item_id, commit_version)
            plans[i] = ("commit", commit_version - 1, commit_version,
                        fragments, touched)
            self.note_replica_version(request.origin_replica,
                                      request.replica_version)

        for i, request in enumerate(requests):
            plan = plans[i]
            if plan is None or plan[0] != "commit":
                continue
            _, _, commit_version, fragments, touched = plan
            origin = request.origin_replica or "unknown"
            shard_locals = tuple(
                (shard_id, self.shards[shard_id].admit(
                    fragments[shard_id], request.tx_start_version,
                    commit_version, origin))
                for shard_id in touched
            )
            self._records.append(
                GlobalRecord(
                    commit_version=commit_version,
                    writeset=request.writeset,
                    origin_replica=origin,
                    shard_locals=shard_locals,
                )
            )
            self.commits += 1

        for i, request in enumerate(requests):
            plan = plans[i]
            if plan is None:
                continue
            kind, boundary = plan[0], plan[1]
            remote = self._remote_writesets_for(request, up_to=boundary)
            if kind == "commit":
                outcomes[i] = CertificationResult(
                    decision=CertificationDecision.COMMIT,
                    tx_commit_version=plan[2],
                    remote_writesets=remote,
                )
            elif kind == "abort":
                outcomes[i] = CertificationResult(
                    decision=CertificationDecision.ABORT,
                    tx_commit_version=None,
                    remote_writesets=remote,
                    conflicting_version=plan[2],
                    forced_abort=plan[3],
                )
            else:
                outcomes[i] = CertificationResult(
                    decision=CertificationDecision.COMMIT,
                    tx_commit_version=None,
                    remote_writesets=remote,
                )
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _find_conflict(self, fragments: dict[int, WriteSet], touched: list[int],
                       after_version: int) -> int | None:
        """Earliest conflicting global version across all touched shards.

        A snapshot below the global GC horizon cannot be checked against the
        pruned prefix; the horizon itself is returned (the conservative
        "snapshot too old" answer), with the item probes still charged —
        matching the single certifier's accounting.
        """
        if after_version < self._base_version:
            for shard_id in touched:
                self.shards[shard_id].certifier.intersection_tests += (
                    fragments[shard_id].distinct_item_count()
                )
            return self._base_version
        earliest: int | None = None
        for shard_id in touched:
            conflict = self.shards[shard_id].probe(fragments[shard_id], after_version)
            if conflict is not None and (earliest is None or conflict < earliest):
                earliest = conflict
        return earliest

    # -- remote writesets (the merged, version-ordered view) -----------------

    def fetch_remote_writesets(self, replica_version: int,
                               check_back_to: int | None = None,
                               *, replica: str | None = None,
                               up_to: int | None = None,
                               exclude_version: int | None = None) -> list[RemoteWriteSetInfo]:
        """Remote writesets committed after ``replica_version`` (merged order).

        ``up_to``/``exclude_version`` reproduce an original certification
        response's window for a resent request (see the single-certifier
        docstring): nothing admitted after the recorded decision rides along.
        """
        request = CertificationRequest(
            tx_start_version=replica_version,
            writeset=WriteSet(),
            replica_version=replica_version,
            origin_replica=replica if replica is not None else "",
            check_remote_back_to=check_back_to,
        )
        remote = self._remote_writesets_for(request, exclude_version, up_to)
        if replica is not None:
            self.note_replica_version(replica, replica_version)
        return remote

    def _remote_writesets_for(
        self,
        request: CertificationRequest,
        exclude_version: int | None = None,
        up_to: int | None = None,
    ) -> list[RemoteWriteSetInfo]:
        remote: list[RemoteWriteSetInfo] = []
        back_to = request.check_remote_back_to
        after = max(request.replica_version, self._check_remote_window(request))
        for record in self.records_after(after):
            # ``up_to`` caps the window at the versions that existed when the
            # request's turn came in a batch (see :meth:`certify_batch`).
            if up_to is not None and record.commit_version > up_to:
                break
            if exclude_version is not None and record.commit_version == exclude_version:
                continue
            horizon = self.certified_back_to(record.commit_version)
            if back_to is not None and back_to < horizon:
                horizon = self._extend_record(record, back_to)
            remote.append(
                RemoteWriteSetInfo(
                    commit_version=record.commit_version,
                    writeset=record.writeset,
                    origin_replica=record.origin_replica,
                    conflict_free_back_to=horizon,
                )
            )
        return remote

    def certified_back_to(self, commit_version: int) -> int:
        """How far back (globally) the writeset at ``commit_version`` is
        known conflict-free: the weakest of its fragments' shard horizons."""
        record = self.record_at(commit_version)
        return max(
            self.shards[shard_id].global_horizon(local)
            for shard_id, local in record.shard_locals
        )

    def _extend_record(self, record: GlobalRecord, back_to: int) -> int:
        """Extend every fragment's intersection test back to ``back_to``.

        Returns the resulting global horizon: ``back_to`` when every touched
        shard vouches for its fragment, the recomputed (partial) horizon
        otherwise.  Intersection tests are charged per fragment, which sums
        to the single certifier's full-writeset charge.
        """
        all_extended = True
        for shard_id, local in record.shard_locals:
            shard = self.shards[shard_id]
            if back_to >= shard.global_horizon(local):
                continue
            fragment = shard.log.record_at(local).writeset
            shard.certifier.intersection_tests += fragment.distinct_item_count()
            if not shard.extend_to_global(local, back_to):
                all_extended = False
        if all_extended:
            return back_to
        return self.certified_back_to(record.commit_version)

    def extend_remote_horizons(self, infos: list[RemoteWriteSetInfo],
                               back_to: int) -> list[RemoteWriteSetInfo]:
        """Extend delivered writesets' conflict-free horizons (Section 5.2.1).

        The sharded twin of :meth:`Certifier.extend_remote_horizons`: records
        already pruned by log GC keep their delivered horizon (the planner
        falls back to its pairwise check).
        """
        extended: list[RemoteWriteSetInfo] = []
        for info in infos:
            if info.commit_version <= self._base_version:
                extended.append(info)
                continue
            record = self.record_at(info.commit_version)
            horizon = min(info.conflict_free_back_to,
                          self.certified_back_to(info.commit_version))
            if back_to < horizon:
                horizon = self._extend_record(record, back_to)
            if horizon == info.conflict_free_back_to:
                extended.append(info)
            else:
                extended.append(
                    RemoteWriteSetInfo(
                        commit_version=info.commit_version,
                        writeset=info.writeset,
                        origin_replica=info.origin_replica,
                        conflict_free_back_to=horizon,
                    )
                )
        return extended

    # -- durability frontier --------------------------------------------------

    def advance_durable_frontier(self) -> list[GlobalRecord]:
        """Advance the contiguous global durability frontier.

        A commit is fully durable once every touched shard's log has flushed
        its fragment; the frontier advances through fully-durable commits in
        global order and the newly covered records are returned — exactly the
        order in which the owning services hand them to the propagation
        streams, so every replica observes a version-ordered stream.
        """
        newly: list[GlobalRecord] = []
        while self._durable_version < self.last_version:
            record = self.record_at(self._durable_version + 1)
            if all(self.shards[shard_id].log.durable_version >= local
                   for shard_id, local in record.shard_locals):
                self._durable_version += 1
                newly.append(record)
            else:
                break
        return newly

    def is_record_durable(self, commit_version: int) -> bool:
        """Whether one commit's fragments are durable on all touched shards
        (independent of the contiguous frontier)."""
        record = self.record_at(commit_version)
        return all(self.shards[shard_id].log.durable_version >= local
                   for shard_id, local in record.shard_locals)

    def take_propagatable(self, up_to: int | None = None) -> list[GlobalRecord]:
        """Claim the next records to hand to the propagation streams.

        Advances the durability frontier, then returns — in strict global
        order, each record exactly once across the certifier's lifetime —
        everything between the propagation cursor and ``up_to`` (default:
        the durability frontier; a non-durable deployment passes
        :attr:`last_version` to propagate at certification time).  Owning
        the cursor here keeps the frontier-ordered walk identical in both
        stacks; the caller only decides which stream gets each record and
        when stream batches are cut.
        """
        self.advance_durable_frontier()
        if up_to is None:
            up_to = self._durable_version
        records: list[GlobalRecord] = []
        while self._propagated_version < up_to:
            self._propagated_version += 1
            records.append(self.record_at(self._propagated_version))
        return records

    # -- log garbage collection (low-water-mark protocol) ---------------------

    def note_replica_version(self, replica: str, version: int) -> None:
        """Record a replica's applied watermark (global versions)."""
        if replica and version > self._replica_versions.get(replica, -1):
            self._replica_versions[replica] = version

    def forget_replica(self, replica: str) -> None:
        self._replica_versions.pop(replica, None)

    def replica_watermarks(self) -> dict[str, int]:
        """A copy of the known replica → applied-version watermarks (the
        low-water-mark inputs; snapshotted for state transfer)."""
        return dict(self._replica_versions)

    def low_water_mark(self) -> int | None:
        if not self._replica_versions:
            return None
        return min(self._replica_versions.values())

    def gc_target(self, *, headroom: int = 0) -> int | None:
        """The global version GC would prune to right now, or ``None``.

        Split out of :meth:`collect_garbage` so a fault-tolerant wrapper can
        replicate the decided target (as a durable GC marker on every shard
        group) *before* the volatile prune happens — a recovering coordinator
        then re-prunes to exactly the same horizon.
        """
        low_water = self.low_water_mark()
        if low_water is None:
            return None
        target = min(low_water - headroom, self._durable_version)
        return target if target > self._base_version else None

    def prune_to(self, global_target: int) -> int:
        """Prune the directory and every shard log to ``global_target``
        (clamped to the durability frontier).  Returns the number of
        directory records pruned."""
        target = min(global_target, self._durable_version)
        if target <= self._base_version:
            return 0
        for shard in self.shards:
            shard.prune_to_global(target)
        drop = target - self._base_version
        del self._records[:drop]
        self._base_version = target
        self._pruned_records_total += drop
        return drop

    def apply_gc(self, global_target: int) -> int:
        """Prune to an already-decided GC target, counting the run.

        The shared tail of :meth:`collect_garbage` and the replicated
        wrapper's marker-then-prune protocol (the target is replicated as a
        durable GC marker *before* this volatile prune happens).
        """
        drop = self.prune_to(global_target)
        if drop:
            self.gc_runs += 1
        return drop

    def collect_garbage(self, *, headroom: int = 0) -> int:
        """Prune the directory and every shard log below the low-water mark.

        The global horizon is clamped to the durability frontier (a crash
        must never lose records we might still replay); each shard log
        additionally clamps to its own durable prefix.  Returns the number
        of directory records pruned.
        """
        target = self.gc_target(headroom=headroom)
        if target is None:
            return 0
        return self.apply_gc(target)

    # -- directory reconstruction (coordinator recovery) ----------------------

    @classmethod
    def rebuild(
        cls,
        num_shards: int,
        rounds: Iterable[tuple[int, WriteSet, str, int]],
        *,
        pruned_to: int = 0,
        base_version: int = 0,
        partitioner: Partitioner | None = None,
        forced_abort_rate: float = 0.0,
        abort_chooser: Callable[[], float] | None = None,
        log_mode: str | None = None,
        record_hook: Callable[[int], None] | None = None,
    ) -> "ShardedCertifier":
        """Reconstruct a coordinator from recovered commit rounds.

        ``rounds`` is an ascending iterable of ``(commit_version, writeset,
        origin_replica, certified_back_to)`` tuples — in recovery, the merged
        view of the per-shard replicated logs' chosen prefixes.  The global
        sequencer, the version-ordered directory and every shard's
        local↔global maps are rebuilt by replaying each round through the
        idempotent admit path: the partitioner is stable, so every fragment
        lands on the shard that held it before the crash.  Commit versions
        are allocated only on commit, so the recovered sequence must be dense
        from ``base_version + 1`` — a gap means a lost round and raises
        :class:`~repro.errors.RecoveryError` rather than silently renumbering
        history.  ``base_version`` supports rebuilding from a *pruned*
        source (a live service's retained directory, see
        :meth:`~repro.middleware.sharded_certifier.ShardedCertifierService.
        export_rounds`): everything at or below it behaves as garbage
        collected.  ``pruned_to`` restores the GC low-water horizon (replayed
        GC markers); ``record_hook`` is invoked with each commit version
        before it is installed — the ``mid-directory-rebuild`` fault-injection
        point.  A hook that raises abandons the half-built coordinator; the
        caller simply rebuilds from scratch (the replay is idempotent).

        The per-record ``certified_back_to`` horizon is restored to the value
        carried by the replicated entry (the transaction's start version);
        extensions performed after replication are conservative performance
        hints and are simply re-earned after recovery.
        """
        certifier = cls(
            num_shards,
            partitioner=partitioner,
            forced_abort_rate=forced_abort_rate,
            abort_chooser=abort_chooser,
            log_mode=log_mode,
        )
        if base_version:
            certifier.system_version = VersionClock(base_version)
            certifier._base_version = base_version
            for shard in certifier.shards:
                shard._pruned_global = base_version
        expected = base_version
        for commit_version, writeset, origin_replica, certified_back_to in rounds:
            expected += 1
            if commit_version != expected:
                raise RecoveryError(
                    f"recovered commit versions are not dense: expected "
                    f"{expected}, got {commit_version}"
                )
            if record_hook is not None:
                record_hook(commit_version)
            fragments = certifier.partitioner.split(writeset)
            allocated = certifier.system_version.increment()
            assert allocated == commit_version
            shard_locals = tuple(
                (shard_id, certifier.shards[shard_id].admit_at(
                    fragments[shard_id], certified_back_to, commit_version,
                    origin_replica))
                for shard_id in sorted(fragments)
            )
            certifier._records.append(
                GlobalRecord(
                    commit_version=commit_version,
                    writeset=writeset,
                    origin_replica=origin_replica,
                    shard_locals=shard_locals,
                )
            )
            certifier.commits += 1
        # Every recovered round was quorum-replicated, which is what durable
        # means for a replicated certifier: the rebuilt logs are durable to
        # their tips and the propagation cursor starts at the frontier (a
        # re-subscribing replica is backfilled from the directory instead).
        for shard in certifier.shards:
            shard.log.mark_durable(shard.log.last_version)
        certifier._durable_version = certifier.last_version
        certifier._propagated_version = certifier._durable_version
        if pruned_to:
            certifier.prune_to(pruned_to)
        return certifier

    def _check_remote_window(self, request: CertificationRequest) -> int:
        """Validate the requester's remote-writeset window (see the single
        certifier's method of the same name for the protocol)."""
        pruned = self._base_version
        if (request.replica_version < pruned
                and self._replica_versions.get(request.origin_replica, -1) < pruned):
            raise LogPrunedError(request.replica_version, pruned)
        return pruned

    def _should_force_abort(self) -> bool:
        if self.forced_abort_rate <= 0.0 or self._abort_chooser is None:
            return False
        return self._abort_chooser() < self.forced_abort_rate

    # -- statistics ----------------------------------------------------------

    @property
    def abort_rate(self) -> float:
        updates = self.commits + self.aborts
        return self.aborts / updates if updates else 0.0

    def stats_snapshot(self) -> CertifierStats:
        """Cluster-wide certification counters, shard contributions merged."""
        return CertifierStats(
            requests=self.certification_requests,
            commits=self.commits,
            aborts=self.aborts,
            forced_aborts=self.forced_aborts,
            readonly_requests=self.readonly_requests,
            intersection_tests=sum(
                shard.certifier.intersection_tests for shard in self.shards
            ),
            snapshot_too_old_aborts=self.snapshot_too_old_aborts,
            gc_runs=self.gc_runs,
            system_version=self.system_version.version,
            log_length=self.last_version,
            log_retained_records=sum(
                shard.log.retained_count for shard in self.shards
            ),
            log_pruned_version=self._base_version,
            log_pruned_records_total=self._pruned_records_total,
        )

    def stats(self) -> dict[str, float]:
        return self.stats_snapshot().as_dict()

    def per_shard_stats(self) -> list[dict[str, float]]:
        """Per-shard certifier counters (fragment checks, local log shape)."""
        return [shard.certifier.stats() for shard in self.shards]

    def __repr__(self) -> str:
        return (
            f"ShardedCertifier(shards={self.num_shards}, "
            f"version={self.system_version.version}, "
            f"durable={self._durable_version}, pruned={self._base_version})"
        )


def split_iterable_by_shard(partitioner: Partitioner,
                            item_ids: Iterable[tuple[str, object]]) -> dict[int, list]:
    """Group item identities by owning shard (router / diagnostics helper)."""
    by_shard: dict[int, list] = {}
    for item_id in item_ids:
        by_shard.setdefault(partitioner.shard_of(item_id), []).append(item_id)
    return by_shard
