"""Configuration objects shared across the library.

The defaults encode the calibration constants reported in the paper's
evaluation section (Section 9): an ~8 ms fsync (uniform between 6 and 12 ms),
a switched 1 Gbps LAN, 10 closed-loop clients per replica for AllUpdates, the
average writeset sizes per benchmark, and so on.  See DESIGN.md Section 4.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class SystemKind(str, enum.Enum):
    """The four system variants evaluated in the paper.

    ``STANDALONE`` is the single non-replicated SI database used as the
    reference point; ``BASE`` separates ordering (middleware) from durability
    (database) and therefore commits serially; ``TASHKENT_MW`` moves
    durability into the certifier; ``TASHKENT_API`` passes the global commit
    order to the database; ``TASHKENT_API_NO_CERT`` is the paper's
    ``tashAPInoCERT`` ablation where the certifier skips its own disk write.
    """

    STANDALONE = "standalone"
    BASE = "base"
    TASHKENT_MW = "tashkent-mw"
    TASHKENT_API = "tashkent-api"
    TASHKENT_API_NO_CERT = "tashkent-api-nocert"

    @property
    def is_replicated(self) -> bool:
        return self is not SystemKind.STANDALONE

    @property
    def durability_in_database(self) -> bool:
        """Whether the database replica performs synchronous commit writes."""
        return self in (
            SystemKind.STANDALONE,
            SystemKind.BASE,
            SystemKind.TASHKENT_API,
            SystemKind.TASHKENT_API_NO_CERT,
        )

    @property
    def durability_in_certifier(self) -> bool:
        """Whether the certifier log write is on the commit critical path."""
        return self in (
            SystemKind.BASE,
            SystemKind.TASHKENT_MW,
            SystemKind.TASHKENT_API,
        )

    @property
    def supports_ordered_commit(self) -> bool:
        """Whether the database accepts ``COMMIT <version>`` from the proxy."""
        return self in (SystemKind.TASHKENT_API, SystemKind.TASHKENT_API_NO_CERT)


class WorkloadName(str, enum.Enum):
    """The three benchmarks used in the paper's evaluation."""

    ALL_UPDATES = "allupdates"
    TPC_B = "tpcb"
    TPC_W = "tpcw"


#: Average writeset sizes in bytes reported by the paper (Section 9.1).
WRITESET_SIZE_BYTES = {
    WorkloadName.ALL_UPDATES: 54,
    WorkloadName.TPC_B: 158,
    WorkloadName.TPC_W: 275,
}


@dataclass(frozen=True)
class DiskConfig:
    """Timing model of the durability IO channel.

    ``fsync_mean_ms`` and the min/max bounds follow the paper: "On our system
    fsync takes about 8ms, but the actual time varies depending on where the
    data resides on disk (6ms-12ms)".  ``dedicated_log_channel`` corresponds
    to the paper's ramdisk configuration in which the logging channel does
    not compete with database page reads and write-back.
    """

    fsync_mean_ms: float = 8.0
    fsync_min_ms: float = 6.0
    fsync_max_ms: float = 12.0
    dedicated_log_channel: bool = False
    #: Extra mean service time (ms) added per fsync on a *shared* channel to
    #: model interference from page reads and dirty-page write-back.  The
    #: workload scales this by its page-IO intensity.
    shared_channel_interference_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.fsync_min_ms <= 0 or self.fsync_max_ms < self.fsync_min_ms:
            raise ConfigurationError("fsync bounds must satisfy 0 < min <= max")
        if not (self.fsync_min_ms <= self.fsync_mean_ms <= self.fsync_max_ms):
            raise ConfigurationError("fsync mean must lie within [min, max]")
        if self.shared_channel_interference_ms < 0:
            raise ConfigurationError("interference must be non-negative")


@dataclass(frozen=True)
class NetworkConfig:
    """Timing model of the switched LAN connecting replicas and certifier."""

    one_way_latency_ms: float = 0.1
    per_kb_ms: float = 0.008
    jitter_ms: float = 0.02

    def __post_init__(self) -> None:
        if self.one_way_latency_ms < 0 or self.per_kb_ms < 0 or self.jitter_ms < 0:
            raise ConfigurationError("network latencies must be non-negative")

    def message_delay_ms(self, size_bytes: int) -> float:
        """Deterministic part of the delay for a message of ``size_bytes``."""
        return self.one_way_latency_ms + (size_bytes / 1024.0) * self.per_kb_ms


def validate_certifier_crash_schedule(
    schedule: tuple[tuple[int, float, float], ...], num_shards: int
) -> None:
    """Validate a ``certifier_crash_schedule`` against ``num_shards``.

    Shared by :class:`ReplicationConfig` and the cluster's
    ``ExperimentConfig`` so the two front doors cannot drift.  Windows on
    the same shard must not overlap (a strict overlap would double-count an
    outage and re-arm the shard's recovery event while transactions are
    parked on the old one); touching windows (``crash == recover``) are
    allowed and behave as one longer outage.
    """
    by_shard: dict[int, list[tuple[float, float]]] = {}
    for shard_id, crash_at_ms, recover_at_ms in schedule:
        if not 0 <= shard_id < num_shards:
            raise ConfigurationError(
                f"crash schedule names shard {shard_id}, but only "
                f"{num_shards} certifier shard(s) exist"
            )
        if not 0 <= crash_at_ms < recover_at_ms:
            raise ConfigurationError(
                "crash schedule windows need 0 <= crash_at_ms < recover_at_ms"
            )
        by_shard.setdefault(shard_id, []).append((crash_at_ms, recover_at_ms))
    for shard_id, windows in by_shard.items():
        windows.sort()
        for (_, first_recover), (second_crash, _) in zip(windows, windows[1:]):
            if second_crash < first_recover:
                raise ConfigurationError(
                    f"crash schedule windows for shard {shard_id} overlap; "
                    f"merge them into one window"
                )


@dataclass(frozen=True)
class ReplicationConfig:
    """Top-level configuration of a replicated system."""

    system: SystemKind = SystemKind.TASHKENT_MW
    num_replicas: int = 1
    num_certifiers: int = 3
    clients_per_replica: int = 10
    disk: DiskConfig = field(default_factory=DiskConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: Period after which an idle replica proactively pulls remote writesets
    #: from the certifier ("Bounding staleness", Section 6.2).
    staleness_bound_ms: float = 2000.0
    #: Forced system-wide abort rate applied by the certifier after the full
    #: certification check (Section 9.5).  0.0 disables forced aborts.
    forced_abort_rate: float = 0.0
    #: Enables local certification at the proxy (Section 6.2).
    local_certification: bool = True
    #: Enables eager pre-certification / deadlock avoidance (Section 8.2).
    eager_pre_certification: bool = True
    #: Routing policy name for the cluster scheduler (``None`` keeps the
    #: paper's static client pinning; see :mod:`repro.balancer`).
    routing_policy: str | None = None
    #: Per-replica admission limit enforced by the scheduler when routing is
    #: enabled (``None`` = unlimited: routing without admission control).
    multiprogramming_limit: int | None = None
    #: Bounded admission wait queue depth (requests beyond it are shed).
    admission_queue_depth: int = 64
    #: How long a routed transaction waits for a multiprogramming slot
    #: before giving up (recorded as an ``admission-timeout`` abort).
    admission_timeout_ms: float = 200.0
    #: Number of certification shards the item keyspace is partitioned
    #: across.  1 is the paper's single certifier; higher values give each
    #: shard its own log, fsync pipeline and propagation stream, with a
    #: deterministic cross-shard merge for multi-shard writesets (see
    #: ``docs/certifier.md``).
    certifier_shards: int = 1
    #: Bound on the log records one certifier fsync may cover (``None`` =
    #: unbounded, the seed behaviour).  Models the bounded log buffer of a
    #: real deployment: with a cap, a single log device saturates at
    #: ``cap / fsync_time`` certifications per second — the regime in which
    #: sharding's per-shard disks pay off.
    certifier_max_flush_batch: int | None = None
    #: Deterministic shard-leader outages injected into the simulated
    #: certifier: each entry is ``(shard_id, crash_at_ms, recover_at_ms)``.
    #: During the window that shard accepts no certifications and flushes no
    #: log records (its group is electing and state-transferring a new
    #: leader); transactions touching it stall and drain on recovery.  An
    #: empty tuple (the default) disables fault injection.  Any non-empty
    #: schedule is served by the sharded certifier node even at
    #: ``certifier_shards=1``.
    certifier_crash_schedule: tuple[tuple[int, float, float], ...] = ()
    #: Versions of headroom the certifier keeps below the replicas'
    #: low-water mark when garbage collecting (``None`` = the sim node's
    #: default).  Smaller headroom means tighter logs and snapshots closer
    #: to the frontier — at the cost of more frequent backfills for laggards;
    #: the knob makes snapshot cadence vs. retained-suffix length sweepable.
    certifier_gc_headroom: int | None = None
    #: Cadence of the background maintenance janitor (milliseconds between
    #: runs).  Each run vacuums replica version chains down to the
    #: certifier's replica low-water mark and drives certifier GC/compaction.
    #: ``None`` (the default) disables the janitor — the seed behaviour,
    #: where vacuum only happens when called explicitly.
    vacuum_interval_ms: float | None = None
    #: Row-visit budget of one incremental vacuum pass (the janitor's
    #: batching knob; bounds the pause a maintenance pass can inflict).
    vacuum_batch_rows: int = 4096
    #: Live (multi-process) backend: multiplexed request-id framing, with
    #: pipelined clients, concurrent per-connection dispatch and scheduler-
    #: side group certification.  ``False`` restores the strict one-in-flight
    #: read→reply→read protocol (the unbatched baseline the live sweep
    #: measures against).
    live_pipeline: bool = True
    #: How long the live scheduler's certify batcher waits for more
    #: concurrent requests before cutting a round (milliseconds).  0 (the
    #: default) is *natural* group commit: a round is cut from whatever is
    #: pending the moment the service thread frees up, so requests
    #: accumulate exactly while the previous round's WAL append + fsync is
    #: in flight — batching without added latency.
    live_certify_batch_window_ms: float = 0.0
    #: Upper bound on one live certification round (and thus on the records
    #: sharing one WAL fsync).
    live_certify_batch_max: int = 64
    #: Worker threads per live replica node; bounds how many client sessions
    #: one replica processes concurrently (commits overlap only during the
    #: certification round trip; local work is serialized per replica).
    live_replica_workers: int = 8
    #: Wall-clock floor (milliseconds) on one live WAL shard batch fsync.
    #: Container filesystems acknowledge ``os.fsync`` in ~0.1 ms, which makes
    #: durability free and hides the group-commit effect the paper measures
    #: on real disks ("fsync takes about 8ms ... 6ms-12ms").  A non-zero
    #: floor holds the shard's append for at least this long, putting the
    #: live backend in the same fsync-bound regime as the simulated stack's
    #: :class:`DiskConfig`/``ThrottledLogDevice``.  0 (default) = raw fsync.
    live_wal_fsync_floor_ms: float = 0.0
    #: Replicated live scheduler: boot a standby scheduler process next to
    #: the primary and write full certification-round entries (not opaque
    #: size markers) to the shard WALs, so a ``kill -9`` of the primary is
    #: survivable — the standby seeds from the primary's state-transfer
    #: package, completes in-flight rounds from the surviving shard WALs on
    #: promotion, and clients re-dial it.  ``False`` (default) keeps the
    #: single-scheduler deployment shape and the compact WAL payload.
    live_scheduler_standby: bool = False
    rng_seed: int = 20060418  # EuroSys 2006 conference date.

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if self.num_certifiers < 1:
            raise ConfigurationError("num_certifiers must be >= 1")
        if self.clients_per_replica < 1:
            raise ConfigurationError("clients_per_replica must be >= 1")
        if not 0.0 <= self.forced_abort_rate < 1.0:
            raise ConfigurationError("forced_abort_rate must be in [0, 1)")
        if self.staleness_bound_ms <= 0:
            raise ConfigurationError("staleness_bound_ms must be positive")
        if self.multiprogramming_limit is not None and self.multiprogramming_limit < 1:
            raise ConfigurationError("multiprogramming_limit must be >= 1")
        if self.admission_queue_depth < 0:
            raise ConfigurationError("admission_queue_depth must be >= 0")
        if self.admission_timeout_ms <= 0:
            raise ConfigurationError("admission_timeout_ms must be positive")
        if self.routing_policy is not None and self.system is SystemKind.STANDALONE:
            raise ConfigurationError("a standalone system has nothing to route")
        if self.certifier_shards < 1:
            raise ConfigurationError("certifier_shards must be >= 1")
        if self.certifier_max_flush_batch is not None and self.certifier_max_flush_batch < 1:
            raise ConfigurationError("certifier_max_flush_batch must be >= 1 or None")
        if self.certifier_gc_headroom is not None and self.certifier_gc_headroom < 0:
            raise ConfigurationError("certifier_gc_headroom must be >= 0 or None")
        if self.vacuum_interval_ms is not None and self.vacuum_interval_ms <= 0:
            raise ConfigurationError("vacuum_interval_ms must be positive or None")
        if self.vacuum_batch_rows < 1:
            raise ConfigurationError("vacuum_batch_rows must be >= 1")
        if self.live_certify_batch_window_ms < 0:
            raise ConfigurationError("live_certify_batch_window_ms must be >= 0")
        if self.live_certify_batch_max < 1:
            raise ConfigurationError("live_certify_batch_max must be >= 1")
        if self.live_replica_workers < 1:
            raise ConfigurationError("live_replica_workers must be >= 1")
        if self.live_wal_fsync_floor_ms < 0:
            raise ConfigurationError("live_wal_fsync_floor_ms must be >= 0")
        validate_certifier_crash_schedule(self.certifier_crash_schedule,
                                          self.certifier_shards)

    @property
    def certifier_majority(self) -> int:
        """Size of a majority quorum of certifier nodes."""
        return self.num_certifiers // 2 + 1

    def with_system(self, system: SystemKind) -> "ReplicationConfig":
        """Return a copy of this configuration targeting ``system``."""
        return dataclasses.replace(self, system=system)

    def with_replicas(self, num_replicas: int) -> "ReplicationConfig":
        """Return a copy of this configuration with ``num_replicas`` replicas."""
        return dataclasses.replace(self, num_replicas=num_replicas)
