"""Log devices: where the write-ahead log puts its bytes.

The engine's WAL and the certifier's persistent log both write through a
:class:`LogDevice`.  Three implementations are provided:

* :class:`CountingLogDevice` — an in-memory device that retains the records
  and counts fsyncs.  It is the default for the functional path and for
  tests; the fsync count is exactly the statistic the paper's analysis is
  about (commits per synchronous write).
* :class:`ThrottledLogDevice` — a counting device whose ``sync`` also costs
  a configurable minimum service time, used by wall-clock benchmarks that
  need the realistic fsync-bound regime without a filesystem.
* :class:`FileLogDevice` — an append-only file on the real filesystem with a
  real ``os.fsync``.  It exists so the durability path can be exercised end
  to end (and so the library could be pointed at a real disk), but the
  evaluation harness never relies on wall-clock fsync latency.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, Protocol


class LogDevice(Protocol):
    """Minimal interface the WAL and certifier log writer need."""

    def append(self, payload: bytes) -> None:
        """Buffer ``payload`` for the next sync (no durability yet)."""

    def sync(self) -> None:
        """Make everything appended so far durable (one synchronous write)."""

    @property
    def sync_count(self) -> int:
        """Number of synchronous writes performed so far."""

    @property
    def bytes_written(self) -> int:
        """Total bytes appended so far."""


class CountingLogDevice:
    """In-memory log device that records appended payloads and counts syncs."""

    def __init__(self) -> None:
        self._durable: list[bytes] = []
        self._pending: list[bytes] = []
        self._sync_count = 0
        self._bytes_written = 0

    def append(self, payload: bytes) -> None:
        self._pending.append(payload)
        self._bytes_written += len(payload)

    def sync(self) -> None:
        self._durable.extend(self._pending)
        self._pending.clear()
        self._sync_count += 1

    @property
    def sync_count(self) -> int:
        return self._sync_count

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    # -- extras used by recovery tests ---------------------------------------

    @property
    def durable_payloads(self) -> list[bytes]:
        """Payloads that survived the last sync (what a crash preserves)."""
        return list(self._durable)

    @property
    def pending_payloads(self) -> list[bytes]:
        """Payloads appended but not yet synced (lost on crash)."""
        return list(self._pending)

    def simulate_crash(self) -> int:
        """Drop non-durable payloads; returns how many were lost."""
        lost = len(self._pending)
        self._pending.clear()
        return lost

    def iter_durable_json(self) -> Iterable[dict]:
        """Decode durable payloads as JSON objects (the WAL's wire format)."""
        for payload in self._durable:
            yield json.loads(payload.decode("utf-8"))


class ThrottledLogDevice(CountingLogDevice):
    """An in-memory log device whose ``sync`` takes a minimum service time.

    Real synchronous writes have a hard latency floor — the paper measures
    ~8 ms on its disks; a battery-backed or NVMe write cache still costs a
    few hundred microseconds.  :class:`CountingLogDevice` makes fsyncs free,
    which lets wall-clock benchmarks of commit paths understate the value of
    batching by orders of magnitude.  This device holds the caller for a
    configurable service time per sync, so a benchmark sees the realistic
    fsync-bound regime while staying filesystem-free and deterministic in
    its accounting.
    """

    def __init__(self, sync_latency_ms: float = 0.2) -> None:
        super().__init__()
        if sync_latency_ms < 0:
            raise ValueError("sync_latency_ms must be non-negative")
        self.sync_latency_ms = sync_latency_ms

    def sync(self) -> None:
        if self.sync_latency_ms > 0:
            time.sleep(self.sync_latency_ms / 1000.0)
        super().sync()


class FileLogDevice:
    """Append-only file-backed log device using a real fsync."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(path, "ab")
        self._sync_count = 0
        self._bytes_written = 0

    def append(self, payload: bytes) -> None:
        self._file.write(payload)
        self._file.write(b"\n")
        self._bytes_written += len(payload) + 1

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._sync_count += 1

    @property
    def sync_count(self) -> int:
        return self._sync_count

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def close(self) -> None:
        self._file.close()

    def read_lines(self) -> list[bytes]:
        """Read back all appended payloads (recovery)."""
        self._file.flush()
        with open(self.path, "rb") as handle:
            return [line.rstrip(b"\n") for line in handle if line.strip()]

    def __enter__(self) -> "FileLogDevice":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
