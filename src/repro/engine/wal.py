"""Write-ahead log with group commit and a synchronous-commit switch.

The WAL records, per committed transaction, the redo information (the
writeset) and a commit record carrying the commit version.  Two properties of
the paper's analysis are modelled explicitly:

* **synchronous vs asynchronous commit** — with synchronous commit enabled
  every commit waits for its record to be durable; disabling it (the paper's
  "disable WAL synchronous writes", used by Tashkent-MW replicas) makes the
  commit an in-memory action and the records are only synced lazily.
* **group commit** — all records pending when the log writer runs are made
  durable by a *single* synchronous write.  The ``sync_count`` of the
  underlying :class:`~repro.engine.log_device.LogDevice` is therefore the
  number of fsyncs, and ``records_per_sync`` is the statistic the paper
  quotes (e.g. 29 writesets per fsync for the Tashkent-MW certifier).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.group_commit import GroupCommitBatcher
from repro.core.writeset import WriteItem, WriteOp, WriteSet
from repro.engine.log_device import CountingLogDevice, LogDevice
from repro.errors import RecoveryError


@dataclass(frozen=True)
class WalRecord:
    """One committed transaction's redo record."""

    commit_version: int
    txn_id: int
    writeset: WriteSet
    #: Checkpoint records carry no writeset and mark a recovery starting point.
    is_checkpoint: bool = False

    def to_payload(self) -> bytes:
        """Serialise for the log device (JSON keeps recovery debuggable)."""
        body = {
            "commit_version": self.commit_version,
            "txn_id": self.txn_id,
            "checkpoint": self.is_checkpoint,
            "items": [
                {
                    "table": item.table,
                    "key": item.key,
                    "op": item.op.value,
                    "values": dict(item.values),
                }
                for item in self.writeset
            ],
        }
        return json.dumps(body, sort_keys=True, default=str).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        try:
            body = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RecoveryError(f"corrupt WAL payload: {exc}") from exc
        writeset = WriteSet(
            WriteItem(
                table=item["table"],
                key=item["key"],
                op=WriteOp(item["op"]),
                values=item.get("values", {}),
            )
            for item in body.get("items", [])
        )
        return cls(
            commit_version=body["commit_version"],
            txn_id=body["txn_id"],
            writeset=writeset,
            is_checkpoint=body.get("checkpoint", False),
        )


@dataclass
class WalStats:
    """Counters the evaluation harness reads off the WAL."""

    records_appended: int = 0
    synchronous_commits: int = 0
    asynchronous_commits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "records_appended": self.records_appended,
            "synchronous_commits": self.synchronous_commits,
            "asynchronous_commits": self.asynchronous_commits,
        }


class WriteAheadLog:
    """The engine's write-ahead log."""

    def __init__(self, device: LogDevice | None = None, *, synchronous_commit: bool = True) -> None:
        self.device: LogDevice = device if device is not None else CountingLogDevice()
        self.synchronous_commit = synchronous_commit
        self._batcher: GroupCommitBatcher[WalRecord] = GroupCommitBatcher()
        self._records: list[WalRecord] = []
        self._durable_count = 0
        self.stats = WalStats()

    # -- configuration -----------------------------------------------------------

    def set_synchronous_commit(self, enabled: bool) -> None:
        """The paper's enable/disable switch for WAL synchronous writes."""
        self.synchronous_commit = enabled

    # -- appending ----------------------------------------------------------------

    def append(self, record: WalRecord, *, force_sync: bool | None = None) -> bool:
        """Append a commit record.

        Returns True when the record is durable on return.  With synchronous
        commit enabled (or ``force_sync=True``) the pending batch — this
        record plus anything enqueued earlier — is flushed with one
        synchronous write; otherwise the record merely joins the batch.
        """
        self._records.append(record)
        self._batcher.enqueue(record)
        self.stats.records_appended += 1
        must_sync = self.synchronous_commit if force_sync is None else force_sync
        if must_sync:
            self.flush()
            self.stats.synchronous_commits += 1
            return True
        self.stats.asynchronous_commits += 1
        return False

    def append_many(self, records: Iterable[WalRecord], *, force_sync: bool | None = None) -> bool:
        """Append several records as one group (ordered-commit path)."""
        records = list(records)
        for record in records:
            self._records.append(record)
            self._batcher.enqueue(record)
            self.stats.records_appended += 1
        must_sync = self.synchronous_commit if force_sync is None else force_sync
        if must_sync and records:
            self.flush()
            self.stats.synchronous_commits += len(records)
            return True
        self.stats.asynchronous_commits += len(records)
        return False

    def flush(self) -> list[WalRecord]:
        """Make every pending record durable with a single synchronous write."""
        if not self._batcher.has_pending:
            return []
        batch = self._batcher.take_batch()
        for record in batch:
            self.device.append(record.to_payload())
        self.device.sync()
        self._batcher.complete_batch()
        self._durable_count += len(batch)
        return batch

    # -- interrogation ---------------------------------------------------------------

    @property
    def sync_count(self) -> int:
        """Number of synchronous writes issued so far."""
        return self.device.sync_count

    @property
    def records_per_sync(self) -> float:
        """Average number of commit records per synchronous write."""
        return self._batcher.stats.average_batch_size

    @property
    def durable_records(self) -> list[WalRecord]:
        """Records guaranteed to survive a crash."""
        return self._records[: self._durable_count]

    @property
    def all_records(self) -> list[WalRecord]:
        return list(self._records)

    @property
    def pending_count(self) -> int:
        return self._batcher.pending_count

    def last_durable_version(self) -> int:
        """Highest commit version among durable records (0 when none)."""
        durable = self.durable_records
        return max((r.commit_version for r in durable), default=0)

    # -- crash / recovery ---------------------------------------------------------------

    def simulate_crash(self) -> int:
        """Discard records that never reached the device; returns count lost."""
        lost = len(self._records) - self._durable_count
        del self._records[self._durable_count:]
        # Reset the batcher: anything pending is gone.
        self._batcher = GroupCommitBatcher()
        return lost

    def checkpoint(self, commit_version: int) -> None:
        """Write a checkpoint marker (always synchronous)."""
        record = WalRecord(
            commit_version=commit_version,
            txn_id=-1,
            writeset=WriteSet(),
            is_checkpoint=True,
        )
        self.append(record, force_sync=True)

    def records_for_recovery(self, after_version: int = 0) -> list[WalRecord]:
        """Durable, non-checkpoint records with commit version > ``after_version``."""
        return [
            record
            for record in self.durable_records
            if not record.is_checkpoint and record.commit_version > after_version
        ]

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(records={len(self._records)}, durable={self._durable_count}, "
            f"syncs={self.sync_count}, sync_commit={self.synchronous_commit})"
        )
