"""Database checkpoints (the paper's "DUMP DATA" copies).

Tashkent-MW disables the replica's synchronous WAL writes, which on
PostgreSQL voids physical data integrity as well as durability.  The
middleware therefore periodically asks the database for a complete copy and
records the database version at the point of the request (paper, Sections
7.1 and 8.1).  A :class:`Checkpoint` is that copy: the schemas plus a
materialised snapshot of every replicated table at a known version, together
with an end marker and checksum so a partially written dump can be detected
and the previous one used instead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.engine.table import Table, TableSchema
from repro.errors import RecoveryError


@dataclass(frozen=True)
class Checkpoint:
    """A complete, self-validating copy of the database at one version."""

    database_name: str
    version: int
    schemas: tuple[TableSchema, ...]
    #: table name -> {primary key -> row values}
    table_states: Mapping[str, Mapping[object, Mapping[str, object]]]
    checksum: str = ""
    complete: bool = True

    @staticmethod
    def _compute_checksum(database_name: str, version: int,
                          table_states: Mapping[str, Mapping[object, Mapping[str, object]]]) -> str:
        canonical = json.dumps(
            {
                "database": database_name,
                "version": version,
                "tables": {
                    table: {repr(key): dict(values) for key, values in rows.items()}
                    for table, rows in sorted(table_states.items())
                },
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def capture(cls, database_name: str, version: int, tables: Mapping[str, Table]) -> "Checkpoint":
        """Capture a checkpoint of ``tables`` at ``version``."""
        schemas = tuple(table.schema for table in tables.values())
        states = {
            name: table.snapshot_state(version) for name, table in tables.items()
        }
        checksum = cls._compute_checksum(database_name, version, states)
        return cls(
            database_name=database_name,
            version=version,
            schemas=schemas,
            table_states=states,
            checksum=checksum,
        )

    def validate(self) -> None:
        """Raise :class:`RecoveryError` when the dump is truncated or corrupt."""
        if not self.complete:
            raise RecoveryError(
                f"checkpoint of {self.database_name!r} at version {self.version} is incomplete"
            )
        expected = self._compute_checksum(self.database_name, self.version, self.table_states)
        if expected != self.checksum:
            raise RecoveryError(
                f"checkpoint of {self.database_name!r} at version {self.version} failed its checksum"
            )

    def corrupted_copy(self) -> "Checkpoint":
        """A deliberately broken copy (crash-during-dump injection in tests)."""
        return Checkpoint(
            database_name=self.database_name,
            version=self.version,
            schemas=self.schemas,
            table_states=self.table_states,
            checksum=self.checksum,
            complete=False,
        )

    def row_count(self) -> int:
        return sum(len(rows) for rows in self.table_states.values())

    def size_bytes(self) -> int:
        """Approximate size of the dump (drives the recovery-time model)."""
        total = 0
        for rows in self.table_states.values():
            for values in rows.values():
                total += 16 + sum(len(str(v)) + len(str(c)) for c, v in values.items())
        return total


@dataclass
class CheckpointStore:
    """Keeps the last two checkpoints, as Tashkent-MW requires.

    "The Tashkent-MW middleware maintains two complete copies of the
    database.  If the database crashes, the middleware restarts the database
    with the last copy, or the second to last copy (in the case where the
    database crashed while dumping the last copy)."  (paper, Section 7.1)
    """

    checkpoints: list[Checkpoint] = field(default_factory=list)
    max_copies: int = 2

    def add(self, checkpoint: Checkpoint) -> None:
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.max_copies:
            del self.checkpoints[: len(self.checkpoints) - self.max_copies]

    def latest_valid(self) -> Checkpoint:
        """Most recent checkpoint that passes validation."""
        for checkpoint in reversed(self.checkpoints):
            try:
                checkpoint.validate()
            except RecoveryError:
                continue
            return checkpoint
        raise RecoveryError("no valid checkpoint available for recovery")

    def __len__(self) -> int:
        return len(self.checkpoints)
