"""Tables: schema, primary keys and versioned rows.

A :class:`Table` owns the :class:`~repro.engine.rows.VersionedRow` chains for
its primary keys and validates column names on writes.  It exposes
snapshot-versioned reads and commit-versioned installs; transactional
buffering, locking and writeset extraction live above it in
:mod:`repro.engine.database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.engine.rows import RowVersion, VersionedRow
from repro.errors import DuplicateKeyError, StorageError


@dataclass(frozen=True)
class TableSchema:
    """Schema of a replicated table."""

    name: str
    columns: tuple[str, ...]
    primary_key: str = "id"

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("table name must not be empty")
        if not self.columns:
            raise StorageError("a table needs at least one column")
        if self.primary_key not in self.columns:
            raise StorageError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        if len(set(self.columns)) != len(self.columns):
            raise StorageError(f"duplicate column names in table {self.name!r}")

    def validate_values(self, values: Mapping[str, object], *, partial: bool) -> None:
        """Check that ``values`` only references known columns.

        ``partial=False`` additionally requires every column to be present
        (inserts); updates may touch any subset of non-key columns.
        """
        unknown = set(values) - set(self.columns)
        if unknown:
            raise StorageError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        if not partial:
            missing = set(self.columns) - set(values)
            if missing:
                raise StorageError(
                    f"missing column(s) {sorted(missing)} for table {self.name!r}"
                )


class Table:
    """A versioned table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[object, VersionedRow] = {}

    @property
    def name(self) -> str:
        return self.schema.name

    # -- committed-state mutation (called by the database at commit) ---------

    def install_insert(self, key: object, values: Mapping[str, object],
                       commit_version: int) -> None:
        """Install a committed insert."""
        self.schema.validate_values(values, partial=False)
        row = self._rows.get(key)
        if row is not None and row.latest() is not None and row.latest().deleted_version is None:
            raise DuplicateKeyError(
                f"duplicate key {key!r} in table {self.name!r}"
            )
        if row is None:
            row = VersionedRow(key)
            self._rows[key] = row
        row.install(RowVersion(created_version=commit_version, values=dict(values)))

    def install_update(self, key: object, values: Mapping[str, object],
                       commit_version: int) -> None:
        """Install a committed update (merging with the previous version)."""
        self.schema.validate_values(values, partial=True)
        row = self._rows.get(key)
        latest = row.latest() if row is not None else None
        if row is None or latest is None or latest.deleted_version is not None:
            # Replicated writesets may update a row the replica has never
            # seen inserted (e.g. after recovery from an older dump): treat
            # the update as an upsert so replay is idempotent.
            base: dict[str, object] = {self.schema.primary_key: key}
            base.update(values)
            if row is None:
                row = VersionedRow(key)
                self._rows[key] = row
            row.install(RowVersion(created_version=commit_version, values=base))
            return
        merged = dict(latest.values)
        merged.update(values)
        row.install(RowVersion(created_version=commit_version, values=merged))

    def install_delete(self, key: object, commit_version: int) -> None:
        """Install a committed delete."""
        row = self._rows.get(key)
        if row is None or row.latest() is None:
            # Idempotent for writeset replay.
            return
        if row.latest().deleted_version is not None:
            return
        row.delete(commit_version)

    # -- snapshot reads -------------------------------------------------------

    def read(self, key: object, snapshot_version: int) -> Mapping[str, object] | None:
        """Read the row visible to ``snapshot_version`` (``None`` if absent)."""
        row = self._rows.get(key)
        if row is None:
            return None
        version = row.version_for_snapshot(snapshot_version)
        return None if version is None else dict(version.values)

    def exists(self, key: object, snapshot_version: int) -> bool:
        row = self._rows.get(key)
        return row is not None and row.exists_at(snapshot_version)

    def last_modified_version(self, key: object) -> int:
        """Commit version that last touched ``key`` (0 if never)."""
        row = self._rows.get(key)
        return 0 if row is None else row.last_modified_version

    def scan(self, snapshot_version: int) -> Iterator[tuple[object, Mapping[str, object]]]:
        """Iterate all rows visible to ``snapshot_version`` (key order)."""
        for key in sorted(self._rows, key=repr):
            values = self.read(key, snapshot_version)
            if values is not None:
                yield key, values

    def count(self, snapshot_version: int) -> int:
        return sum(1 for _ in self.scan(snapshot_version))

    def keys(self) -> Iterable[object]:
        """All keys ever seen (including deleted ones)."""
        return self._rows.keys()

    # -- maintenance ----------------------------------------------------------

    def vacuum(self, oldest_active_snapshot: int) -> int:
        """Garbage-collect row versions no active snapshot can see."""
        return sum(row.vacuum(oldest_active_snapshot) for row in self._rows.values())

    def snapshot_state(self, snapshot_version: int) -> dict[object, dict[str, object]]:
        """Materialise the table contents at ``snapshot_version`` (for dumps)."""
        return {key: dict(values) for key, values in self.scan(snapshot_version)}

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, rows={len(self._rows)})"
