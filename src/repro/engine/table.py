"""Tables: schema, primary keys and versioned rows.

A :class:`Table` owns the :class:`~repro.engine.rows.VersionedRow` chains for
its primary keys and validates column names on writes.  It exposes
snapshot-versioned reads and commit-versioned installs; transactional
buffering, locking and writeset extraction live above it in
:mod:`repro.engine.database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.stats import MvccStats
from repro.engine.rows import RowVersion, VersionedRow
from repro.errors import DuplicateKeyError, StorageError


@dataclass(frozen=True)
class TableSchema:
    """Schema of a replicated table."""

    name: str
    columns: tuple[str, ...]
    primary_key: str = "id"

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("table name must not be empty")
        if not self.columns:
            raise StorageError("a table needs at least one column")
        if self.primary_key not in self.columns:
            raise StorageError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        if len(set(self.columns)) != len(self.columns):
            raise StorageError(f"duplicate column names in table {self.name!r}")

    def validate_values(self, values: Mapping[str, object], *, partial: bool) -> None:
        """Check that ``values`` only references known columns.

        ``partial=False`` additionally requires every column to be present
        (inserts); updates may touch any subset of non-key columns.
        """
        unknown = set(values) - set(self.columns)
        if unknown:
            raise StorageError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        if not partial:
            missing = set(self.columns) - set(values)
            if missing:
                raise StorageError(
                    f"missing column(s) {sorted(missing)} for table {self.name!r}"
                )


class Table:
    """A versioned table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[object, VersionedRow] = {}
        # Dead-version candidate index: the keys whose chains could yield
        # something to a future vacuum (superseded history or a deleted
        # head).  A dict doubles as an insertion-ordered set, keeping
        # incremental vacuum deterministic under a row-visit budget.
        self._dead_candidates: dict[object, None] = {}
        self.versions_installed = 0
        self.versions_reclaimed = 0
        self.rows_dropped = 0
        self.vacuum_runs = 0
        self.vacuum_rows_visited = 0

    @property
    def name(self) -> str:
        return self.schema.name

    # -- committed-state mutation (called by the database at commit) ---------

    def install_insert(self, key: object, values: Mapping[str, object],
                       commit_version: int) -> None:
        """Install a committed insert."""
        self.schema.validate_values(values, partial=False)
        row = self._rows.get(key)
        if row is not None and row.latest() is not None and row.latest().deleted_version is None:
            raise DuplicateKeyError(
                f"duplicate key {key!r} in table {self.name!r}"
            )
        if row is None:
            row = VersionedRow(key)
            self._rows[key] = row
        # Committed values are immutable from here on: install by reference
        # (no dict copy on the hot remote-apply path); reads copy on exit.
        row.install(RowVersion(created_version=commit_version, values=values))
        self._note_installed(key, row)

    def install_update(self, key: object, values: Mapping[str, object],
                       commit_version: int) -> None:
        """Install a committed update (merging with the previous version)."""
        self.schema.validate_values(values, partial=True)
        row = self._rows.get(key)
        latest = row.latest() if row is not None else None
        if row is None or latest is None or latest.deleted_version is not None:
            # Replicated writesets may update a row the replica has never
            # seen inserted (e.g. after recovery from an older dump): treat
            # the update as an upsert so replay is idempotent.
            base: dict[str, object] = {self.schema.primary_key: key}
            base.update(values)
            if row is None:
                row = VersionedRow(key)
                self._rows[key] = row
            row.install(RowVersion(created_version=commit_version, values=base))
            self._note_installed(key, row)
            return
        merged = dict(latest.values)
        merged.update(values)
        row.install(RowVersion(created_version=commit_version, values=merged))
        self._note_installed(key, row)

    def install_delete(self, key: object, commit_version: int) -> None:
        """Install a committed delete."""
        row = self._rows.get(key)
        if row is None or row.latest() is None:
            # Idempotent for writeset replay.
            return
        if row.latest().deleted_version is not None:
            return
        row.delete(commit_version)
        self._dead_candidates[key] = None

    def _note_installed(self, key: object, row: VersionedRow) -> None:
        self.versions_installed += 1
        if row.has_reclaimable_potential:
            self._dead_candidates[key] = None

    # -- snapshot reads -------------------------------------------------------

    def read(self, key: object, snapshot_version: int) -> Mapping[str, object] | None:
        """Read the row visible to ``snapshot_version`` (``None`` if absent)."""
        row = self._rows.get(key)
        if row is None:
            return None
        version = row.version_for_snapshot(snapshot_version)
        return None if version is None else dict(version.values)

    def exists(self, key: object, snapshot_version: int) -> bool:
        row = self._rows.get(key)
        return row is not None and row.exists_at(snapshot_version)

    def last_modified_version(self, key: object) -> int:
        """Commit version that last touched ``key`` (0 if never)."""
        row = self._rows.get(key)
        return 0 if row is None else row.last_modified_version

    def scan(self, snapshot_version: int) -> Iterator[tuple[object, Mapping[str, object]]]:
        """Iterate all rows visible to ``snapshot_version`` (key order)."""
        for key in sorted(self._rows, key=repr):
            values = self.read(key, snapshot_version)
            if values is not None:
                yield key, values

    def count(self, snapshot_version: int) -> int:
        return sum(1 for _ in self.scan(snapshot_version))

    def keys(self) -> Iterable[object]:
        """All keys ever seen (including deleted ones)."""
        return self._rows.keys()

    # -- maintenance ----------------------------------------------------------

    def vacuum(self, oldest_active_snapshot: int, *,
               max_rows: int | None = None) -> int:
        """Garbage-collect row versions no active snapshot can see.

        Incremental: only rows in the dead-version candidate index are
        visited (never the whole table), and at most ``max_rows`` of them
        per call.  Rows still holding reclaimable history above the horizon
        stay in the index for the next pass; rows whose entire chain died
        are dropped from the key map so churned keys do not accumulate.
        Returns the number of versions reclaimed.
        """
        removed = 0
        visited = 0
        retained: list[object] = []
        candidates = self._dead_candidates
        while candidates and (max_rows is None or visited < max_rows):
            key, _ = candidates.popitem()
            row = self._rows.get(key)
            if row is None:
                continue
            visited += 1
            removed += row.vacuum(oldest_active_snapshot)
            if row.version_count() == 0:
                del self._rows[key]
                self.rows_dropped += 1
            elif row.has_reclaimable_potential:
                retained.append(key)
        for key in retained:
            candidates[key] = None
        self.vacuum_runs += 1
        self.vacuum_rows_visited += visited
        self.versions_reclaimed += removed
        return removed

    def dead_candidate_count(self) -> int:
        """Rows the next vacuum pass would consider (candidate-index size)."""
        return len(self._dead_candidates)

    def mvcc_stats(self, *, include_chains: bool = True) -> MvccStats:
        """Typed MVCC snapshot for this table.

        ``include_chains=False`` skips the O(rows) chain-length histogram
        and reports counters and gauges only.
        """
        stats = MvccStats(
            versions_installed=self.versions_installed,
            versions_reclaimed=self.versions_reclaimed,
            rows_dropped=self.rows_dropped,
            vacuum_runs=self.vacuum_runs,
            vacuum_rows_visited=self.vacuum_rows_visited,
            live_rows=len(self._rows),
            dead_candidates=len(self._dead_candidates),
        )
        if include_chains:
            for row in self._rows.values():
                length = row.version_count()
                stats.max_chain_length = max(stats.max_chain_length, length)
                stats.chain_histogram[length] = (
                    stats.chain_histogram.get(length, 0) + 1)
        return stats

    def snapshot_state(self, snapshot_version: int) -> dict[object, dict[str, object]]:
        """Materialise the table contents at ``snapshot_version`` (for dumps)."""
        return {key: dict(values) for key, values in self.scan(snapshot_version)}

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, rows={len(self._rows)})"
