"""A from-scratch snapshot-isolation MVCC storage engine.

This package plays the role PostgreSQL plays in the paper: a standalone
multi-version database offering snapshot isolation, write locks with
first-updater-wins conflict handling, a write-ahead log with group commit, a
switch to enable or disable synchronous commit writes, writeset-extraction
hooks (the equivalent of the paper's triggers), an ordered-commit API
(``COMMIT <version>``, the paper's 20-line PostgreSQL patch), checkpoint
dumps and crash recovery.  See ``docs/architecture.md`` for the layer map
and the group-apply batch path the transport layer drives.
"""

from repro.engine.database import Database, IsolationError
from repro.engine.locks import LockBlockedError, LockManager, LockStatus
from repro.engine.log_device import CountingLogDevice, FileLogDevice, LogDevice
from repro.engine.rows import RowVersion, VersionedRow
from repro.engine.table import Table, TableSchema
from repro.engine.transaction import EngineTransaction, TransactionStatus
from repro.engine.wal import WalRecord, WriteAheadLog
from repro.engine.checkpoint import Checkpoint

__all__ = [
    "Checkpoint",
    "CountingLogDevice",
    "Database",
    "EngineTransaction",
    "FileLogDevice",
    "IsolationError",
    "LockBlockedError",
    "LockManager",
    "LockStatus",
    "LogDevice",
    "RowVersion",
    "Table",
    "TableSchema",
    "TransactionStatus",
    "VersionedRow",
    "WalRecord",
    "WriteAheadLog",
]
