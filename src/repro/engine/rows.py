"""Multi-version row storage.

Every row is a chain of :class:`RowVersion` objects.  A version is visible to
a transaction whose snapshot version is ``s`` when it was created at or
before ``s`` and either never deleted or deleted strictly after ``s``.  This
is the standard SI visibility rule and is what lets read-only transactions
run against an immutable snapshot while update transactions commit new
versions concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import StorageError


@dataclass(frozen=True)
class RowVersion:
    """One immutable version of a row.

    ``created_version`` is the database version whose commit created this
    row image; ``deleted_version`` is the version whose commit deleted or
    superseded it (``None`` while the version is live).
    """

    created_version: int
    values: Mapping[str, object]
    deleted_version: int | None = None

    def visible_to(self, snapshot_version: int) -> bool:
        """SI visibility: created at/before the snapshot, not yet deleted then."""
        if self.created_version > snapshot_version:
            return False
        if self.deleted_version is None:
            return True
        return self.deleted_version > snapshot_version

    def with_deletion(self, deleted_version: int) -> "RowVersion":
        """Return a copy of this version marked as superseded."""
        if self.deleted_version is not None:
            raise StorageError("row version already superseded")
        return RowVersion(
            created_version=self.created_version,
            values=self.values,
            deleted_version=deleted_version,
        )


class VersionedRow:
    """The full version chain for one primary key.

    Versions are kept newest-first so snapshot lookups usually terminate on
    the first element.  The chain never loses history during normal
    operation; garbage collection of versions no snapshot can see is exposed
    separately (:meth:`vacuum`) because the replication middleware relies on
    old snapshots staying readable while remote writesets are applied.
    """

    __slots__ = ("key", "_versions")

    def __init__(self, key: object) -> None:
        self.key = key
        self._versions: list[RowVersion] = []

    # -- mutation (called with the table's commit version) -------------------

    def install(self, version: RowVersion) -> None:
        """Install a new committed version, superseding the current head."""
        if self._versions:
            head = self._versions[0]
            if head.deleted_version is None:
                if version.created_version <= head.created_version:
                    raise StorageError(
                        "new row version must be newer than the current head"
                    )
                self._versions[0] = head.with_deletion(version.created_version)
        self._versions.insert(0, version)

    def delete(self, deleted_version: int) -> None:
        """Mark the current head as deleted at ``deleted_version``."""
        if not self._versions:
            raise StorageError(f"cannot delete non-existent row {self.key!r}")
        head = self._versions[0]
        if head.deleted_version is not None:
            raise StorageError(f"row {self.key!r} already deleted")
        self._versions[0] = head.with_deletion(deleted_version)

    # -- reads ---------------------------------------------------------------

    def version_for_snapshot(self, snapshot_version: int) -> RowVersion | None:
        """The version visible to ``snapshot_version``, or ``None``."""
        for version in self._versions:
            if version.visible_to(snapshot_version):
                return version
        return None

    def latest(self) -> RowVersion | None:
        """The newest committed version regardless of deletion."""
        return self._versions[0] if self._versions else None

    def exists_at(self, snapshot_version: int) -> bool:
        return self.version_for_snapshot(snapshot_version) is not None

    @property
    def last_modified_version(self) -> int:
        """The commit version that last touched this row (0 if never)."""
        if not self._versions:
            return 0
        head = self._versions[0]
        if head.deleted_version is not None:
            return head.deleted_version
        return head.created_version

    def history(self) -> Iterator[RowVersion]:
        """Iterate versions newest-first (diagnostics and tests)."""
        return iter(self._versions)

    def version_count(self) -> int:
        return len(self._versions)

    # -- maintenance ---------------------------------------------------------

    def vacuum(self, oldest_active_snapshot: int) -> int:
        """Drop versions invisible to every snapshot >= ``oldest_active_snapshot``.

        Returns the number of versions removed.  The newest visible version
        is always retained.
        """
        keep: list[RowVersion] = []
        removed = 0
        found_visible = False
        for version in self._versions:
            if not found_visible:
                keep.append(version)
                if version.visible_to(oldest_active_snapshot):
                    found_visible = True
            else:
                removed += 1
        self._versions = keep
        return removed

    def __repr__(self) -> str:
        return f"VersionedRow(key={self.key!r}, versions={len(self._versions)})"
