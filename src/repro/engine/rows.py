"""Multi-version row storage.

Every row is a chain of :class:`RowVersion` objects.  A version is visible to
a transaction whose snapshot version is ``s`` when it was created at or
before ``s`` and either never deleted or deleted strictly after ``s``.  This
is the standard SI visibility rule and is what lets read-only transactions
run against an immutable snapshot while update transactions commit new
versions concurrently.

The chain is kept **newest-first as a singly linked list** (each version
holds an ``older`` pointer).  Installing a committed version is O(1): the
previous head is stamped with its ``deleted_version`` in place (the
xmax-equivalent) and the new version becomes the head — no list shifting, no
copying.  Snapshot lookups start at the head and terminate on the first
visible version, so reads at recent snapshots never pay for history length.
Vacuum cuts the chain below the newest version visible to the oldest
snapshot any reader (local or replicated) can still hold, and drops fully
dead chains outright so churned keys do not accumulate.

:class:`LegacyVersionedRow` preserves the seed's list-based layout (O(chain)
head inserts, copy-on-supersede) as the reference for the storage
micro-benchmark and the vacuum-equivalence oracle.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import StorageError


class RowVersion:
    """One committed version of a row.

    ``created_version`` is the database version whose commit created this
    row image (the xmin-equivalent); ``deleted_version`` is the version
    whose commit deleted or superseded it (the xmax-equivalent, ``None``
    while the version is live).  ``older`` links to the previous version of
    the same row, newest-first.

    ``values`` is stored by reference: committed writeset values are never
    mutated after install, so the hot apply path installs them without
    cloning.  Readers that hand values out (``Table.read``) copy on the way
    out instead.
    """

    __slots__ = ("created_version", "values", "deleted_version", "older")

    def __init__(self, created_version: int, values: Mapping[str, object],
                 deleted_version: int | None = None,
                 older: "RowVersion | None" = None) -> None:
        self.created_version = created_version
        self.values = values
        self.deleted_version = deleted_version
        self.older = older

    def visible_to(self, snapshot_version: int) -> bool:
        """SI visibility: created at/before the snapshot, not yet deleted then."""
        if self.created_version > snapshot_version:
            return False
        if self.deleted_version is None:
            return True
        return self.deleted_version > snapshot_version

    def mark_deleted(self, deleted_version: int) -> None:
        """Stamp the xmax in place (O(1) supersede on the hot install path)."""
        if self.deleted_version is not None:
            raise StorageError("row version already superseded")
        self.deleted_version = deleted_version

    def with_deletion(self, deleted_version: int) -> "RowVersion":
        """Return a copy of this version marked as superseded."""
        if self.deleted_version is not None:
            raise StorageError("row version already superseded")
        return RowVersion(
            created_version=self.created_version,
            values=self.values,
            deleted_version=deleted_version,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RowVersion):
            return NotImplemented
        return (self.created_version == other.created_version
                and self.deleted_version == other.deleted_version
                and dict(self.values) == dict(other.values))

    def __hash__(self) -> int:
        return hash((self.created_version, self.deleted_version))

    def __repr__(self) -> str:
        return (f"RowVersion(created_version={self.created_version!r}, "
                f"values={self.values!r}, "
                f"deleted_version={self.deleted_version!r})")


class VersionedRow:
    """The full version chain for one primary key.

    Versions are kept newest-first so snapshot lookups usually terminate on
    the first element.  The chain never loses history during normal
    operation; garbage collection of versions no snapshot can see is exposed
    separately (:meth:`vacuum`) because the replication middleware relies on
    old snapshots staying readable while remote writesets are applied.
    """

    __slots__ = ("key", "_head", "_length")

    def __init__(self, key: object) -> None:
        self.key = key
        self._head: RowVersion | None = None
        self._length = 0

    # -- mutation (called with the table's commit version) -------------------

    def install(self, version: RowVersion) -> None:
        """Install a new committed version, superseding the current head.

        O(1): the old head is stamped in place and linked below the new one.
        """
        head = self._head
        if head is not None and head.deleted_version is None:
            if version.created_version <= head.created_version:
                raise StorageError(
                    "new row version must be newer than the current head"
                )
            head.deleted_version = version.created_version
        version.older = head
        self._head = version
        self._length += 1

    def delete(self, deleted_version: int) -> None:
        """Mark the current head as deleted at ``deleted_version``."""
        head = self._head
        if head is None:
            raise StorageError(f"cannot delete non-existent row {self.key!r}")
        if head.deleted_version is not None:
            raise StorageError(f"row {self.key!r} already deleted")
        head.deleted_version = deleted_version

    # -- reads ---------------------------------------------------------------

    def version_for_snapshot(self, snapshot_version: int) -> RowVersion | None:
        """The version visible to ``snapshot_version``, or ``None``."""
        version = self._head
        while version is not None:
            if version.visible_to(snapshot_version):
                return version
            version = version.older
        return None

    def latest(self) -> RowVersion | None:
        """The newest committed version regardless of deletion."""
        return self._head

    def exists_at(self, snapshot_version: int) -> bool:
        return self.version_for_snapshot(snapshot_version) is not None

    @property
    def last_modified_version(self) -> int:
        """The commit version that last touched this row (0 if never)."""
        head = self._head
        if head is None:
            return 0
        if head.deleted_version is not None:
            return head.deleted_version
        return head.created_version

    def history(self) -> Iterator[RowVersion]:
        """Iterate versions newest-first (diagnostics and tests)."""
        version = self._head
        while version is not None:
            yield version
            version = version.older

    def version_count(self) -> int:
        return self._length

    @property
    def has_reclaimable_potential(self) -> bool:
        """Whether a future vacuum could reclaim anything from this chain.

        True when the chain holds more than one version (superseded history)
        or its head is a deletion stamp (the whole chain dies once the
        horizon passes it).  Tables use this to maintain the dead-version
        candidate index so vacuum never visits clean rows.
        """
        head = self._head
        return self._length > 1 or (head is not None
                                    and head.deleted_version is not None)

    # -- maintenance ---------------------------------------------------------

    def vacuum(self, oldest_active_snapshot: int) -> int:
        """Drop versions invisible to every snapshot >= ``oldest_active_snapshot``.

        Returns the number of versions removed.  The newest version visible
        to ``oldest_active_snapshot`` is always retained; everything below
        it is unreachable by any current or future snapshot and is cut off.
        A chain whose every version is already deleted at or below the
        horizon is dead in its entirety and is dropped whole (the table
        removes the emptied row from its key map).
        """
        version = self._head
        while version is not None:
            if version.visible_to(oldest_active_snapshot):
                removed = 0
                dead = version.older
                while dead is not None:
                    removed += 1
                    dead = dead.older
                version.older = None
                self._length -= removed
                return removed
            version = version.older
        # No version is visible at the horizon.  Versions created after the
        # horizon are visible to newer snapshots and must stay; only a chain
        # that is dead end to end (every version superseded/deleted at or
        # below the horizon) can be reclaimed.
        version = self._head
        while version is not None:
            if (version.deleted_version is None
                    or version.deleted_version > oldest_active_snapshot):
                return 0
            version = version.older
        removed = self._length
        self._head = None
        self._length = 0
        return removed

    def __repr__(self) -> str:
        return f"VersionedRow(key={self.key!r}, versions={self._length})"


class LegacyVersionedRow:
    """The seed's list-based version chain, kept as a reference layout.

    Installs do a ``list.insert(0, ...)`` (O(chain) memmove) and supersede
    the head by building a stamped copy — exactly the layout the linked
    chain above replaced.  The storage micro-benchmark measures both so the
    structural win is visible independently of the simulation, and the
    property suite uses it as the behavioural oracle for reads and vacuum.
    """

    __slots__ = ("key", "_versions")

    def __init__(self, key: object) -> None:
        self.key = key
        self._versions: list[RowVersion] = []

    def install(self, version: RowVersion) -> None:
        if self._versions:
            head = self._versions[0]
            if head.deleted_version is None:
                if version.created_version <= head.created_version:
                    raise StorageError(
                        "new row version must be newer than the current head"
                    )
                self._versions[0] = head.with_deletion(version.created_version)
        self._versions.insert(0, version)

    def delete(self, deleted_version: int) -> None:
        if not self._versions:
            raise StorageError(f"cannot delete non-existent row {self.key!r}")
        head = self._versions[0]
        if head.deleted_version is not None:
            raise StorageError(f"row {self.key!r} already deleted")
        self._versions[0] = head.with_deletion(deleted_version)

    def version_for_snapshot(self, snapshot_version: int) -> RowVersion | None:
        for version in self._versions:
            if version.visible_to(snapshot_version):
                return version
        return None

    def latest(self) -> RowVersion | None:
        return self._versions[0] if self._versions else None

    def history(self) -> Iterator[RowVersion]:
        return iter(self._versions)

    def version_count(self) -> int:
        return len(self._versions)

    def vacuum(self, oldest_active_snapshot: int) -> int:
        keep: list[RowVersion] = []
        removed = 0
        found_visible = False
        for version in self._versions:
            if not found_visible:
                keep.append(version)
                if version.visible_to(oldest_active_snapshot):
                    found_visible = True
            else:
                removed += 1
        if not found_visible and keep and all(
            v.deleted_version is not None
            and v.deleted_version <= oldest_active_snapshot
            for v in keep
        ):
            removed += len(keep)
            keep = []
        self._versions = keep
        return removed

    def __repr__(self) -> str:
        return f"LegacyVersionedRow(key={self.key!r}, versions={len(self._versions)})"
