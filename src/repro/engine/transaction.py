"""Engine-level transactions.

An :class:`EngineTransaction` buffers its own writes (its private workspace),
reads through that buffer first and falls back to the snapshot, and records
every modification as a :class:`~repro.core.writeset.WriteItem` so the
writeset can be extracted at commit time — the engine equivalent of the
paper's trigger-based writeset extraction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.writeset import WriteItem, WriteOp, WriteSet
from repro.errors import InvalidTransactionState


class TransactionStatus(str, enum.Enum):
    """Lifecycle of an engine transaction."""

    ACTIVE = "active"
    PREPARED = "prepared"          # ordered commit staged, waiting for its turn
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _BufferedWrite:
    op: WriteOp
    #: Stored by reference and only ever *rebound* (never mutated in place),
    #: so the same mapping can safely back the emitted WriteItem.
    values: Mapping[str, object] = field(default_factory=dict)
    deleted: bool = False


class EngineTransaction:
    """A transaction running inside one database instance."""

    def __init__(self, txn_id: int, snapshot_version: int, *, readonly_hint: bool = False) -> None:
        self.txn_id = txn_id
        self.snapshot_version = snapshot_version
        self.readonly_hint = readonly_hint
        self.status = TransactionStatus.ACTIVE
        self.commit_version: int | None = None
        #: Ordered-commit sequence requested via COMMIT <n> (Tashkent-API).
        self.requested_commit_sequence: int | None = None
        self._writes: dict[tuple[str, object], _BufferedWrite] = {}
        self._write_order: list[WriteItem] = []
        self.reads: int = 0
        self.abort_reason: str | None = None

    # -- state checks ----------------------------------------------------------

    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise InvalidTransactionState(
                f"transaction {self.txn_id} is {self.status.value}, not active"
            )

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    @property
    def is_readonly(self) -> bool:
        """True when the transaction has made no modifications (yet)."""
        return not self._writes

    # -- buffered writes ---------------------------------------------------------

    def buffer_insert(self, table: str, key: object, values: Mapping[str, object]) -> WriteItem:
        """Buffer an insert.  ``values`` ownership passes to the transaction:
        the mapping is stored by reference (the buffer never mutates it in
        place — re-updates rebind to a fresh merged dict), so callers on the
        hot apply path can hand over committed writeset values without cloning.
        """
        self._require_active()
        write = _BufferedWrite(op=WriteOp.INSERT, values=values)
        self._writes[(table, key)] = write
        item = WriteItem(table=table, key=key, op=WriteOp.INSERT, values=values)
        self._write_order.append(item)
        return item

    def buffer_update(self, table: str, key: object, values: Mapping[str, object]) -> WriteItem:
        """Buffer an update (same by-reference ownership as :meth:`buffer_insert`)."""
        self._require_active()
        existing = self._writes.get((table, key))
        if existing is not None and not existing.deleted:
            merged = dict(existing.values)
            merged.update(values)
            existing.values = merged
            existing.deleted = False
            if existing.op is WriteOp.INSERT:
                # An update on top of our own insert stays an insert.
                item = WriteItem(table=table, key=key, op=WriteOp.INSERT, values=merged)
            else:
                item = WriteItem(table=table, key=key, op=WriteOp.UPDATE, values=values)
        else:
            self._writes[(table, key)] = _BufferedWrite(op=WriteOp.UPDATE, values=values)
            item = WriteItem(table=table, key=key, op=WriteOp.UPDATE, values=values)
        self._write_order.append(item)
        return item

    def buffer_delete(self, table: str, key: object) -> WriteItem:
        self._require_active()
        self._writes[(table, key)] = _BufferedWrite(op=WriteOp.DELETE, deleted=True)
        item = WriteItem(table=table, key=key, op=WriteOp.DELETE)
        self._write_order.append(item)
        return item

    # -- read-your-own-writes -----------------------------------------------------

    def buffered_read(self, table: str, key: object) -> tuple[bool, Mapping[str, object] | None]:
        """Return ``(hit, values)`` from the private workspace.

        ``hit`` is False when the transaction has not touched the row, in
        which case the caller must read from the snapshot.  A buffered delete
        returns ``(True, None)``.
        """
        write = self._writes.get((table, key))
        if write is None:
            return False, None
        if write.deleted or write.op is WriteOp.DELETE:
            return True, None
        return True, dict(write.values)

    def record_read(self) -> None:
        self.reads += 1

    # -- writeset extraction -------------------------------------------------------

    def extract_writeset(self) -> WriteSet:
        """The writeset capturing this transaction's modifications.

        Collapses multiple writes to the same row into the final effect, in
        first-touch order, which is what the trigger-based extraction in the
        paper produces (new row for INSERT, primary key plus modified columns
        for UPDATE, primary key for DELETE).
        """
        writeset = WriteSet()
        seen: set[tuple[str, object]] = set()
        for item in self._write_order:
            identity = (item.table, item.key)
            if identity in seen:
                continue
            seen.add(identity)
            final = self._writes[identity]
            if final.deleted or final.op is WriteOp.DELETE:
                writeset.add(WriteItem(table=item.table, key=item.key, op=WriteOp.DELETE))
            else:
                writeset.add(
                    WriteItem(
                        table=item.table,
                        key=item.key,
                        op=final.op,
                        values=final.values,
                    )
                )
        return writeset

    def written_items(self) -> frozenset[tuple[str, object]]:
        """Identities of rows written so far (partial writeset, for eager checks)."""
        return frozenset(self._writes)

    # -- terminal transitions --------------------------------------------------------

    def mark_prepared(self, sequence: int) -> None:
        self._require_active()
        self.status = TransactionStatus.PREPARED
        self.requested_commit_sequence = sequence

    def mark_committed(self, commit_version: int) -> None:
        if self.status not in (TransactionStatus.ACTIVE, TransactionStatus.PREPARED):
            raise InvalidTransactionState(
                f"cannot commit transaction {self.txn_id} in state {self.status.value}"
            )
        self.status = TransactionStatus.COMMITTED
        self.commit_version = commit_version

    def mark_aborted(self, reason: str = "abort") -> None:
        if self.status is TransactionStatus.COMMITTED:
            raise InvalidTransactionState(
                f"cannot abort committed transaction {self.txn_id}"
            )
        self.status = TransactionStatus.ABORTED
        self.abort_reason = reason

    def __repr__(self) -> str:
        return (
            f"EngineTransaction(id={self.txn_id}, snapshot={self.snapshot_version}, "
            f"status={self.status.value}, writes={len(self._writes)})"
        )
