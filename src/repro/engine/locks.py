"""Write locks with first-updater-wins semantics and deadlock detection.

PostgreSQL (and other centralized SI databases) "uses write locks to eagerly
test for write-write conflicts during transaction execution rather than at
commit time" (paper, Section 8.2).  The first transaction to write a row
holds the lock; competitors wait.  If the holder commits, waiting competitors
must abort (first-updater-wins); if the holder aborts, one competitor may
proceed.  Waiting can produce deadlocks, which the lock manager detects by
searching the wait-for graph and aborting the requester that would close a
cycle.

The engine is single-threaded, so "waiting" is surfaced to the caller as
:class:`LockBlockedError` carrying the holder's identity.  Callers that can
wait (the middleware proxy, the simulator) decide what to do: the proxy, for
instance, aborts a local transaction that blocks a certified remote writeset
(the paper's priority rule).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DeadlockError, ReproError


class LockStatus(str, enum.Enum):
    """Result of a lock acquisition attempt."""

    GRANTED = "granted"
    ALREADY_HELD = "already-held"
    BLOCKED = "blocked"


class LockBlockedError(ReproError):
    """The requested row is write-locked by another active transaction."""

    def __init__(self, item: tuple[str, object], holder: int, requester: int) -> None:
        super().__init__(
            f"transaction {requester} blocked on {item!r} held by transaction {holder}"
        )
        self.item = item
        self.holder = holder
        self.requester = requester


@dataclass
class _LockEntry:
    holder: int
    waiters: list[int] = field(default_factory=list)


class LockManager:
    """Tracks write locks on ``(table, key)`` items for active transactions."""

    def __init__(self) -> None:
        self._locks: dict[tuple[str, object], _LockEntry] = {}
        self._held_by_txn: dict[int, set[tuple[str, object]]] = {}
        self._waiting_for: dict[int, tuple[str, object]] = {}
        self.deadlocks_detected = 0

    # -- acquisition -----------------------------------------------------------

    def try_acquire(self, txn_id: int, item: tuple[str, object]) -> LockStatus:
        """Attempt to acquire the write lock on ``item`` for ``txn_id``.

        Returns GRANTED or ALREADY_HELD on success.  If another transaction
        holds the lock the requester is registered as a waiter and the method
        raises either :class:`DeadlockError` (when waiting would close a
        cycle in the wait-for graph — the requester is the victim) or
        :class:`LockBlockedError`.
        """
        entry = self._locks.get(item)
        if entry is None:
            self._locks[item] = _LockEntry(holder=txn_id)
            self._held_by_txn.setdefault(txn_id, set()).add(item)
            return LockStatus.GRANTED
        if entry.holder == txn_id:
            return LockStatus.ALREADY_HELD

        # Deadlock check: would waiting on entry.holder create a cycle?
        if self._would_deadlock(waiter=txn_id, holder=entry.holder):
            self.deadlocks_detected += 1
            raise DeadlockError(
                f"transaction {txn_id} waiting on {item!r} (held by {entry.holder}) "
                "would create a wait-for cycle"
            )
        if txn_id not in entry.waiters:
            entry.waiters.append(txn_id)
        self._waiting_for[txn_id] = item
        raise LockBlockedError(item=item, holder=entry.holder, requester=txn_id)

    def holds(self, txn_id: int, item: tuple[str, object]) -> bool:
        entry = self._locks.get(item)
        return entry is not None and entry.holder == txn_id

    def holder_of(self, item: tuple[str, object]) -> int | None:
        entry = self._locks.get(item)
        return None if entry is None else entry.holder

    def locks_held_by(self, txn_id: int) -> frozenset[tuple[str, object]]:
        return frozenset(self._held_by_txn.get(txn_id, set()))

    # -- release ----------------------------------------------------------------

    def release_all(self, txn_id: int) -> list[tuple[tuple[str, object], int]]:
        """Release every lock held by ``txn_id`` (commit or abort).

        Returns a list of ``(item, new_holder)`` pairs for locks that were
        handed to the first waiter in queue.  The caller is responsible for
        telling the promoted transactions whether the previous holder
        committed (in which case SI requires them to abort) or aborted (in
        which case they may proceed).
        """
        promotions: list[tuple[tuple[str, object], int]] = []
        for item in self._held_by_txn.pop(txn_id, set()):
            entry = self._locks.get(item)
            if entry is None or entry.holder != txn_id:
                continue
            # Drop the requester from any wait queue bookkeeping first.
            while entry.waiters:
                next_holder = entry.waiters.pop(0)
                self._waiting_for.pop(next_holder, None)
                entry.holder = next_holder
                self._held_by_txn.setdefault(next_holder, set()).add(item)
                promotions.append((item, next_holder))
                break
            else:
                del self._locks[item]
        # The transaction can no longer be waiting on anything.
        self._cancel_wait(txn_id)
        return promotions

    def _cancel_wait(self, txn_id: int) -> None:
        item = self._waiting_for.pop(txn_id, None)
        if item is None:
            return
        entry = self._locks.get(item)
        if entry is not None and txn_id in entry.waiters:
            entry.waiters.remove(txn_id)

    def cancel_wait(self, txn_id: int) -> None:
        """Public wrapper: forget that ``txn_id`` was waiting (it aborted)."""
        self._cancel_wait(txn_id)

    # -- deadlock detection -------------------------------------------------------

    def _would_deadlock(self, waiter: int, holder: int) -> bool:
        """True when ``waiter -> holder`` plus existing edges forms a cycle."""
        seen: set[int] = set()
        current: int | None = holder
        while current is not None:
            if current == waiter:
                return True
            if current in seen:
                return False
            seen.add(current)
            blocked_on = self._waiting_for.get(current)
            if blocked_on is None:
                return False
            entry = self._locks.get(blocked_on)
            current = entry.holder if entry is not None else None
        return False

    def wait_for_graph(self) -> dict[int, int]:
        """The current wait-for edges ``waiter -> holder`` (diagnostics)."""
        graph: dict[int, int] = {}
        for waiter, item in self._waiting_for.items():
            entry = self._locks.get(item)
            if entry is not None:
                graph[waiter] = entry.holder
        return graph

    def active_lock_count(self) -> int:
        return len(self._locks)

    def __repr__(self) -> str:
        return (
            f"LockManager(locks={len(self._locks)}, "
            f"waiters={len(self._waiting_for)})"
        )
