"""The database facade: a standalone snapshot-isolation database.

:class:`Database` ties the pieces together: tables of versioned rows, write
locks, the WAL with group commit, writeset extraction, an ordered-commit API
and checkpointing.  It reproduces the PostgreSQL behaviours the paper relies
on:

* **snapshot isolation** — ``begin`` assigns the latest snapshot; readers
  never block writers and vice versa.
* **first-updater-wins write locks** — the first writer of a row blocks
  competitors; when it commits the competitors abort; when it aborts one of
  them proceeds (Section 8.2).
* **writeset extraction** — ``extract_writeset`` returns exactly what the
  paper's triggers capture.
* **synchronous-commit switch** — ``set_synchronous_commit(False)`` turns a
  commit into an in-memory action (Tashkent-MW replicas).
* **ordered commit** — ``commit_ordered(txn, sequence)`` is the paper's
  ``COMMIT <n>`` API extension: commit records of several transactions can be
  grouped into one flush while their effects become visible strictly in
  sequence order.
* **priority application of remote writesets** — ``apply_writeset`` aborts
  any local transaction whose write lock blocks a certified remote writeset.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.ordering import CommitSequencer
from repro.core.stats import MvccStats
from repro.core.versions import VersionClock
from repro.core.writeset import WriteOp, WriteSet
from repro.engine.checkpoint import Checkpoint
from repro.engine.locks import LockBlockedError, LockManager, LockStatus
from repro.engine.log_device import LogDevice
from repro.engine.table import Table, TableSchema
from repro.engine.transaction import EngineTransaction, TransactionStatus
from repro.engine.wal import WalRecord, WriteAheadLog
from repro.errors import (
    InvalidTransactionState,
    StorageError,
    TransactionAborted,
    UnknownTableError,
    WriteConflictError,
)

#: Alias exported for callers that want to catch any SI violation uniformly.
IsolationError = TransactionAborted


class Database:
    """A standalone multi-version snapshot-isolation database."""

    def __init__(
        self,
        name: str = "db",
        *,
        synchronous_commit: bool = True,
        log_device: LogDevice | None = None,
    ) -> None:
        self.name = name
        self.tables: dict[str, Table] = {}
        self.locks = LockManager()
        self.wal = WriteAheadLog(log_device, synchronous_commit=synchronous_commit)
        self.version_clock = VersionClock()
        self.sequencer = CommitSequencer()
        self._next_txn_id = 1
        self._active: dict[int, EngineTransaction] = {}
        #: Transactions staged via commit_ordered waiting for flush/announce.
        self._staged_ordered: dict[int, EngineTransaction] = {}
        #: Callbacks fired when a transaction is force-aborted (first-updater
        #: -wins or remote-writeset priority) so the middleware can observe it.
        self.abort_listeners: list[Callable[[EngineTransaction, str], None]] = []
        # Statistics
        self.commits = 0
        self.readonly_commits = 0
        self.aborts = 0
        self.forced_aborts = 0
        self.remote_batches_applied = 0
        self.remote_writesets_applied = 0
        self.vacuum_runs = 0
        self.last_vacuum_horizon = 0

    # ------------------------------------------------------------------ schema

    def create_table(self, name: str, columns: Iterable[str], primary_key: str = "id") -> Table:
        """Create a table; returns the :class:`Table` object."""
        if name in self.tables:
            raise StorageError(f"table {name!r} already exists")
        schema = TableSchema(name=name, columns=tuple(columns), primary_key=primary_key)
        table = Table(schema)
        self.tables[name] = table
        return table

    def create_table_from_schema(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(f"unknown table {name!r}") from None

    # ------------------------------------------------------------------ config

    def set_synchronous_commit(self, enabled: bool) -> None:
        """Enable or disable synchronous WAL writes on commit."""
        self.wal.set_synchronous_commit(enabled)

    @property
    def synchronous_commit(self) -> bool:
        return self.wal.synchronous_commit

    @property
    def current_version(self) -> int:
        """The database's latest committed snapshot version."""
        return self.version_clock.version

    @property
    def fsync_count(self) -> int:
        """Synchronous writes the WAL has issued (the paper's key metric)."""
        return self.wal.sync_count

    # ------------------------------------------------------------------ lifecycle

    def begin(self, *, readonly_hint: bool = False) -> EngineTransaction:
        """Start a transaction on the latest snapshot."""
        txn = EngineTransaction(
            txn_id=self._next_txn_id,
            snapshot_version=self.current_version,
            readonly_hint=readonly_hint,
        )
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        return txn

    def active_transactions(self) -> list[EngineTransaction]:
        return list(self._active.values())

    def oldest_active_snapshot(self) -> int:
        """Oldest snapshot any active transaction may still read."""
        if not self._active:
            return self.current_version
        return min(txn.snapshot_version for txn in self._active.values())

    # ------------------------------------------------------------------ reads

    def read(self, txn: EngineTransaction, table_name: str, key: object) -> Mapping[str, object] | None:
        """Read a row through the transaction's snapshot (and its own writes)."""
        self._require_known(txn)
        hit, values = txn.buffered_read(table_name, key)
        if hit:
            txn.record_read()
            return values
        table = self.table(table_name)
        txn.record_read()
        return table.read(key, txn.snapshot_version)

    def scan(self, txn: EngineTransaction, table_name: str) -> list[tuple[object, Mapping[str, object]]]:
        """Scan every row visible to the transaction's snapshot."""
        self._require_known(txn)
        table = self.table(table_name)
        rows = []
        for key, values in table.scan(txn.snapshot_version):
            hit, buffered = txn.buffered_read(table_name, key)
            if hit:
                if buffered is not None:
                    rows.append((key, buffered))
            else:
                rows.append((key, values))
        return rows

    # ------------------------------------------------------------------ writes

    def insert(self, txn: EngineTransaction, table_name: str, key: object,
               **values: object) -> None:
        """Insert a row (buffered until commit)."""
        self._buffer_insert(txn, table_name, key, values)

    def update(self, txn: EngineTransaction, table_name: str, key: object,
               **values: object) -> None:
        """Update columns of a row (buffered until commit)."""
        self._buffer_update(txn, table_name, key, values)

    def _buffer_insert(self, txn: EngineTransaction, table_name: str, key: object,
                       values: Mapping[str, object]) -> None:
        """Mapping-taking insert path shared with the remote-apply fast path.

        ``values`` is buffered by reference when it already carries the
        primary key (remote writesets always do — extraction captures the
        full row), so applying a certified writeset clones nothing.
        """
        self._require_known(txn)
        table = self.table(table_name)
        if table.schema.primary_key not in values:
            row_values = dict(values)
            row_values[table.schema.primary_key] = key
            values = row_values
        table.schema.validate_values(values, partial=False)
        self._acquire_write_lock(txn, table_name, key)
        txn.buffer_insert(table_name, key, values)

    def _buffer_update(self, txn: EngineTransaction, table_name: str, key: object,
                       values: Mapping[str, object]) -> None:
        """Mapping-taking update path shared with the remote-apply fast path."""
        self._require_known(txn)
        table = self.table(table_name)
        table.schema.validate_values(values, partial=True)
        self._acquire_write_lock(txn, table_name, key)
        txn.buffer_update(table_name, key, values)

    def delete(self, txn: EngineTransaction, table_name: str, key: object) -> None:
        """Delete a row (buffered until commit)."""
        self._require_known(txn)
        self.table(table_name)
        self._acquire_write_lock(txn, table_name, key)
        txn.buffer_delete(table_name, key)

    def _acquire_write_lock(self, txn: EngineTransaction, table_name: str, key: object) -> None:
        """First-updater-wins: eager write-write conflict detection."""
        table = self.table(table_name)
        last_modified = table.last_modified_version(key)
        if last_modified > txn.snapshot_version:
            # A concurrent transaction already committed a newer version of
            # this row: under SI the later writer must abort.
            self._abort_internal(txn, reason="ww-conflict")
            raise WriteConflictError((table_name, key))
        try:
            status = self.locks.try_acquire(txn.txn_id, (table_name, key))
        except LockBlockedError:
            raise
        except TransactionAborted:
            # Deadlock victim: the lock manager chose the requester.
            self._abort_internal(txn, reason="deadlock")
            raise
        assert status in (LockStatus.GRANTED, LockStatus.ALREADY_HELD)

    # ------------------------------------------------------------------ writeset extraction

    def extract_writeset(self, txn: EngineTransaction) -> WriteSet:
        """Extract the transaction's writeset (the trigger mechanism)."""
        self._require_known(txn, allow_prepared=True)
        return txn.extract_writeset()

    # ------------------------------------------------------------------ commit / abort

    def commit(self, txn: EngineTransaction, *, version: int | None = None) -> int:
        """Commit ``txn``; returns the commit version (0 for read-only).

        ``version`` lets the replication proxy force the database version to
        match the global commit version assigned by the certifier.  Without
        it the local version simply increments.
        """
        self._require_known(txn)
        if txn.is_readonly:
            txn.mark_committed(txn.snapshot_version)
            del self._active[txn.txn_id]
            self.readonly_commits += 1
            return 0

        writeset = txn.extract_writeset()
        commit_version = self._allocate_commit_version(version)
        self._install_writeset(writeset, commit_version)
        self.wal.append(WalRecord(commit_version=commit_version, txn_id=txn.txn_id, writeset=writeset))
        txn.mark_committed(commit_version)
        del self._active[txn.txn_id]
        self._release_locks_after_commit(txn)
        self.commits += 1
        return commit_version

    def commit_ordered(self, txn: EngineTransaction, sequence: int) -> None:
        """Stage ``txn`` for ordered commit at global ``sequence`` (COMMIT <n>).

        The commit record is appended to the WAL without an individual sync;
        the effects become visible only when :meth:`flush_ordered_commits`
        runs and the sequencer reaches ``sequence``.
        """
        self._require_known(txn)
        if txn.is_readonly:
            raise InvalidTransactionState("ordered commit is only meaningful for update transactions")
        writeset = txn.extract_writeset()
        txn.mark_prepared(sequence)

        def announce(ws: WriteSet = writeset, seq: int = sequence, t: EngineTransaction = txn) -> None:
            self._install_writeset(ws, seq)
            self.version_clock.advance_to(max(self.version_clock.version, seq))
            t.mark_committed(seq)
            self._release_locks_after_commit(t)
            self.commits += 1

        self.sequencer.register(sequence, announce)
        self.wal.append(
            WalRecord(commit_version=sequence, txn_id=txn.txn_id, writeset=writeset),
            force_sync=False,
        )
        self._staged_ordered[sequence] = txn
        del self._active[txn.txn_id]

    def flush_ordered_commits(self) -> list[int]:
        """Flush every staged ordered commit with one synchronous write.

        Returns the sequence numbers announced as a result (commits whose
        predecessors are still missing stay durable-but-waiting, exactly like
        the semaphore in the paper's PostgreSQL patch).
        """
        if not self._staged_ordered and self.wal.pending_count == 0:
            return []
        self.wal.flush()
        announced: list[int] = []
        for sequence in sorted(self._staged_ordered):
            announced.extend(self.sequencer.mark_durable(sequence))
        for sequence in announced:
            self._staged_ordered.pop(sequence, None)
        return announced

    def abort(self, txn: EngineTransaction, reason: str = "abort") -> None:
        """Abort ``txn`` and release its locks."""
        if txn.status is TransactionStatus.ABORTED:
            return
        self._require_known(txn)
        self._abort_internal(txn, reason=reason)

    def _abort_internal(self, txn: EngineTransaction, *, reason: str) -> None:
        txn.mark_aborted(reason)
        self._active.pop(txn.txn_id, None)
        self.locks.cancel_wait(txn.txn_id)
        self.locks.release_all(txn.txn_id)
        self.aborts += 1
        for listener in self.abort_listeners:
            listener(txn, reason)

    def _release_locks_after_commit(self, txn: EngineTransaction) -> None:
        """Release locks; competitors that were waiting must abort (SI rule)."""
        promotions = self.locks.release_all(txn.txn_id)
        for _item, waiter_id in promotions:
            waiter = self._active.get(waiter_id)
            if waiter is not None:
                self.forced_aborts += 1
                self._abort_internal(waiter, reason="first-updater-wins")

    def _allocate_commit_version(self, version: int | None) -> int:
        if version is None:
            return self.version_clock.increment()
        return self.version_clock.advance_to(max(version, self.version_clock.version))

    def _install_writeset(self, writeset: WriteSet, commit_version: int) -> None:
        for item in writeset:
            table = self.table(item.table)
            if item.op is WriteOp.INSERT:
                table.install_insert(item.key, item.values, commit_version)
            elif item.op is WriteOp.UPDATE:
                table.install_update(item.key, item.values, commit_version)
            else:
                table.install_delete(item.key, commit_version)

    # ------------------------------------------------------------------ remote writesets

    def apply_writeset(self, writeset: WriteSet, *, version: int | None = None,
                       priority: bool = True) -> int:
        """Apply a certified remote writeset in its own transaction.

        With ``priority=True`` (the default, matching the paper's rule that a
        certified remote transaction "must eventually be permitted to
        commit"), any active local transaction holding a write lock on a row
        the writeset touches is aborted first.
        """
        if priority:
            self.abort_conflicting_transactions(writeset, reason="remote-writeset-priority")
        txn = self.begin()
        try:
            for item in writeset:
                if item.op is WriteOp.INSERT:
                    self._buffer_insert(txn, item.table, item.key, item.values)
                elif item.op is WriteOp.UPDATE:
                    self._buffer_update(txn, item.table, item.key, item.values)
                else:
                    self.delete(txn, item.table, item.key)
        except TransactionAborted:
            # A conflicting *committed* version newer than our snapshot can
            # only appear if versions were applied out of order, which the
            # proxy never does; re-raise for visibility.
            raise
        return self.commit(txn, version=version)

    def apply_writesets_grouped(self, writesets: Iterable[WriteSet], *,
                                version: int | None = None, priority: bool = True) -> int:
        """Apply several remote writesets as one transaction (one commit).

        This is the paper's grouping of remote writesets (T1_2_3): their
        effects are combined and committed with a single disk write.
        """
        combined = WriteSet.union(writesets)
        if combined.is_empty():
            return 0
        return self.apply_writeset(combined, version=version, priority=priority)

    def apply_writeset_batch(self, batch: Iterable[tuple[int, WriteSet]], *,
                             priority: bool = True) -> int:
        """Apply a batch of certified remote writesets (the group-apply path).

        ``batch`` holds ``(commit_version, writeset)`` pairs as delivered by
        the transport layer's :class:`~repro.transport.stream.WritesetStream`.
        Each writeset is installed at its *own* global commit version — so
        snapshot readers observe the original commit order, unlike
        :meth:`apply_writesets_grouped` which collapses the batch onto one
        version — but the whole batch costs a single version-clock advance
        and a single WAL append (hence at most one synchronous write).

        Certification guarantees the writesets committed in version order
        without SI conflicts, which is what makes the direct install safe:
        no locks are taken; with ``priority`` (the paper's rule that a
        certified remote transaction must eventually commit) any active
        local transaction holding a write lock on a touched row is aborted
        first.

        Per-version granularity applies to *live* snapshots only: the WAL
        carries one combined record at the batch's highest version, so crash
        recovery restores the batch atomically at that version — the same
        recovery granularity as :meth:`apply_writesets_grouped` (the durable
        copy of the individual versions is the certifier's log).

        Returns the number of writesets applied.
        """
        pairs = sorted(batch, key=lambda pair: pair[0])
        pairs = [(version, ws) for version, ws in pairs if not ws.is_empty()]
        if not pairs:
            return 0
        # The priority sweep only matters while local transactions hold
        # write locks; an idle replica (the common case on the apply path)
        # skips it entirely.
        sweep_conflicts = priority and self._active
        for commit_version, writeset in pairs:
            if sweep_conflicts:
                self.abort_conflicting_transactions(
                    writeset, reason="remote-writeset-priority"
                )
            self._install_writeset(writeset, commit_version)
        max_version = pairs[-1][0]
        self.version_clock.advance_to(max(max_version, self.version_clock.version))
        if len(pairs) == 1:
            combined = pairs[0][1]
        else:
            combined = WriteSet.union(ws for _version, ws in pairs)
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        self.wal.append(
            WalRecord(commit_version=max_version, txn_id=txn_id, writeset=combined)
        )
        # One logical commit of the grouped remote transaction (T1_2_3),
        # matching the accounting of the transactional grouped-apply path.
        self.commits += 1
        self.remote_batches_applied += 1
        self.remote_writesets_applied += len(pairs)
        return len(pairs)

    def abort_conflicting_transactions(self, writeset: WriteSet, *, reason: str) -> list[int]:
        """Abort active local transactions holding locks the writeset needs."""
        aborted: list[int] = []
        for item in writeset:
            holder_id = self.locks.holder_of((item.table, item.key))
            if holder_id is None:
                continue
            holder = self._active.get(holder_id)
            if holder is not None:
                self.forced_aborts += 1
                self._abort_internal(holder, reason=reason)
                aborted.append(holder_id)
        return aborted

    # ------------------------------------------------------------------ checkpoints / crash

    def dump(self) -> Checkpoint:
        """Produce a complete copy of the database at the current version."""
        return Checkpoint.capture(self.name, self.current_version, self.tables)

    @classmethod
    def restore(cls, checkpoint: Checkpoint, *, synchronous_commit: bool = True,
                log_device: LogDevice | None = None) -> "Database":
        """Rebuild a database from a checkpoint."""
        checkpoint.validate()
        db = cls(checkpoint.database_name, synchronous_commit=synchronous_commit,
                 log_device=log_device)
        for schema in checkpoint.schemas:
            db.create_table_from_schema(schema)
        restore_version = max(checkpoint.version, 1)
        for table_name, rows in checkpoint.table_states.items():
            table = db.table(table_name)
            for key, values in rows.items():
                table.install_insert(key, values, restore_version)
        db.version_clock.advance_to(checkpoint.version)
        db.sequencer.announced_version = checkpoint.version
        return db

    def simulate_crash(self) -> int:
        """Crash the database: active transactions and unflushed WAL are lost.

        Returns the number of WAL records lost.  The object remains usable
        only as a source of durable state for recovery (see
        :mod:`repro.engine.recovery`).
        """
        for txn in list(self._active.values()):
            self._abort_internal(txn, reason="crash")
        self._staged_ordered.clear()
        return self.wal.simulate_crash()

    # ------------------------------------------------------------------ maintenance

    def vacuum(self, *, replication_horizon: int | None = None,
               max_rows: int | None = None) -> int:
        """Garbage-collect row versions no reader can still request.

        The horizon is the *minimum* of the local oldest active snapshot and
        the supplied ``replication_horizon`` (the certifier's replica
        low-water mark): a vacuum must never reclaim a version that a lagging
        replica, a resubscribing replica or a recovering reader could still
        ask this replica to serve.  ``max_rows`` bounds the candidate rows
        visited across all tables, making the pass incremental (the
        maintenance janitor's batching knob).  Returns versions reclaimed.
        """
        horizon = self.oldest_active_snapshot()
        if replication_horizon is not None:
            horizon = min(horizon, replication_horizon)
        self.last_vacuum_horizon = horizon
        reclaimed = 0
        budget = max_rows
        for table in self.tables.values():
            if budget is not None and budget <= 0:
                break
            visited_before = table.vacuum_rows_visited
            reclaimed += table.vacuum(horizon, max_rows=budget)
            if budget is not None:
                budget -= table.vacuum_rows_visited - visited_before
        self.vacuum_runs += 1
        return reclaimed

    def mvcc_stats(self, *, include_chains: bool = True) -> "MvccStats":
        """Typed MVCC snapshot aggregated over all tables."""
        stats = MvccStats()
        for table in self.tables.values():
            stats.merge(table.mvcc_stats(include_chains=include_chains))
        return stats

    def dead_candidate_count(self) -> int:
        """Rows the next vacuum pass would consider, across all tables."""
        return sum(table.dead_candidate_count() for table in self.tables.values())

    def row_count(self) -> int:
        return sum(len(table) for table in self.tables.values())

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "version": self.current_version,
            "commits": self.commits,
            "readonly_commits": self.readonly_commits,
            "aborts": self.aborts,
            "forced_aborts": self.forced_aborts,
            "remote_batches_applied": self.remote_batches_applied,
            "remote_writesets_applied": self.remote_writesets_applied,
            "fsyncs": self.fsync_count,
            "records_per_sync": self.wal.records_per_sync,
            "active_transactions": len(self._active),
            "tables": {name: len(table) for name, table in self.tables.items()},
            "vacuum_runs": self.vacuum_runs,
            "last_vacuum_horizon": self.last_vacuum_horizon,
            # Counters only; the O(rows) chain histogram stays opt-in via
            # Database.mvcc_stats(include_chains=True).
            "mvcc": self.mvcc_stats(include_chains=False).as_dict(),
        }

    # ------------------------------------------------------------------ helpers

    def _require_known(self, txn: EngineTransaction, *, allow_prepared: bool = False) -> None:
        if txn.status is TransactionStatus.ACTIVE:
            if txn.txn_id not in self._active:
                raise InvalidTransactionState(
                    f"transaction {txn.txn_id} does not belong to database {self.name!r}"
                )
            return
        if allow_prepared and txn.status is TransactionStatus.PREPARED:
            return
        raise InvalidTransactionState(
            f"transaction {txn.txn_id} is {txn.status.value}"
        )

    def __repr__(self) -> str:
        return (
            f"Database(name={self.name!r}, version={self.current_version}, "
            f"tables={len(self.tables)}, active={len(self._active)})"
        )
