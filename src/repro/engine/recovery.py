"""Engine crash recovery.

Two procedures are provided, matching Section 7 of the paper:

* :func:`recover_from_wal` — the standalone / Base / Tashkent-API path: the
  database redoes every durable committed transaction found in its own WAL,
  starting from the latest checkpoint record if one exists.  Transactions
  whose commit records never reached the disk are lost *from the database's
  point of view*; the replication proxy re-applies them from the certifier's
  log afterwards.

* :func:`recover_from_checkpoint` — the Tashkent-MW path: the replica's WAL
  was running without synchronous writes, so its contents cannot be trusted;
  the database is rebuilt from the most recent valid dump and the middleware
  then replays remote writesets from the certifier's log to catch up.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.checkpoint import Checkpoint, CheckpointStore
from repro.engine.database import Database
from repro.engine.log_device import LogDevice
from repro.engine.table import TableSchema
from repro.engine.wal import WalRecord, WriteAheadLog
from repro.errors import RecoveryError


def recover_from_wal(
    wal: WriteAheadLog,
    schemas: Iterable[TableSchema],
    *,
    database_name: str = "db",
    base_checkpoint: Checkpoint | None = None,
    synchronous_commit: bool = True,
    log_device: LogDevice | None = None,
) -> Database:
    """Rebuild a database by redoing the durable records of ``wal``.

    ``base_checkpoint`` (optional) provides the starting state; only records
    with a commit version greater than the checkpoint version are redone.
    Returns the recovered database, whose version equals the highest durable
    commit version.
    """
    if base_checkpoint is not None:
        db = Database.restore(
            base_checkpoint,
            synchronous_commit=synchronous_commit,
            log_device=log_device,
        )
        start_version = base_checkpoint.version
    else:
        db = Database(database_name, synchronous_commit=synchronous_commit,
                      log_device=log_device)
        for schema in schemas:
            db.create_table_from_schema(schema)
        start_version = 0

    redone = 0
    for record in wal.records_for_recovery(after_version=start_version):
        _redo(db, record)
        redone += 1
    if redone == 0 and db.current_version == 0 and start_version == 0:
        # Nothing durable: the database restarts empty at version 0, which is
        # a valid (if ancient) consistent prefix of the certifier's log.
        pass
    db.sequencer.announced_version = db.current_version
    return db


def _redo(db: Database, record: WalRecord) -> None:
    """Redo one WAL record idempotently."""
    if record.is_checkpoint:
        return
    if record.commit_version <= db.current_version:
        return  # Already reflected (idempotent replay).
    db.apply_writeset(record.writeset, version=record.commit_version, priority=False)


def recover_from_checkpoint(
    store: CheckpointStore,
    *,
    synchronous_commit: bool = False,
    log_device: LogDevice | None = None,
) -> Database:
    """Rebuild a Tashkent-MW replica database from its most recent valid dump.

    Raises :class:`RecoveryError` when neither of the retained dumps
    validates (both copies corrupt), which in the paper's design cannot
    happen because a new dump only replaces the older copy once complete.
    """
    checkpoint = store.latest_valid()
    return Database.restore(
        checkpoint,
        synchronous_commit=synchronous_commit,
        log_device=log_device,
    )


def verify_same_state(left: Database, right: Database) -> bool:
    """Structural equality of the latest committed state of two databases.

    Used by tests and by the fault-tolerance examples to check that a
    recovered replica converged to the same state as a healthy one.
    """
    if set(left.tables) != set(right.tables):
        return False
    for name in left.tables:
        left_state = left.table(name).snapshot_state(left.current_version)
        right_state = right.table(name).snapshot_state(right.current_version)
        if left_state != right_state:
            return False
    return True
