"""The Tashkent-API system model (and the ``tashAPInoCERT`` ablation).

Durability is united with ordering *inside the database*: the proxy passes
the certifier-assigned commit version with every ``COMMIT`` and submits the
remote writesets and the local commit concurrently, so the database's log
writer can group all their commit records into one synchronous write.
Artificial conflicts among remote writesets (Section 5.2.1) force extra
serialisation points: every conflict-separated group needs its own flush
before the next group may be submitted, which is why Tashkent-API degrades
towards Base when the artificial-conflict rate is high (TPC-B).

The ``tashAPInoCERT`` ablation is the same model with the certifier's log
write taken off the critical path (``durability_in_certifier`` is false for
``SystemKind.TASHKENT_API_NO_CERT``), isolating the cost of the extra fsync
latency at the certifier.
"""

from __future__ import annotations

from typing import Generator

from repro.core.artificial_conflicts import ArtificialConflictDetector
from repro.core.config import ReplicationConfig
from repro.cluster.models import SystemModel
from repro.cluster.nodes import SimReplicaNode
from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import RandomStreams
from repro.workloads.spec import TransactionProfile, WorkloadSpec


class TashkentAPIModel(SystemModel):
    """Durability united with ordering inside the database (COMMIT <version>)."""

    uses_ordered_commits = True
    #: PostgreSQL's WAL carries before/after page images and each remote
    #: writeset commits as its own transaction, so a grouped flush at a
    #: replica moves far more bytes than the certifier's writeset-only log —
    #: the effect the paper cites to explain the residual Tashkent-MW vs
    #: Tashkent-API difference (Section 9.2).  The factor scales the
    #: effective flush time of the replica's grouped ordered commits.
    ordered_flush_overhead_factor = 2.6

    def __init__(
        self,
        env: Environment,
        config: ReplicationConfig,
        workload: WorkloadSpec,
        rng: RandomStreams,
        metrics: MetricsCollector,
    ) -> None:
        super().__init__(env, config, workload, rng, metrics)
        self.conflict_detector = ArtificialConflictDetector()
        self.artificial_conflicts = 0
        self.serialization_points = 0
        self.remote_groups_planned = 0

    def commit_update(self, replica: SimReplicaNode, profile: TransactionProfile,
                      tx_start_version: int) -> Generator:
        base_version = replica.replica_version
        result = yield from self._certify(
            replica, profile, tx_start_version, check_remote_back_to=base_version
        )

        pending = replica.claim_remote(result.remote_writesets)
        plan = self.conflict_detector.plan(pending, base_version)
        if pending:
            self.remote_groups_planned += 1
            self.artificial_conflicts += plan.artificial_conflicts
            self.serialization_points += plan.serialization_points
            # Applying the remote writesets' updates is CPU work regardless
            # of how their commit records are flushed.
            yield from self._apply_remote_cpu(replica, len(pending))

        groups = plan.groups
        # Every artificial-conflict-separated group except the last must be
        # "submitted serially in separate fsync calls" (Section 9.3): its
        # commit records get their own synchronous write, which cannot be
        # shared with other pending commits, before the next group (and the
        # local commit) may be handed to the database.
        for group in groups[:-1]:
            yield from self._flush_serial_group(replica, group)
        final_remote = groups[-1] if groups else []
        local_records = 1 if result.committed else 0
        if final_remote or local_records:
            durable = replica.submit_commit_records(len(final_remote) + local_records)
            yield durable
            durable_versions = [info.commit_version for info in final_remote]
            if result.committed:
                durable_versions.append(result.tx_commit_version)
            replica.mark_durable_versions(durable_versions)
        if result.committed:
            # The database announces commits strictly in global order: this
            # commit's effects become visible (and the client is acknowledged)
            # only once every earlier version has been announced here.  A
            # stalled artificial-conflict group in front of us stalls this
            # commit too — the mechanism that drags Tashkent-API towards Base
            # when artificial conflicts are frequent.
            yield replica.wait_for_announcement(result.tx_commit_version)
            replica.observe_commit(result.tx_commit_version)
            return True, None
        return False, "forced-abort" if result.forced_abort else "certification"

    def _flush_serial_group(self, replica: SimReplicaNode, group: list) -> Generator:
        """One conflict-separated group's own synchronous write, with the
        Section 9.2 ordered-flush overhead applied."""
        service = yield from replica.disk.fsync()
        if replica.ordered_flush_overhead_factor > 1.0:
            yield self.env.timeout(
                service * (replica.ordered_flush_overhead_factor - 1.0)
            )
        replica.group_commit_stats.record_flush(len(group))
        replica.mark_durable_versions(info.commit_version for info in group)

    def _commit_refreshed(self, replica: SimReplicaNode, pending: list,
                          base_version: int) -> Generator:
        """Refreshed writesets go through artificial-conflict planning, just
        like the in-band path: each conflict-separated group needs its own
        serial flush, only the final group shares the log writer's grouped
        flush (Section 9.3)."""
        plan = self.conflict_detector.plan(pending, base_version)
        self.remote_groups_planned += 1
        self.artificial_conflicts += plan.artificial_conflicts
        self.serialization_points += plan.serialization_points
        groups = plan.groups
        for group in groups[:-1]:
            yield from self._flush_serial_group(replica, group)
        final = groups[-1] if groups else []
        if final:
            durable = replica.submit_commit_records(len(final))
            yield durable
            replica.mark_durable_versions(info.commit_version for info in final)

    # -- reporting -------------------------------------------------------------------

    def collect_utilization(self) -> dict[str, float]:
        stats = super().collect_utilization()
        stats["artificial_conflicts"] = float(self.artificial_conflicts)
        stats["serialization_points"] = float(self.serialization_points)
        stats["remote_groups_planned"] = float(self.remote_groups_planned)
        if self.remote_groups_planned:
            stats["artificial_conflict_rate"] = (
                self.artificial_conflicts / self.remote_groups_planned
            )
        else:
            stats["artificial_conflict_rate"] = 0.0
        return stats
