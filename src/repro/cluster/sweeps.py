"""Replica-count sweeps: the series plotted in the paper's figures.

Every throughput/response-time figure in the paper is a sweep over the
number of replicas (x axis) for a set of systems (one curve each).
:func:`run_replica_sweep` produces exactly that: a list of
:class:`SweepPoint` per system, which the benchmark harness renders as the
same rows the paper plots and which EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.config import SystemKind, WorkloadName
from repro.cluster.experiment import ExperimentConfig, ExperimentResult, run_experiment

#: Replica counts used by default: a compressed version of the paper's 1-15
#: x axis that still shows the linear growth of Base and the shape of the
#: Tashkent curves without simulating every intermediate point.
DEFAULT_REPLICA_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 12, 15)

#: The four curves of Figures 4-11.
DEFAULT_SYSTEMS: tuple[SystemKind, ...] = (
    SystemKind.BASE,
    SystemKind.TASHKENT_MW,
    SystemKind.TASHKENT_API,
    SystemKind.TASHKENT_API_NO_CERT,
)


@dataclass(frozen=True)
class SweepPoint:
    """One (system, replica count) measurement."""

    system: SystemKind
    num_replicas: int
    result: ExperimentResult

    @property
    def throughput_tps(self) -> float:
        return self.result.throughput_tps

    @property
    def mean_response_ms(self) -> float:
        return self.result.mean_response_ms


@dataclass
class ReplicaSweep:
    """The full set of curves for one workload / IO configuration."""

    workload: WorkloadName
    dedicated_io: bool
    points: list[SweepPoint] = field(default_factory=list)

    def curve(self, system: SystemKind) -> list[SweepPoint]:
        """The points of one system, ordered by replica count."""
        return sorted(
            (p for p in self.points if p.system is system),
            key=lambda p: p.num_replicas,
        )

    def throughput_series(self, system: SystemKind) -> list[tuple[int, float]]:
        return [(p.num_replicas, p.throughput_tps) for p in self.curve(system)]

    def response_series(self, system: SystemKind) -> list[tuple[int, float]]:
        return [(p.num_replicas, p.mean_response_ms) for p in self.curve(system)]

    def max_throughput(self, system: SystemKind) -> float:
        curve = self.curve(system)
        return max((p.throughput_tps for p in curve), default=0.0)

    def speedup_over(self, system: SystemKind, baseline: SystemKind,
                     num_replicas: int | None = None) -> float:
        """Throughput ratio system/baseline at ``num_replicas`` (default: max)."""
        def at(kind: SystemKind) -> float:
            curve = self.curve(kind)
            if not curve:
                return 0.0
            if num_replicas is None:
                return curve[-1].throughput_tps
            for point in curve:
                if point.num_replicas == num_replicas:
                    return point.throughput_tps
            return 0.0

        denominator = at(baseline)
        return at(system) / denominator if denominator else 0.0

    def rows(self) -> list[dict[str, object]]:
        return [point.result.as_row() for point in sorted(
            self.points, key=lambda p: (p.system.value, p.num_replicas)
        )]


def run_replica_sweep(
    workload: WorkloadName,
    *,
    systems: Sequence[SystemKind] = DEFAULT_SYSTEMS,
    replica_counts: Iterable[int] = DEFAULT_REPLICA_COUNTS,
    dedicated_io: bool = False,
    forced_abort_rate: float = 0.0,
    clients_per_replica: int | None = None,
    routing: str | None = None,
    certifier_shards: int = 1,
    certifier_max_flush_batch: int | None = None,
    certifier_crash_schedule: tuple[tuple[int, float, float], ...] = (),
    certifier_gc_headroom: int | None = None,
    vacuum_interval_ms: float | None = None,
    vacuum_batch_rows: int = 4096,
    workload_options: Mapping[str, object] | None = None,
    warmup_ms: float = 1_000.0,
    measure_ms: float = 4_000.0,
    seed: int = 20060418,
) -> ReplicaSweep:
    """Run the replica-count sweep for ``workload`` across ``systems``.

    ``routing`` selects a cluster-scheduler policy (``None`` = the paper's
    pinned clients), so a figure sweep can be re-run in routed mode and
    compared point-for-point against the pinned curves.  ``certifier_shards``
    re-runs the same sweep against a sharded certifier (with
    ``certifier_max_flush_batch`` bounding each shard's fsync group), so the
    figures can be regenerated with the certifier scaled out.
    ``certifier_crash_schedule`` injects deterministic shard-leader outages
    into every point of the sweep — the availability axis: each curve shows
    what the paper's workloads look like while a certifier shard crashes and
    fails over mid-measurement.  ``certifier_gc_headroom`` sweeps the GC
    headroom (snapshot cadence vs. retained-suffix length).
    ``vacuum_interval_ms`` / ``vacuum_batch_rows`` arm and size the
    background maintenance janitor on every replica (cadence vs. pass cost),
    making storage-maintenance pressure a sweepable axis.
    """
    sweep = ReplicaSweep(workload=workload, dedicated_io=dedicated_io)
    for system in systems:
        for num_replicas in replica_counts:
            config = ExperimentConfig(
                system=system,
                workload=workload,
                num_replicas=num_replicas,
                clients_per_replica=clients_per_replica,
                dedicated_io=dedicated_io,
                forced_abort_rate=forced_abort_rate,
                routing=routing,
                certifier_shards=certifier_shards,
                certifier_max_flush_batch=certifier_max_flush_batch,
                certifier_crash_schedule=certifier_crash_schedule,
                certifier_gc_headroom=certifier_gc_headroom,
                vacuum_interval_ms=vacuum_interval_ms,
                vacuum_batch_rows=vacuum_batch_rows,
                workload_options=workload_options,
                warmup_ms=warmup_ms,
                measure_ms=measure_ms,
                seed=seed,
            )
            sweep.points.append(
                SweepPoint(system=system, num_replicas=num_replicas,
                           result=run_experiment(config))
            )
    return sweep
