"""Simulation models of the evaluated systems.

These models reproduce the paper's evaluation (Section 9) by running the
*real* protocol code — certification, ordering, remote-writeset grouping,
artificial-conflict planning — inside the discrete-event simulator, with
disks, CPUs and the network represented by calibrated service-time models.

One model exists per system variant:

* :class:`~repro.cluster.standalone.StandaloneModel` — a single SI database
  with ordinary group commit (the reference point).
* :class:`~repro.cluster.base_system.BaseModel` — ordering in the
  middleware, durability in the database, commits applied serially.
* :class:`~repro.cluster.tashkent_mw.TashkentMWModel` — durability moved to
  the certifier, replica commits are in-memory.
* :class:`~repro.cluster.tashkent_api.TashkentAPIModel` — ordered commits
  (``COMMIT <version>``) grouped inside the database; also covers the
  ``tashAPInoCERT`` ablation.

:func:`~repro.cluster.experiment.run_experiment` builds the right model for
an :class:`~repro.cluster.experiment.ExperimentConfig` and returns an
:class:`~repro.cluster.experiment.ExperimentResult`;
:func:`~repro.cluster.sweeps.run_replica_sweep` produces the replica-count
series plotted in the paper's figures.  ``ExperimentConfig(routing=...)``
swaps the paper's pinned client populations for one scheduler-routed pool
(see :mod:`repro.balancer` and ``docs/scheduler.md``); what each figure
sweep and micro-benchmark measures is described in ``docs/benchmarks.md``.
"""

from repro.cluster.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.cluster.sweeps import ReplicaSweep, SweepPoint, run_replica_sweep
from repro.cluster.nodes import SimCertifierNode, SimReplicaNode

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ReplicaSweep",
    "SimCertifierNode",
    "SimReplicaNode",
    "SweepPoint",
    "run_experiment",
    "run_replica_sweep",
]
