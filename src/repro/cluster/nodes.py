"""Simulated certifier and replica nodes.

A node bundles the devices of one machine in the paper's cluster (one CPU,
one disk, a NIC) with the protocol state that lives on that machine.  The
*control flow* of the protocol is expressed by the system models in the
sibling modules; nodes only provide reusable process fragments such as
"certify this request" or "flush these commit records with group commit".
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.core.certification import (
    CertificationRequest,
    CertificationResult,
    Certifier,
    RemoteWriteSetInfo,
)
from repro.core.config import ReplicationConfig
from repro.core.group_commit import GroupCommitStats
from repro.core.sharding import ShardedCertifier
from repro.sim.devices import CpuServer, DiskChannel, NetworkLink
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.transport import (
    ExplicitFlushPolicy,
    FlushPolicy,
    MergedSubscription,
    Message,
    MessageBus,
    WritesetStream,
    WritesetSubscription,
)
from repro.workloads.spec import WorkloadSpec

#: Bus topic on which the certifier's log writer announces durable versions.
DURABILITY_TOPIC = "durability"


class SimCertifierNode:
    """The certifier: certification CPU, a log disk, and a log-writer process.

    The log writer is the single thread the paper describes: it takes
    *everything* pending, performs one fsync, and only then releases the
    commit decisions of that batch.  Under load the batch grows and the
    writesets-per-fsync ratio rises — this is the mechanism behind
    Tashkent-MW's scalability.
    """

    #: CPU cost of one certification check (writeset intersection is "a fast
    #: main memory operation", an order of magnitude below execution cost).
    certify_cpu_ms = 0.05
    #: Run log garbage collection every this many group flushes (0 disables).
    gc_interval_flushes = 64
    #: Records kept below the replicas' low-water mark (see
    #: :mod:`repro.core.certification` on the GC protocol).
    gc_headroom_versions = 512

    def __init__(
        self,
        env: Environment,
        config: ReplicationConfig,
        rng: RandomStreams,
        *,
        durability_enabled: bool,
        name: str = "certifier",
        propagation_policy: FlushPolicy | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self.durability_enabled = durability_enabled
        #: Bound on records per fsync (None = everything pending, the seed
        #: behaviour).  A bounded log buffer caps a single log device at
        #: ``bound / fsync_time`` certifications per second — the saturation
        #: regime the sharded certifier splits across per-shard disks.
        self.max_flush_batch = config.certifier_max_flush_batch
        if config.certifier_gc_headroom is not None:
            self.gc_headroom_versions = config.certifier_gc_headroom
        self.cpu = CpuServer(env, name=f"{name}-cpu")
        # The certifier's log disk is its own device; it never competes with
        # database page IO, so no interference term.
        self.disk = DiskChannel(env, config.disk, rng, name=f"{name}-disk")
        self.network = NetworkLink(env, config.network, rng, name=f"{name}-lan")
        self.certifier = Certifier(
            forced_abort_rate=config.forced_abort_rate,
            abort_chooser=rng.stream("forced-abort").random,
        )
        self._flush_queue: Store = Store(env, name=f"{name}-flush-queue")
        self.batch_stats = GroupCommitStats()
        self._flushes_since_gc = 0
        # The transport fabric of this node: the log writer announces
        # durability on the bus and offers freshly durable writesets to the
        # stream; replica subscriptions are drained by the bounded-staleness
        # processes with network-modeled delivery.
        self.bus = MessageBus(name=f"{name}-bus")
        #: With no explicit policy, propagation batches align with fsync
        #: batches (the log writer flushes the stream after every sync).
        self._fsync_aligned_propagation = propagation_policy is None
        self.stream = WritesetStream(
            policy=propagation_policy if propagation_policy is not None
            else ExplicitFlushPolicy(),
            bus=self.bus,
        )
        self._subscriptions: dict[str, WritesetSubscription] = {}
        #: Certification fragments blocked on the flush of their version.
        self._durability_waiters: dict[int, Event] = {}
        self.bus.subscribe(DURABILITY_TOPIC, f"{name}-release",
                           callback=self._on_durability_announcement)
        env.process(self._log_writer(), name=f"{name}-log-writer")

    def register_replica(self, replica_name: str, version: int = 0) -> None:
        """Enrol a replica: GC low-water-mark protocol plus stream subscription."""
        if replica_name in self._subscriptions:
            self.certifier.note_replica_version(replica_name, version)
            return
        self._subscriptions[replica_name] = self.stream.attach_replica(
            self.certifier, replica_name, version
        )

    def subscription(self, replica_name: str) -> WritesetSubscription:
        return self._subscriptions[replica_name]

    # -- protocol fragments ------------------------------------------------------

    def certify(self, request: CertificationRequest) -> Generator:
        """Process fragment: full certification round trip (request on wire →
        certification → durable log record → response on wire).

        Returns the :class:`CertificationResult`.
        """
        yield self.network.transfer(request.request_size_bytes())
        yield from self.cpu.execute(self.certify_cpu_ms)
        result = self.certifier.certify(request)
        if result.committed and result.tx_commit_version is not None:
            if self.durability_enabled:
                durable: Event = self.env.event()
                self._durability_waiters[result.tx_commit_version] = durable
                self._flush_queue.put(result.tx_commit_version)
                yield durable
            else:
                # tashAPInoCERT: the decision is released without waiting for
                # the log write (the log still exists, it is just off the
                # critical path and flushed lazily by the writer below), so
                # the writeset also propagates now, not at lazy-flush time —
                # matching the functional service's non-durable branch.
                self._flush_queue.put(result.tx_commit_version)
                self.stream.propagate_from_log(
                    self.certifier.log, (result.tx_commit_version,),
                    now=self.env.now, aligned=self._fsync_aligned_propagation,
                )
        yield self.network.transfer(result.response_size_bytes())
        return result

    def propagate(self, replica_name: str, *,
                  applied_version: int | None = None,
                  extend_horizons: bool = False,
                  watermark: Callable[[], int] | None = None) -> Generator:
        """Process fragment: deliver pending writeset batches to a replica.

        The transport-layer replacement of the old ad-hoc ``fetch_remote``
        pull: the replica's stream subscription is drained and every pending
        batch crosses the LAN as one message, so batch boundaries chosen by
        the flush policy translate directly into network transfers.  Returns
        the delivered writesets, flattened in version order.

        ``applied_version`` is the replica's current watermark: writesets it
        already received in-band with certification responses are skipped
        *before* the transfer, so they never cross the modeled LAN twice.
        ``extend_horizons`` additionally extends the delivered writesets'
        conflict-free horizons back to that watermark — only ordered-commit
        (Tashkent-API) replicas plan against horizons, so only they should
        pay for (and be counted for) the extra intersection tests.
        ``watermark`` re-reads the replica's *live* version right before the
        drain: commits that completed in-band while this fragment was waiting
        on the network/CPU would otherwise be delivered again.
        """
        subscription = self._subscriptions[replica_name]
        # Bounded staleness is the escape hatch for every batching policy: a
        # refresh delivers whatever is pending, even a sub-cap/sub-window
        # tail that the policy would keep holding.
        self.stream.flush(now=self.env.now)
        if applied_version is not None:
            subscription.advance_to(applied_version)
        # The poll request itself (a tiny heartbeat-sized message), plus the
        # certifier CPU to serve it — the same cost the pull protocol paid.
        yield self.network.transfer(16)
        yield from self.cpu.execute(self.certify_cpu_ms)
        if watermark is not None:
            subscription.advance_to(watermark())
        batches = subscription.poll()
        remote: list[RemoteWriteSetInfo] = []
        for batch in batches:
            size = 32 + sum(info.size_bytes() for info in batch)
            yield self.network.transfer(size)
            remote.extend(batch)
        if not batches:
            # Empty answer: the replica learns it is up to date.
            yield self.network.transfer(16)
        elif extend_horizons and applied_version is not None:
            # As with the pull protocol's check_back_to: extend the
            # intersection tests to the caller's version so an ordered
            # (Tashkent-API) replica can submit the batch concurrently.
            remote = self.certifier.extend_remote_horizons(remote, applied_version)
        return remote

    # -- the single log-writer thread -----------------------------------------------

    def _log_writer(self) -> Generator:
        while True:
            first = yield self._flush_queue.get()
            pending = [first] + self._flush_queue.get_all()
            # With an unbounded buffer this is exactly one chunk — the seed
            # path; a bounded buffer turns a backlog into back-to-back
            # fsyncs, which is what makes the device saturable.
            while pending:
                if self.max_flush_batch is None:
                    batch, pending = pending, []
                else:
                    batch = pending[:self.max_flush_batch]
                    pending = pending[self.max_flush_batch:]
                yield from self.disk.fsync()
                self.batch_stats.record_flush(len(batch))
                max_version = max(batch)
                if max_version > self.certifier.log.durable_version:
                    self.certifier.log.mark_durable(max_version)
                # Durability announcement over the bus: wakes every
                # certification fragment blocked on this flush and feeds the
                # writeset stream — with the explicit policy the propagation
                # batch each replica receives is exactly this fsync group.
                self.stream.propagate_from_log(
                    self.certifier.log, batch,
                    now=self.env.now, aligned=self._fsync_aligned_propagation,
                )
                self.bus.publish(DURABILITY_TOPIC, tuple(sorted(batch)))
                # Off the critical path: bound the log by pruning the durable
                # prefix below the replicas' low-water mark every few flushes.
                self._flushes_since_gc += 1
                if self.gc_interval_flushes and self._flushes_since_gc >= self.gc_interval_flushes:
                    self._flushes_since_gc = 0
                    self.certifier.collect_garbage(headroom=self.gc_headroom_versions)

    def _on_durability_announcement(self, message: Message) -> None:
        for version in message.payload:  # type: ignore[union-attr]
            waiter = self._durability_waiters.pop(version, None)
            if waiter is not None:
                waiter.succeed(version)

    # -- statistics -----------------------------------------------------------------------

    @property
    def writesets_per_fsync(self) -> float:
        return self.batch_stats.average_batch_size

    @property
    def fsync_count(self) -> int:
        return self.disk.fsync_count

    def stats(self) -> dict[str, float]:
        stats = {f"certifier_{k}": v for k, v in self.certifier.stats().items()}
        stats.update(
            {
                "certifier_fsyncs": float(self.fsync_count),
                "certifier_writesets_per_fsync": self.writesets_per_fsync,
                "certifier_disk_utilization": self.disk.utilization(),
                "certifier_cpu_utilization": self.cpu.utilization(),
                "certifier_propagation_batches": float(self.stream.stats.flushes),
                "certifier_writesets_per_propagation_batch":
                    self.stream.stats.average_batch_size,
            }
        )
        return stats


class SimShardedCertifierNode:
    """A sharded certifier deployment: N independent certify/flush pipelines.

    Each shard is modeled as its own process with its own CPU lane and its
    own log disk (a sharded certifier in production is N processes, possibly
    N machines), so fsync parallelism is genuinely modeled: shard A's group
    flush proceeds while shard B's disk is busy.  A small coordinator CPU
    serves request admission, read-only requests and subscription drains.

    The protocol surface mirrors :class:`SimCertifierNode` — ``certify`` /
    ``propagate`` fragments, ``register_replica``, ``subscription``,
    ``stats`` — so the system models drive either node unchanged.  The pure
    decision logic is :class:`~repro.core.sharding.ShardedCertifier`; a
    committed cross-shard transaction's decision is released only once its
    fragment is durable on every touched shard, and full writesets are
    offered to their home shard's stream in global-frontier order, merged at
    each replica by a :class:`~repro.transport.MergedSubscription`.
    """

    certify_cpu_ms = SimCertifierNode.certify_cpu_ms
    gc_interval_flushes = SimCertifierNode.gc_interval_flushes
    gc_headroom_versions = SimCertifierNode.gc_headroom_versions

    def __init__(
        self,
        env: Environment,
        config: ReplicationConfig,
        rng: RandomStreams,
        *,
        durability_enabled: bool,
        name: str = "certifier",
        propagation_policy: FlushPolicy | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self.durability_enabled = durability_enabled
        self.max_flush_batch = config.certifier_max_flush_batch
        if config.certifier_gc_headroom is not None:
            self.gc_headroom_versions = config.certifier_gc_headroom
        shards = config.certifier_shards
        self.core = ShardedCertifier(
            shards,
            forced_abort_rate=config.forced_abort_rate,
            abort_chooser=rng.stream("forced-abort").random,
        )
        #: Coordinator CPU: admission, read-only requests, drain serving.
        self.cpu = CpuServer(env, name=f"{name}-cpu")
        self.network = NetworkLink(env, config.network, rng, name=f"{name}-lan")
        self.shard_cpus = [
            CpuServer(env, name=f"{name}-shard{i}-cpu") for i in range(shards)
        ]
        self.shard_disks = [
            DiskChannel(env, config.disk, rng, name=f"{name}-shard{i}-disk")
            for i in range(shards)
        ]
        self._flush_queues = [
            Store(env, name=f"{name}-shard{i}-flush-queue") for i in range(shards)
        ]
        self.batch_stats = GroupCommitStats()
        self._flushes_since_gc = 0
        self.bus = MessageBus(name=f"{name}-bus")
        self._fsync_aligned_propagation = propagation_policy is None
        #: Per-shard propagation streams on one bus, one topic per shard.
        self.streams = [
            WritesetStream(
                policy=propagation_policy if propagation_policy is not None
                else ExplicitFlushPolicy(),
                bus=self.bus,
                topic=f"writesets-shard{i}",
            )
            for i in range(shards)
        ]
        self._subscriptions: dict[str, MergedSubscription] = {}
        #: Global version -> [event, remaining-shard-count]: a committed
        #: transaction's decision is released once every touched shard has
        #: flushed its fragment.
        self._durability_waiters: dict[int, list] = {}
        # Deterministic shard-leader outages (certifier_crash_schedule): a
        # down shard accepts no certifications and flushes nothing; fragments
        # touching it park on the shard's recovery event.  The down state is
        # a counter so touching windows (crash == previous recover) behave as
        # one longer outage regardless of same-timestamp event order;
        # strictly overlapping windows are rejected by config validation.
        self._shard_down: list[int] = [0] * shards
        self._shard_up_events: list[Event | None] = [None] * shards
        self.crash_events = 0
        self.downtime_ms = 0.0
        self.stalled_requests = 0
        for event_index, (shard_id, crash_at_ms, recover_at_ms) in enumerate(
                config.certifier_crash_schedule):
            env.process(
                self._crash_driver(shard_id, crash_at_ms, recover_at_ms),
                name=f"{name}-shard{shard_id}-crash-{event_index}",
            )
        for shard_id in range(shards):
            env.process(self._shard_log_writer(shard_id),
                        name=f"{name}-shard{shard_id}-log-writer")

    @property
    def certifier(self) -> ShardedCertifier:
        """The decision core (the models' watermark/GC access point)."""
        return self.core

    def register_replica(self, replica_name: str, version: int = 0) -> None:
        """Enrol a replica: GC protocol plus one subscription per shard,
        merged behind a single version-ordered view."""
        if replica_name in self._subscriptions:
            self.core.note_replica_version(replica_name, version)
            return
        self.core.note_replica_version(replica_name, version)
        backfill = self.core.fetch_remote_writesets(version, replica=replica_name)
        parts = [
            stream.subscribe(replica_name, from_version=version)
            for stream in self.streams
        ]
        self._subscriptions[replica_name] = MergedSubscription(
            parts, from_version=version, name=replica_name, backfill=backfill
        )

    def subscription(self, replica_name: str) -> MergedSubscription:
        return self._subscriptions[replica_name]

    # -- protocol fragments ------------------------------------------------------

    def certify(self, request: CertificationRequest) -> Generator:
        """Process fragment: full certification round trip, sharded.

        Single-shard requests pay one shard's CPU and (when durability is
        on) one shard's flush — the seed pipeline, just placed on that
        shard's devices.  Cross-shard requests pay certification CPU on
        every touched shard and wait for the slowest touched shard's flush:
        the merge cost the benchmark quantifies.
        """
        yield self.network.transfer(request.request_size_bytes())
        fragments = self.core.partitioner.split(request.writeset)
        if not fragments:
            yield from self.cpu.execute(self.certify_cpu_ms)
        else:
            # A crashed shard leader processes nothing until its group has
            # failed over (the paper's availability window): every fragment
            # aimed at a down shard parks on that shard's recovery event.
            # One count per request, however many down shards it touches.
            if any(self._shard_down[shard_id] for shard_id in fragments):
                self.stalled_requests += 1
            for shard_id in sorted(fragments):
                while self._shard_down[shard_id]:
                    yield self._shard_up_events[shard_id]
            for shard_id in sorted(fragments):
                yield from self.shard_cpus[shard_id].execute(self.certify_cpu_ms)
        # The split above is handed through so the hot path hashes each
        # item exactly once.
        result = self.core.certify(request, fragments=fragments)
        if result.committed and result.tx_commit_version is not None:
            version = result.tx_commit_version
            record = self.core.record_at(version)
            for shard_id, local in record.shard_locals:
                self._flush_queues[shard_id].put((version, local))
            if self.durability_enabled:
                durable: Event = self.env.event()
                self._durability_waiters[version] = [durable, len(record.shard_locals)]
                yield durable
            else:
                # tashAPInoCERT: decision released without waiting for the
                # (lazily flushed) log writes, so propagate immediately.
                self._propagate_up_to(self.core.last_version)
        yield self.network.transfer(result.response_size_bytes())
        return result

    def propagate(self, replica_name: str, *,
                  applied_version: int | None = None,
                  extend_horizons: bool = False,
                  watermark: Callable[[], int] | None = None) -> Generator:
        """Process fragment: deliver the merged pending batches to a replica.

        Identical contract to :meth:`SimCertifierNode.propagate`; the drained
        batch is already interleaved by global version, so it crosses the
        LAN as one message per merged release.
        """
        subscription = self._subscriptions[replica_name]
        for stream in self.streams:
            stream.flush(now=self.env.now)
        if applied_version is not None:
            subscription.advance_to(applied_version)
        yield self.network.transfer(16)
        yield from self.cpu.execute(self.certify_cpu_ms)
        if watermark is not None:
            subscription.advance_to(watermark())
        batches = subscription.poll()
        remote: list[RemoteWriteSetInfo] = []
        for batch in batches:
            size = 32 + sum(info.size_bytes() for info in batch)
            yield self.network.transfer(size)
            remote.extend(batch)
        if not batches:
            yield self.network.transfer(16)
        elif extend_horizons and applied_version is not None:
            remote = self.core.extend_remote_horizons(remote, applied_version)
        return remote

    # -- per-shard log writers -----------------------------------------------------

    def _shard_log_writer(self, shard_id: int) -> Generator:
        shard = self.core.shards[shard_id]
        queue = self._flush_queues[shard_id]
        disk = self.shard_disks[shard_id]
        while True:
            first = yield queue.get()
            pending = [first] + queue.get_all()
            while pending:
                while self._shard_down[shard_id]:
                    yield self._shard_up_events[shard_id]
                if self.max_flush_batch is None:
                    batch, pending = pending, []
                else:
                    batch = pending[:self.max_flush_batch]
                    pending = pending[self.max_flush_batch:]
                yield from disk.fsync()
                self.batch_stats.record_flush(len(batch))
                top_local = max(local for _, local in batch)
                if top_local > shard.log.durable_version:
                    shard.log.mark_durable(top_local)
                for version, _local in batch:
                    waiter = self._durability_waiters.get(version)
                    if waiter is not None:
                        waiter[1] -= 1
                        if waiter[1] == 0:
                            del self._durability_waiters[version]
                            waiter[0].succeed(version)
                self._propagate_up_to()
                self.bus.publish(DURABILITY_TOPIC, tuple(v for v, _ in batch))
                self._flushes_since_gc += 1
                if (self.gc_interval_flushes
                        and self._flushes_since_gc >= self.gc_interval_flushes):
                    self._flushes_since_gc = 0
                    self.core.collect_garbage(headroom=self.gc_headroom_versions)

    # -- fault injection (certifier_crash_schedule) ---------------------------------

    def _crash_driver(self, shard_id: int, crash_at_ms: float,
                      recover_at_ms: float) -> Generator:
        """One scheduled shard-leader outage: down at ``crash_at_ms``, back
        (new leader elected, state transferred) at ``recover_at_ms``."""
        yield self.env.timeout(crash_at_ms - self.env.now)
        self._shard_down[shard_id] += 1
        if self._shard_up_events[shard_id] is None:
            self._shard_up_events[shard_id] = self.env.event()
        self.crash_events += 1
        yield self.env.timeout(recover_at_ms - crash_at_ms)
        self._shard_down[shard_id] -= 1
        self.downtime_ms += recover_at_ms - crash_at_ms
        if self._shard_down[shard_id] == 0:
            up_event = self._shard_up_events[shard_id]
            self._shard_up_events[shard_id] = None
            if up_event is not None:
                up_event.succeed(shard_id)

    def calibrated_failover_window_ms(self, shard_id: int,
                                      model: "RecoveryTimingModel | None" = None,
                                      ) -> float:
        """Modeled failover window for one shard, from its live state.

        A crash-schedule window chosen below this value under-models the
        outage: a replacement leader must state-transfer the shard's
        retained log suffix (snapshot + suffix, Section 9.6 — "essentially a
        file transfer") before it can serve.  The suffix length is read off
        the live shard log, so tighter GC headroom directly shortens the
        calibrated window — the trade the ``certifier_gc_headroom`` knob
        sweeps.
        """
        from repro.recovery.timings import RecoveryTimingModel

        model = model if model is not None else RecoveryTimingModel()
        suffix_entries = self.core.shards[shard_id].log.retained_count
        return model.certifier_bootstrap_seconds(0, suffix_entries) * 1000.0

    def _propagate_up_to(self, version: int | None = None) -> None:
        """Offer committed records up to ``version`` to their home streams,
        in strict global order (the producer half of the merged view).

        The frontier-ordered walk lives in
        :meth:`ShardedCertifier.take_propagatable` (shared with the
        functional service); ``None`` means "whatever is fully durable", so
        a flush that completes the last outstanding fragment propagates its
        own records.
        """
        touched: set[int] = set()
        for record in self.core.take_propagatable(version):
            self.streams[record.home_shard].offer(
                RemoteWriteSetInfo(
                    commit_version=record.commit_version,
                    writeset=record.writeset,
                    origin_replica=record.origin_replica,
                    conflict_free_back_to=self.core.certified_back_to(
                        record.commit_version),
                ),
                now=self.env.now,
            )
            touched.add(record.home_shard)
        for shard_id in touched:
            if self._fsync_aligned_propagation:
                self.streams[shard_id].flush(now=self.env.now)
            else:
                self.streams[shard_id].flush_due(now=self.env.now)

    # -- statistics -----------------------------------------------------------------------

    @property
    def writesets_per_fsync(self) -> float:
        return self.batch_stats.average_batch_size

    @property
    def fsync_count(self) -> int:
        return sum(disk.fsync_count for disk in self.shard_disks)

    def stats(self) -> dict[str, float]:
        stats = {f"certifier_{k}": v for k, v in self.core.stats().items()}
        disk_utils = [disk.utilization() for disk in self.shard_disks]
        cpu_utils = [cpu.utilization() for cpu in self.shard_cpus]
        propagation = GroupCommitStats()
        for stream in self.streams:
            propagation.merge(stream.stats)
        stats.update(
            {
                "certifier_fsyncs": float(self.fsync_count),
                "certifier_writesets_per_fsync": self.writesets_per_fsync,
                "certifier_disk_utilization": max(disk_utils, default=0.0),
                "certifier_cpu_utilization": max(cpu_utils + [self.cpu.utilization()]),
                "certifier_mean_shard_disk_utilization": (
                    sum(disk_utils) / len(disk_utils) if disk_utils else 0.0
                ),
                "certifier_propagation_batches": float(propagation.flushes),
                "certifier_writesets_per_propagation_batch":
                    propagation.average_batch_size,
                "certifier_shards": float(self.config.certifier_shards),
                "certifier_crash_events": float(self.crash_events),
                "certifier_downtime_ms": self.downtime_ms,
                "certifier_stalled_requests": float(self.stalled_requests),
            }
        )
        return stats


class SimReplicaNode:
    """One replica machine: CPU, disk, the proxy's version watermark, and a
    database log-writer used by the group-commit (ordered) configurations."""

    def __init__(
        self,
        env: Environment,
        index: int,
        config: ReplicationConfig,
        workload: WorkloadSpec,
        rng: RandomStreams,
        *,
        ordered_flush_overhead_factor: float = 1.0,
    ) -> None:
        self.env = env
        self.index = index
        self.name = f"replica-{index}"
        self.config = config
        self.workload = workload
        self.cpu = CpuServer(env, name=f"{self.name}-cpu")
        self.disk = DiskChannel(
            env,
            config.disk,
            rng,
            name=f"{self.name}-disk",
            page_io_interference_ms=workload.page_io_interference_ms,
        )
        #: Serialises the proxy's [C4]/[C5] steps (Base and Tashkent-MW).
        self.commit_lock = Resource(env, capacity=1, name=f"{self.name}-commit-lock")
        #: The replica's GSI version watermark (the proxy's replica_version).
        self.replica_version = 0
        #: Multiplier on the WAL flush time of ordered (grouped) commits.
        #: Models the larger WAL volume PostgreSQL writes per flush when
        #: every remote writeset commits as its own transaction with
        #: before/after page images — the effect the paper cites to explain
        #: the residual Tashkent-MW vs Tashkent-API gap (Section 9.2).
        self.ordered_flush_overhead_factor = ordered_flush_overhead_factor
        self._commit_queue: Store = Store(env, name=f"{self.name}-commit-queue")
        self.group_commit_stats = GroupCommitStats()
        # Ordered-commit announcement state (Tashkent-API): commit records may
        # be flushed in any order, but effects become visible strictly in
        # global version order (the paper's semaphore, Section 8.3).
        self.announced_version = 0
        self._durable_versions: set[int] = set()
        self._announce_waiters: list[tuple[int, Event]] = []
        env.process(self._db_log_writer(), name=f"{self.name}-log-writer")

    # -- version bookkeeping -------------------------------------------------------

    def claim_remote(self, remote_infos) -> list:
        """Filter remote writesets to those not yet applied and claim them.

        Claiming advances the watermark immediately so that concurrent local
        commits at the same replica do not double-apply (and double-charge
        the CPU for) the same remote writesets.
        """
        pending = [
            info for info in remote_infos if info.commit_version > self.replica_version
        ]
        if pending:
            self.replica_version = max(info.commit_version for info in pending)
        return pending

    def observe_commit(self, commit_version: int) -> None:
        if commit_version > self.replica_version:
            self.replica_version = commit_version

    # -- ordered announcement (COMMIT <version> semantics) -------------------------

    def mark_durable_versions(self, versions) -> None:
        """Record that the commit records for ``versions`` are on disk here.

        Announcements then advance through every contiguous durable version,
        waking any commit waiting for its turn.
        """
        for version in versions:
            if version > self.announced_version:
                self._durable_versions.add(version)
        advanced = False
        while (self.announced_version + 1) in self._durable_versions:
            self._durable_versions.discard(self.announced_version + 1)
            self.announced_version += 1
            advanced = True
        if advanced and self._announce_waiters:
            still_waiting: list[tuple[int, Event]] = []
            for version, event in self._announce_waiters:
                if version <= self.announced_version:
                    event.succeed(version)
                else:
                    still_waiting.append((version, event))
            self._announce_waiters = still_waiting

    def wait_for_announcement(self, version: int) -> Event:
        """Event that triggers once ``version`` has been announced here."""
        event = self.env.event()
        if version <= self.announced_version:
            event.succeed(version)
        else:
            self._announce_waiters.append((version, event))
        return event

    # -- group commit (standalone + Tashkent-API databases) ------------------------------

    def submit_commit_records(self, record_count: int) -> Event:
        """Queue ``record_count`` commit records for the next WAL flush.

        Returns the event that triggers once those records are durable (the
        flush completed).  Many concurrent submissions share one flush.
        """
        done = self.env.event()
        self._commit_queue.put((record_count, done))
        return done

    def _db_log_writer(self) -> Generator:
        while True:
            first = yield self._commit_queue.get()
            batch = [first] + self._commit_queue.get_all()
            records = sum(count for count, _ in batch)
            service = yield from self.disk.fsync()
            if self.ordered_flush_overhead_factor > 1.0:
                yield self.env.timeout(service * (self.ordered_flush_overhead_factor - 1.0))
            self.group_commit_stats.record_flush(records)
            for _count, done in batch:
                done.succeed()

    # -- statistics ------------------------------------------------------------------------

    @property
    def fsync_count(self) -> int:
        return self.disk.fsync_count

    @property
    def records_per_fsync(self) -> float:
        return self.group_commit_stats.average_batch_size

    def stats(self) -> dict[str, float]:
        return {
            "cpu_utilization": self.cpu.utilization(),
            "disk_utilization": self.disk.utilization(),
            "fsyncs": float(self.fsync_count),
            "records_per_fsync": self.records_per_fsync,
            "replica_version": float(self.replica_version),
        }
