"""Closed-loop client processes.

The paper drives each replica with a fixed number of closed-loop clients
("we determine the number of clients needed to generate 85% of the peak
throughput [of a standalone database].  In the following experiments, each
replica is driven at this load").  A closed-loop client issues one
transaction, waits for it to complete, and immediately issues the next; for
AllUpdates this is literally "back-to-back short update transactions".

:func:`client_process` is that pinned client.  :func:`routed_client_process`
is its scheduler-fronted counterpart: the same closed loop, but every
transaction first passes through the cluster scheduler
(:mod:`repro.balancer`) — policy routing, per-replica admission control,
bounded queueing with a deadline — before executing on whichever replica
was chosen.  Admission failures are recorded as aborted transactions
(reasons ``admission-timeout`` / ``admission-rejected``) so the front door's
behaviour shows up in the same goodput and abort-rate metrics the paper
plots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.balancer import ClusterScheduler, RoutingRequest, TicketState
from repro.errors import SchedulerSaturatedError
from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector, TransactionRecord
from repro.sim.rng import RandomStreams
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.models import SystemModel
    from repro.cluster.nodes import SimReplicaNode

#: Pseudo-replica name under which admission failures are recorded.
BALANCER_NODE = "balancer"

#: Back-off before retrying after the bounded admission queue shed the
#: request (milliseconds).
ADMISSION_RETRY_BACKOFF_MS = 1.0


def client_process(
    env: Environment,
    model: "SystemModel",
    replica: "SimReplicaNode",
    *,
    replica_index: int,
    client_index: int,
    workload: WorkloadSpec,
    rng: RandomStreams,
    metrics: MetricsCollector,
    stop_ms: float,
    think_time_ms: float = 0.0,
) -> Generator:
    """One closed-loop client bound to one replica."""
    sequence = 0
    while env.now < stop_ms:
        profile = workload.next_transaction(
            rng,
            replica_index=replica_index,
            client_index=client_index,
            sequence=sequence,
        )
        sequence += 1
        start_ms = env.now
        # BEGIN: the transaction reads from the replica's current snapshot.
        tx_start_version = replica.replica_version
        # Local execution (reads and writes run against the local snapshot).
        yield from replica.cpu.execute(profile.exec_cpu_ms)
        if profile.readonly:
            # Read-only transactions commit locally, never contact the
            # certifier, and never wait for a disk write.
            committed = True
            abort_reason = None
        else:
            committed, abort_reason = yield from model.commit_update(
                replica, profile, tx_start_version
            )
        metrics.record(
            TransactionRecord(
                start_ms=start_ms,
                end_ms=env.now,
                committed=committed,
                readonly=profile.readonly,
                replica=replica.name,
                aborted_reason=abort_reason,
            )
        )
        if think_time_ms > 0:
            yield env.timeout(
                rng.expovariate(f"think:{replica_index}:{client_index}", think_time_ms)
            )


def routed_client_process(
    env: Environment,
    model: "SystemModel",
    scheduler: ClusterScheduler,
    *,
    home_index: int,
    client_index: int,
    workload: WorkloadSpec,
    rng: RandomStreams,
    metrics: MetricsCollector,
    stop_ms: float,
    think_time_ms: float = 0.0,
    admission_timeout_ms: float = 200.0,
) -> Generator:
    """One closed-loop client routed per-transaction by the scheduler.

    ``home_index`` is the replica this client *would* be pinned to under the
    paper's methodology; it still keys the workload's key space (so routed
    and pinned runs generate identical transaction populations) but has no
    bearing on where a transaction executes.
    """
    client_name = f"client-{home_index}-{client_index}"
    sequence = 0
    while env.now < stop_ms:
        profile = workload.next_transaction(
            rng,
            replica_index=home_index,
            client_index=client_index,
            sequence=sequence,
        )
        sequence += 1
        start_ms = env.now
        request = RoutingRequest(
            client=client_name,
            readonly=profile.readonly,
            item_ids=profile.writeset.item_ids if not profile.readonly else frozenset(),
            home_index=home_index,
        )
        try:
            ticket = scheduler.submit(request, now=env.now)
        except SchedulerSaturatedError:
            # The bounded wait queue is full: the front door sheds the
            # request.  Record the rejection and back off briefly.
            metrics.record(TransactionRecord(
                start_ms=start_ms, end_ms=env.now, committed=False,
                readonly=profile.readonly, replica=BALANCER_NODE,
                aborted_reason="admission-rejected",
            ))
            yield env.timeout(ADMISSION_RETRY_BACKOFF_MS)
            continue
        if ticket.state is TicketState.QUEUED:
            # Wait for a slot or the deadline, whichever fires first.  The
            # race is decided by the ticket's state, not the waker: a
            # promotion landing on the same timestamp as the deadline wins.
            woken = env.event()

            def _wake(_event_or_ticket, woken=woken) -> None:
                if not woken.triggered:
                    woken.succeed()

            ticket.on_admit = _wake
            env.timeout(admission_timeout_ms).add_callback(_wake)
            yield woken
            if ticket.state is not TicketState.ADMITTED:
                scheduler.give_up(ticket, now=env.now)
                metrics.record(TransactionRecord(
                    start_ms=start_ms, end_ms=env.now, committed=False,
                    readonly=profile.readonly, replica=BALANCER_NODE,
                    aborted_reason="admission-timeout",
                ))
                continue
        assert ticket.replica_index is not None
        replica = model.replicas[ticket.replica_index]
        try:
            # BEGIN on the routed replica: the snapshot is *its* watermark.
            tx_start_version = replica.replica_version
            yield from replica.cpu.execute(profile.exec_cpu_ms)
            if profile.readonly:
                committed, abort_reason = True, None
            else:
                committed, abort_reason = yield from model.commit_update(
                    replica, profile, tx_start_version
                )
        finally:
            scheduler.release(ticket, now=env.now)
        metrics.record(
            TransactionRecord(
                start_ms=start_ms,
                end_ms=env.now,
                committed=committed,
                readonly=profile.readonly,
                replica=replica.name,
                aborted_reason=abort_reason,
            )
        )
        if think_time_ms > 0:
            yield env.timeout(
                rng.expovariate(f"think:{home_index}:{client_index}", think_time_ms)
            )
