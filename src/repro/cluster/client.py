"""Closed-loop client processes.

The paper drives each replica with a fixed number of closed-loop clients
("we determine the number of clients needed to generate 85% of the peak
throughput [of a standalone database].  In the following experiments, each
replica is driven at this load").  A closed-loop client issues one
transaction, waits for it to complete, and immediately issues the next; for
AllUpdates this is literally "back-to-back short update transactions".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector, TransactionRecord
from repro.sim.rng import RandomStreams
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.models import SystemModel
    from repro.cluster.nodes import SimReplicaNode


def client_process(
    env: Environment,
    model: "SystemModel",
    replica: "SimReplicaNode",
    *,
    replica_index: int,
    client_index: int,
    workload: WorkloadSpec,
    rng: RandomStreams,
    metrics: MetricsCollector,
    stop_ms: float,
    think_time_ms: float = 0.0,
) -> Generator:
    """One closed-loop client bound to one replica."""
    sequence = 0
    while env.now < stop_ms:
        profile = workload.next_transaction(
            rng,
            replica_index=replica_index,
            client_index=client_index,
            sequence=sequence,
        )
        sequence += 1
        start_ms = env.now
        # BEGIN: the transaction reads from the replica's current snapshot.
        tx_start_version = replica.replica_version
        # Local execution (reads and writes run against the local snapshot).
        yield from replica.cpu.execute(profile.exec_cpu_ms)
        if profile.readonly:
            # Read-only transactions commit locally, never contact the
            # certifier, and never wait for a disk write.
            committed = True
            abort_reason = None
        else:
            committed, abort_reason = yield from model.commit_update(
                replica, profile, tx_start_version
            )
        metrics.record(
            TransactionRecord(
                start_ms=start_ms,
                end_ms=env.now,
                committed=committed,
                readonly=profile.readonly,
                replica=replica.name,
                aborted_reason=abort_reason,
            )
        )
        if think_time_ms > 0:
            yield env.timeout(
                rng.expovariate(f"think:{replica_index}:{client_index}", think_time_ms)
            )
