"""The standalone (non-replicated) SI database model.

The reference point of the evaluation: "the functions of ordering the
transaction commits and making the effects of transactions durable are
performed in one single action, namely the writing of the commit record to
disk.  For efficiency many of these writes are grouped into a single disk
operation."  Throughput is therefore limited by group commit on the single
WAL channel, not by serial fsyncs.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.models import SystemModel
from repro.cluster.nodes import SimReplicaNode
from repro.workloads.spec import TransactionProfile


class StandaloneModel(SystemModel):
    """A single database with ordinary group commit and no middleware."""

    uses_ordered_commits = True

    def commit_update(self, replica: SimReplicaNode, profile: TransactionProfile,
                      tx_start_version: int) -> Generator:
        # Ordering and durability happen together: the commit record joins
        # whatever group the log writer flushes next.
        durable = replica.submit_commit_records(1)
        yield durable
        replica.observe_commit(replica.replica_version + 1)
        return True, None
