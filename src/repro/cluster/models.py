"""Common scaffolding for the simulated system models.

A :class:`SystemModel` builds the nodes and client processes for one
configuration and implements the system-specific commit path
(:meth:`commit_update`) that the client process calls for every update
transaction.  Subclasses implement exactly the difference the paper
describes between Base, Tashkent-MW and Tashkent-API: what happens between
receiving the certifier's answer and acknowledging the commit to the client.
"""

from __future__ import annotations

import abc
from typing import Generator

from repro.balancer import ClusterScheduler, routing_policy_from_name
from repro.core.certification import CertificationRequest
from repro.core.config import ReplicationConfig, SystemKind
from repro.core.stats import JanitorStats
from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import RandomStreams
from repro.workloads.spec import TransactionProfile, WorkloadSpec
from repro.cluster.client import client_process, routed_client_process
from repro.cluster.nodes import (
    SimCertifierNode,
    SimReplicaNode,
    SimShardedCertifierNode,
)


class SystemModel(abc.ABC):
    """Base class for the four simulated systems."""

    #: Set by subclasses: whether replicas use the ordered-commit log writer.
    uses_ordered_commits = False
    #: Flush-time multiplier applied to replicas (see SimReplicaNode).
    ordered_flush_overhead_factor = 1.0
    #: Modeled CPU cost of one candidate-row visit during an incremental
    #: vacuum pass (milliseconds).  With the default 4096-row batch a
    #: maintenance tick charges ~2 ms of replica CPU — cheap enough to run
    #: continuously, which is the point of the candidate index.
    vacuum_cpu_ms_per_row = 0.0005

    def __init__(
        self,
        env: Environment,
        config: ReplicationConfig,
        workload: WorkloadSpec,
        rng: RandomStreams,
        metrics: MetricsCollector,
    ) -> None:
        self.env = env
        self.config = config
        self.workload = workload
        self.rng = rng
        self.metrics = metrics
        self.certifier_node = self._build_certifier()
        self.replicas = [
            SimReplicaNode(
                env,
                index,
                config,
                workload,
                rng,
                ordered_flush_overhead_factor=self.ordered_flush_overhead_factor,
            )
            for index in range(config.num_replicas)
        ]
        if self.certifier_node is not None:
            # Every replica joins the log-GC low-water-mark protocol (and the
            # writeset stream) up front so the certifier never prunes records
            # an idle replica still needs (see repro.core.certification), and
            # runs a bounded-staleness process that drains its subscription
            # over the transport — which doubles as the watermark heartbeat,
            # so a read-heavy replica that rarely certifies cannot pin the
            # low-water mark at 0 forever.
            for replica in self.replicas:
                self.certifier_node.register_replica(replica.name)
                env.process(self._staleness_refresh(replica),
                            name=f"{replica.name}-staleness-refresh")
        self.janitor_stats = JanitorStats()
        if config.vacuum_interval_ms is not None and self.certifier_node is not None:
            env.process(self._maintenance_janitor(), name="maintenance-janitor")
        self.scheduler = self._build_scheduler()

    # -- construction ------------------------------------------------------------

    def _build_certifier(self) -> "SimCertifierNode | SimShardedCertifierNode | None":
        if self.config.system is SystemKind.STANDALONE:
            return None
        # Any crash schedule is served by the sharded node (its 1-shard core
        # is equivalence-tested against the single certifier), since fault
        # injection is modeled at shard granularity.
        if self.config.certifier_shards > 1 or self.config.certifier_crash_schedule:
            return SimShardedCertifierNode(
                self.env,
                self.config,
                self.rng,
                durability_enabled=self.config.system.durability_in_certifier,
            )
        return SimCertifierNode(
            self.env,
            self.config,
            self.rng,
            durability_enabled=self.config.system.durability_in_certifier,
        )

    def _build_scheduler(self) -> ClusterScheduler | None:
        """The cluster scheduler, when dynamic routing is configured.

        Endpoint signals are wired live: the applied version is the
        replica's proxy watermark and the lag is the number of writesets
        pending on its transport subscription at the certifier.
        """
        if self.config.routing_policy is None or self.certifier_node is None:
            return None
        scheduler = ClusterScheduler(
            routing_policy_from_name(self.config.routing_policy),
            multiprogramming_limit=self.config.multiprogramming_limit,
            max_queue_depth=self.config.admission_queue_depth,
            queue_timeout_ms=self.config.admission_timeout_ms,
        )
        certifier_node = self.certifier_node
        for replica in self.replicas:
            scheduler.add_replica(
                replica.name,
                applied_version=lambda r=replica: r.replica_version,
                lag=lambda name=replica.name:
                    certifier_node.subscription(name).pending_writesets,
            )
        return scheduler

    def start_clients(self, stop_ms: float) -> None:
        """Spawn the closed-loop clients.

        Pinned mode (the paper's methodology, ``routing_policy=None``)
        attaches ``clients_per_replica`` clients to every replica.  Routed
        mode spawns the same total population as one shared pool whose
        transactions are routed per-transaction by the cluster scheduler;
        each client keeps its pinned-mode ``home_index`` so the workload
        generates an identical key space and conflict structure — only the
        placement of transactions changes.
        """
        if self.scheduler is not None:
            for home_index in range(self.config.num_replicas):
                for client_index in range(self.config.clients_per_replica):
                    self.env.process(
                        routed_client_process(
                            self.env,
                            self,
                            self.scheduler,
                            home_index=home_index,
                            client_index=client_index,
                            workload=self.workload,
                            rng=self.rng,
                            metrics=self.metrics,
                            stop_ms=stop_ms,
                            think_time_ms=self.workload.think_time_ms,
                            admission_timeout_ms=self.config.admission_timeout_ms,
                        ),
                        name=f"routed-client-{home_index}-{client_index}",
                    )
            return
        for replica_index, replica in enumerate(self.replicas):
            for client_index in range(self.config.clients_per_replica):
                self.env.process(
                    client_process(
                        self.env,
                        self,
                        replica,
                        replica_index=replica_index,
                        client_index=client_index,
                        workload=self.workload,
                        rng=self.rng,
                        metrics=self.metrics,
                        stop_ms=stop_ms,
                        think_time_ms=self.workload.think_time_ms,
                    ),
                    name=f"client-{replica_index}-{client_index}",
                )

    # -- the system-specific commit path ----------------------------------------------

    @abc.abstractmethod
    def commit_update(self, replica: SimReplicaNode, profile: TransactionProfile,
                      tx_start_version: int) -> Generator:
        """Process fragment handling the commit of one update transaction.

        Returns ``(committed, abort_reason)``.
        """

    # -- shared protocol fragments ---------------------------------------------------------

    def _certify(self, replica: SimReplicaNode, profile: TransactionProfile,
                 tx_start_version: int, *, check_remote_back_to: int | None = None) -> Generator:
        """Send the writeset to the certifier and wait for its decision."""
        assert self.certifier_node is not None
        request = CertificationRequest(
            tx_start_version=tx_start_version,
            writeset=profile.writeset,
            replica_version=replica.replica_version,
            origin_replica=replica.name,
            check_remote_back_to=check_remote_back_to,
        )
        result = yield from self.certifier_node.certify(request)
        return result

    def _staleness_refresh(self, replica: SimReplicaNode) -> Generator:
        """Bounded staleness over the transport (Section 6.2).

        Every ``staleness_bound_ms`` the replica drains its writeset
        subscription: pending batches are delivered with network-modeled
        delay, anything not already applied in-band with a certification
        response is applied (CPU cost plus the system-specific commit, see
        :meth:`_commit_refreshed`), and the replica's applied version is
        reported to the certifier's log-GC low-water-mark protocol.
        """
        assert self.certifier_node is not None
        period = self.config.staleness_bound_ms
        while True:
            yield self.env.timeout(period)
            base_version = replica.replica_version
            remote = yield from self.certifier_node.propagate(
                replica.name, applied_version=base_version,
                extend_horizons=self.config.system.supports_ordered_commit,
                watermark=lambda: replica.replica_version,
            )
            pending = replica.claim_remote(remote)
            if pending:
                yield from self._apply_remote_cpu(replica, len(pending))
                yield from self._commit_refreshed(replica, pending, base_version)
            self.certifier_node.certifier.note_replica_version(
                replica.name, replica.replica_version
            )

    def _commit_refreshed(self, replica: SimReplicaNode, pending: list,
                          base_version: int) -> Generator:
        """Commit a batch of refreshed remote writesets at the replica.

        ``base_version`` is the replica's watermark before the batch was
        claimed (what the proxy would plan submission against).  Default
        (durability in the database, serial commits — Base): the grouped
        remote transaction costs one synchronous write under the commit
        lock.  Subclasses override to match their commit machinery.
        """
        yield replica.commit_lock.request()
        try:
            yield from replica.disk.fsync()
        finally:
            replica.commit_lock.release()

    def _maintenance_janitor(self) -> Generator:
        """Background maintenance (``ReplicationConfig.vacuum_interval_ms``).

        Every tick charges each replica the CPU cost of one incremental
        vacuum pass (``vacuum_batch_rows`` candidate-row visits — the sim
        replicas are timing models, so the cost is what is modeled) and
        drives the certifier's log GC/compaction on the janitor's cadence
        instead of only piggybacking on certification-request counts.
        """
        assert self.certifier_node is not None
        period = float(self.config.vacuum_interval_ms)
        pass_cost = self.config.vacuum_batch_rows * self.vacuum_cpu_ms_per_row
        while True:
            yield self.env.timeout(period)
            for replica in self.replicas:
                yield from replica.cpu.execute(pass_cost)
                self.janitor_stats.vacuum_passes += 1
                self.janitor_stats.rows_visited += self.config.vacuum_batch_rows
            pruned = self.certifier_node.certifier.collect_garbage(
                headroom=self.certifier_node.gc_headroom_versions
            )
            self.janitor_stats.certifier_gc_runs += 1
            self.janitor_stats.certifier_records_pruned += pruned
            self.janitor_stats.runs += 1

    def _apply_remote_cpu(self, replica: SimReplicaNode, count: int) -> Generator:
        """Charge the CPU cost of applying ``count`` remote writesets."""
        if count <= 0:
            return 0.0
        cost = self.workload.writeset_apply_cpu_ms * count
        yield from replica.cpu.execute(cost)
        return cost

    # -- reporting --------------------------------------------------------------------------

    def collect_utilization(self) -> dict[str, float]:
        stats: dict[str, float] = {}
        if self.certifier_node is not None:
            stats.update(self.certifier_node.stats())
        cpu_utils = [replica.cpu.utilization() for replica in self.replicas]
        disk_utils = [replica.disk.utilization() for replica in self.replicas]
        stats["replica_mean_cpu_utilization"] = (
            sum(cpu_utils) / len(cpu_utils) if cpu_utils else 0.0
        )
        stats["replica_mean_disk_utilization"] = (
            sum(disk_utils) / len(disk_utils) if disk_utils else 0.0
        )
        stats["replica_total_fsyncs"] = float(
            sum(replica.fsync_count for replica in self.replicas)
        )
        records = [r.records_per_fsync for r in self.replicas if r.fsync_count]
        stats["replica_records_per_fsync"] = (
            sum(records) / len(records) if records else 0.0
        )
        if self.config.vacuum_interval_ms is not None:
            stats["janitor_runs"] = float(self.janitor_stats.runs)
            stats["janitor_vacuum_passes"] = float(self.janitor_stats.vacuum_passes)
            stats["janitor_certifier_records_pruned"] = float(
                self.janitor_stats.certifier_records_pruned
            )
        if self.scheduler is not None:
            sched = self.scheduler.stats
            stats["scheduler_queued"] = float(sched.queued)
            stats["scheduler_admission_timeouts"] = float(sched.admission_timeouts)
            stats["scheduler_load_shed"] = float(sched.saturation_rejections)
            routed = list(sched.routed_per_replica.values())
            if routed:
                mean = sum(routed) / len(routed)
                stats["scheduler_routed_imbalance"] = (
                    max(routed) / mean if mean else 0.0
                )
        return stats
