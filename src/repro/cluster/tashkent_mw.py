"""The Tashkent-MW system model.

Durability is united with ordering *in the middleware*: the certifier's
persistent log is the durable copy, so the replica databases run with
synchronous commits disabled.  The proxy still applies remote writesets and
the local commit serially (the control flow is identical to Base), but both
are now fast in-memory operations; the only synchronous write on the commit
path is the certifier's group flush, which batches writesets from every
replica in the system.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.models import SystemModel
from repro.cluster.nodes import SimReplicaNode
from repro.workloads.spec import TransactionProfile


class TashkentMWModel(SystemModel):
    """Durability united with ordering in the replication middleware."""

    def commit_update(self, replica: SimReplicaNode, profile: TransactionProfile,
                      tx_start_version: int) -> Generator:
        # The certifier makes the writeset durable (group-committed with every
        # other outstanding writeset) before answering.
        result = yield from self._certify(replica, profile, tx_start_version)

        yield replica.commit_lock.request()
        try:
            pending = replica.claim_remote(result.remote_writesets)
            if pending:
                yield from self._apply_remote_cpu(replica, len(pending))
                # Committing the grouped remote writesets is an in-memory
                # action: no synchronous write at the replica.
                yield from replica.cpu.execute(self.workload.in_memory_commit_ms)
            if result.committed:
                yield from replica.cpu.execute(self.workload.in_memory_commit_ms)
                replica.observe_commit(result.tx_commit_version)
        finally:
            replica.commit_lock.release()

        if result.committed:
            return True, None
        return False, "forced-abort" if result.forced_abort else "certification"

    def _commit_refreshed(self, replica: SimReplicaNode, pending: list,
                          base_version: int) -> Generator:
        """Refreshed writesets commit in memory: durability lives with the
        certifier, so the staleness path costs CPU only."""
        yield replica.commit_lock.request()
        try:
            yield from replica.cpu.execute(self.workload.in_memory_commit_ms)
        finally:
            replica.commit_lock.release()
