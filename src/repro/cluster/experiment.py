"""Experiment configuration, execution and results.

:func:`run_experiment` is the single entry point the benchmark harness uses:
it builds the simulated cluster for one ``(system, workload, replica count,
IO configuration)`` point, runs it for a warm-up plus measurement window, and
returns an :class:`ExperimentResult` with the same quantities the paper
plots — throughput (goodput), response times (split read-only / update),
abort rates, fsync accounting and device utilizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.config import (
    DiskConfig,
    ReplicationConfig,
    SystemKind,
    WorkloadName,
    validate_certifier_crash_schedule,
)
from repro.errors import ConfigurationError
from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import RandomStreams
from repro.workloads.spec import WorkloadSpec, workload_by_name
from repro.cluster.base_system import BaseModel
from repro.cluster.models import SystemModel
from repro.cluster.standalone import StandaloneModel
from repro.cluster.tashkent_api import TashkentAPIModel
from repro.cluster.tashkent_mw import TashkentMWModel


@dataclass(frozen=True)
class ExperimentConfig:
    """One point of the evaluation."""

    system: SystemKind = SystemKind.TASHKENT_MW
    workload: WorkloadName = WorkloadName.ALL_UPDATES
    num_replicas: int = 1
    #: ``None`` uses the workload's default (the paper's 85%-of-peak sizing).
    clients_per_replica: int | None = None
    #: Dedicated logging channel (the paper's ramdisk configuration).
    dedicated_io: bool = False
    #: Forced system-wide abort rate at the certifier (Section 9.5).
    forced_abort_rate: float = 0.0
    #: Routing policy name for the cluster scheduler (see
    #: :mod:`repro.balancer`).  ``None`` keeps the paper's static client
    #: pinning; any other value replaces the per-replica client populations
    #: with one shared pool whose transactions are routed per-transaction.
    routing: str | None = None
    #: Per-replica admission limit when routing (``None`` = unlimited).
    multiprogramming_limit: int | None = None
    #: Deadline for a routed transaction waiting in the admission queue; a
    #: miss is recorded as an ``admission-timeout`` abort.
    admission_timeout_ms: float = 200.0
    #: Number of certification shards at the certifier (1 = the paper's
    #: single certifier; see ``docs/certifier.md``).
    certifier_shards: int = 1
    #: Bound on log records per certifier fsync (``None`` = unbounded, the
    #: seed behaviour; see :class:`~repro.core.config.ReplicationConfig`).
    certifier_max_flush_batch: int | None = None
    #: Deterministic shard-leader outages, ``(shard_id, crash_at_ms,
    #: recover_at_ms)`` each (see :class:`~repro.core.config.
    #: ReplicationConfig.certifier_crash_schedule`).  Times are absolute
    #: simulation time, so a window placed inside the measurement window
    #: shows up as the availability dip the recovery benchmark quantifies.
    certifier_crash_schedule: tuple[tuple[int, float, float], ...] = ()
    #: GC headroom the simulated certifier keeps below the replica low-water
    #: mark (``None`` = the sim node's default; see
    #: :class:`~repro.core.config.ReplicationConfig.certifier_gc_headroom`).
    certifier_gc_headroom: int | None = None
    #: Cadence of the background maintenance janitor (``None`` = off, the
    #: seed behaviour; see :class:`~repro.core.config.ReplicationConfig.
    #: vacuum_interval_ms`).
    vacuum_interval_ms: float | None = None
    #: Row-visit budget of one incremental vacuum pass (the janitor's
    #: batching knob).
    vacuum_batch_rows: int = 4096
    #: Extra workload constructor options (scenario axes such as
    #: AllUpdates' ``update_burst``); forwarded to ``workload_by_name``.
    workload_options: Mapping[str, object] | None = None
    warmup_ms: float = 1_000.0
    measure_ms: float = 4_000.0
    seed: int = 20060418

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if self.system is SystemKind.STANDALONE and self.num_replicas != 1:
            raise ConfigurationError("a standalone system has exactly one database")
        if self.system is SystemKind.STANDALONE and self.routing is not None:
            raise ConfigurationError("a standalone system has nothing to route")
        if self.measure_ms <= 0 or self.warmup_ms < 0:
            raise ConfigurationError("measurement window must be positive")
        validate_certifier_crash_schedule(self.certifier_crash_schedule,
                                          self.certifier_shards)

    def replication_config(self, workload: WorkloadSpec) -> ReplicationConfig:
        clients = self.clients_per_replica or workload.default_clients_per_replica
        disk = DiskConfig(dedicated_log_channel=self.dedicated_io)
        return ReplicationConfig(
            system=self.system,
            num_replicas=self.num_replicas,
            clients_per_replica=clients,
            disk=disk,
            forced_abort_rate=self.forced_abort_rate,
            routing_policy=self.routing,
            multiprogramming_limit=self.multiprogramming_limit,
            admission_timeout_ms=self.admission_timeout_ms,
            certifier_shards=self.certifier_shards,
            certifier_max_flush_batch=self.certifier_max_flush_batch,
            certifier_crash_schedule=self.certifier_crash_schedule,
            certifier_gc_headroom=self.certifier_gc_headroom,
            vacuum_interval_ms=self.vacuum_interval_ms,
            vacuum_batch_rows=self.vacuum_batch_rows,
            rng_seed=self.seed,
        )

    def with_overrides(self, **overrides: object) -> "ExperimentConfig":
        return replace(self, **overrides)


@dataclass
class ExperimentResult:
    """Measured outputs of one experiment point."""

    config: ExperimentConfig
    throughput_tps: float
    offered_tps: float
    abort_rate: float
    mean_response_ms: float
    p95_response_ms: float
    readonly_response_ms: float
    update_response_ms: float
    completed_transactions: int
    per_replica_tps: Mapping[str, float] = field(default_factory=dict)
    utilization: Mapping[str, float] = field(default_factory=dict)

    @property
    def goodput_tps(self) -> float:
        """Alias matching the paper's terminology in Section 9.5."""
        return self.throughput_tps

    @property
    def writesets_per_fsync(self) -> float:
        return float(self.utilization.get("certifier_writesets_per_fsync", 0.0))

    @property
    def certifier_fsyncs(self) -> int:
        return int(self.utilization.get("certifier_fsyncs", 0))

    @property
    def replica_fsyncs(self) -> int:
        return int(self.utilization.get("replica_total_fsyncs", 0))

    @property
    def artificial_conflict_rate(self) -> float:
        return float(self.utilization.get("artificial_conflict_rate", 0.0))

    def as_row(self) -> dict[str, object]:
        """Flat representation used by the reporting helpers and benches."""
        return {
            "system": self.config.system.value,
            "workload": self.config.workload.value,
            "replicas": self.config.num_replicas,
            "dedicated_io": self.config.dedicated_io,
            "routing": self.config.routing or "pinned",
            "certifier_shards": self.config.certifier_shards,
            "throughput_tps": round(self.throughput_tps, 1),
            "mean_response_ms": round(self.mean_response_ms, 1),
            "p95_response_ms": round(self.p95_response_ms, 1),
            "abort_rate": round(self.abort_rate, 4),
            "writesets_per_fsync": round(self.writesets_per_fsync, 1),
            "replica_fsyncs": self.replica_fsyncs,
            "certifier_fsyncs": self.certifier_fsyncs,
        }


_MODEL_CLASSES: dict[SystemKind, type[SystemModel]] = {
    SystemKind.STANDALONE: StandaloneModel,
    SystemKind.BASE: BaseModel,
    SystemKind.TASHKENT_MW: TashkentMWModel,
    SystemKind.TASHKENT_API: TashkentAPIModel,
    SystemKind.TASHKENT_API_NO_CERT: TashkentAPIModel,
}


def build_model(config: ExperimentConfig) -> tuple[SystemModel, MetricsCollector, Environment]:
    """Construct the simulation for ``config`` without running it."""
    workload = workload_by_name(config.workload, num_replicas=config.num_replicas,
                                **dict(config.workload_options or {}))
    replication = config.replication_config(workload)
    env = Environment()
    rng = RandomStreams(config.seed)
    metrics = MetricsCollector(warmup_ms=config.warmup_ms, measure_ms=config.measure_ms)
    model_cls = _MODEL_CLASSES[config.system]
    model = model_cls(env, replication, workload, rng, metrics)
    return model, metrics, env


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment point and return its measurements."""
    model, metrics, env = build_model(config)
    stop_ms = metrics.window_end_ms
    model.start_clients(stop_ms)
    env.run_until(stop_ms)
    if env.failed_processes:
        failed = env.failed_processes[0]
        raise RuntimeError(
            f"simulation process {failed.name!r} crashed: {failed.value!r}"
        ) from (failed.value if isinstance(failed.value, BaseException) else None)
    utilization = model.collect_utilization()
    return ExperimentResult(
        config=config,
        throughput_tps=metrics.goodput_tps(),
        offered_tps=metrics.offered_tps(),
        abort_rate=metrics.abort_rate(),
        mean_response_ms=metrics.mean_response_ms(),
        p95_response_ms=metrics.percentile_response_ms(95.0),
        readonly_response_ms=metrics.mean_response_ms(readonly=True),
        update_response_ms=metrics.mean_response_ms(readonly=False),
        completed_transactions=len(metrics.records),
        per_replica_tps=metrics.per_replica_throughput(),
        utilization=utilization,
    )
