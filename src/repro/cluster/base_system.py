"""The Base system model.

Ordering is decided by the certifier, durability stays in the database, and
— because an off-the-shelf database offers no way to dictate a commit order —
the proxy must submit commits *serially*: the grouped remote writesets commit
first (one synchronous write), then the local transaction (a second
synchronous write).  That serialisation is the scalability bottleneck the
paper identifies: roughly ``1 / (2 × fsync)`` local commits per second per
replica once remote writesets start flowing.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.models import SystemModel
from repro.cluster.nodes import SimReplicaNode
from repro.workloads.spec import TransactionProfile


class BaseModel(SystemModel):
    """Ordering in the middleware, durability in the database, serial commits."""

    def commit_update(self, replica: SimReplicaNode, profile: TransactionProfile,
                      tx_start_version: int) -> Generator:
        result = yield from self._certify(replica, profile, tx_start_version)

        # Steps [C4] and [C5] are serialised at the replica: the proxy waits
        # for each database acknowledgement before sending the next command.
        yield replica.commit_lock.request()
        try:
            pending = replica.claim_remote(result.remote_writesets)
            if pending:
                # One transaction containing all grouped remote writesets:
                # CPU to apply the updates, then its own synchronous commit.
                yield from self._apply_remote_cpu(replica, len(pending))
                yield from replica.disk.fsync()
            if result.committed:
                # The local transaction's commit record: a second fsync.
                yield from replica.disk.fsync()
                replica.observe_commit(result.tx_commit_version)
        finally:
            replica.commit_lock.release()

        if result.committed:
            return True, None
        return False, "forced-abort" if result.forced_abort else "certification"
