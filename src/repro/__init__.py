"""Reproduction of "Tashkent: Uniting Durability with Transaction Ordering
for High-Performance Scalable Database Replication" (EuroSys 2006).

The package is organised in layers:

``repro.core``
    Pure protocol logic shared by every other layer: writesets and their
    intersection test, version bookkeeping for generalized snapshot isolation
    (GSI), the certification rule, the certifier log, the group-commit
    batching policy, the commit-order sequencer and artificial-conflict
    detection.

``repro.engine``
    A from-scratch snapshot-isolation MVCC storage engine playing the role of
    PostgreSQL in the paper: versioned rows, write locks with
    first-updater-wins semantics, deadlock detection, a write-ahead log with
    group commit, a synchronous-commit switch, writeset-extraction triggers,
    an ordered ``COMMIT <version>`` API, checkpoints and crash recovery.

``repro.transport``
    The propagation subsystem shared by the functional and simulated stacks:
    a topic message bus, pluggable batching/flush policies (immediate,
    size-capped, time-windowed) and the ``WritesetStream`` that pushes
    batches of certified writesets from the certifier to every replica.

``repro.middleware``
    The replication middleware: the transparent proxy and the certifier, and
    factories assembling the three replicated systems evaluated in the paper
    (Base, Tashkent-MW and Tashkent-API) on top of real engine instances.

``repro.balancer``
    The cluster scheduler in front of the replicas: pluggable routing
    policies (round-robin, least-loaded, staleness-aware, conflict-aware),
    per-replica admission control with a bounded wait queue, and routed
    client sessions — the dynamic alternative to the paper's static client
    pinning.  See ``docs/scheduler.md``.

``repro.consensus``
    Paxos / multi-Paxos used to replicate the certifier for availability.

``repro.sim``
    A deterministic discrete-event simulation kernel plus disk, network and
    CPU models used to reproduce the paper's scalability evaluation without
    depending on wall-clock performance of the host.

``repro.cluster``
    Simulation models of Standalone, Base, Tashkent-MW and Tashkent-API
    clusters, closed-loop clients, and the experiment runner used by the
    benchmark harness.

``repro.workloads``
    AllUpdates, TPC-B and TPC-W (shopping mix) workload generators.

``repro.recovery``
    Replica and certifier recovery procedures and the recovery-time model
    from Section 9.6 of the paper.

``repro.analysis``
    Result tables and paper-versus-measured reporting helpers.

Start with the top-level ``README.md``; the layer map and subsystem guides
live in ``docs/architecture.md``, ``docs/scheduler.md`` and
``docs/benchmarks.md``.
"""

from repro.balancer import (
    ClusterScheduler,
    ConflictAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutedSession,
    RoutingPolicy,
    RoutingRequest,
    StalenessAwarePolicy,
    routing_policy_from_name,
)
from repro.core.config import (
    DiskConfig,
    NetworkConfig,
    ReplicationConfig,
    SystemKind,
    WorkloadName,
)
from repro.core.writeset import WriteItem, WriteSet
from repro.core.versions import VersionClock
from repro.core.certification import CertificationDecision, Certifier
from repro.engine.database import Database, IsolationError
from repro.middleware.systems import (
    ReplicatedSystem,
    build_base_system,
    build_tashkent_api_system,
    build_tashkent_mw_system,
)
from repro.cluster.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.cluster.sweeps import ReplicaSweep, run_replica_sweep
from repro.transport import (
    ExplicitFlushPolicy,
    FlushPolicy,
    ImmediateFlushPolicy,
    MessageBus,
    SizeCappedFlushPolicy,
    TimeWindowFlushPolicy,
    WritesetStream,
    policy_from_name,
)
from repro.workloads import allupdates, tpcb, tpcw

__all__ = [
    "CertificationDecision",
    "Certifier",
    "ClusterScheduler",
    "ConflictAwarePolicy",
    "Database",
    "DiskConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "ExplicitFlushPolicy",
    "FlushPolicy",
    "ImmediateFlushPolicy",
    "IsolationError",
    "LeastLoadedPolicy",
    "MessageBus",
    "NetworkConfig",
    "ReplicaSweep",
    "ReplicatedSystem",
    "ReplicationConfig",
    "RoundRobinPolicy",
    "RoutedSession",
    "RoutingPolicy",
    "RoutingRequest",
    "SizeCappedFlushPolicy",
    "StalenessAwarePolicy",
    "SystemKind",
    "TimeWindowFlushPolicy",
    "VersionClock",
    "WorkloadName",
    "WriteItem",
    "WriteSet",
    "WritesetStream",
    "allupdates",
    "build_base_system",
    "build_tashkent_api_system",
    "build_tashkent_mw_system",
    "policy_from_name",
    "routing_policy_from_name",
    "run_experiment",
    "run_replica_sweep",
    "tpcb",
    "tpcw",
]

__version__ = "1.0.0"
