"""Exception hierarchy shared across the repro packages.

Every layer raises exceptions derived from :class:`ReproError` so callers can
catch library failures without catching unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (conflict, deadlock or explicit abort)."""

    def __init__(self, message: str = "transaction aborted", *, reason: str = "abort") -> None:
        super().__init__(message)
        self.reason = reason


class WriteConflictError(TransactionAborted):
    """A write-write conflict with a committed concurrent transaction."""

    def __init__(self, item: object, message: str | None = None) -> None:
        super().__init__(message or f"write-write conflict on {item!r}", reason="ww-conflict")
        self.item = item


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""

    def __init__(self, message: str = "deadlock detected") -> None:
        super().__init__(message, reason="deadlock")


class CertificationAborted(TransactionAborted):
    """The certifier refused to commit the transaction."""

    def __init__(self, message: str = "certification failed") -> None:
        super().__init__(message, reason="certification")


class InvalidTransactionState(TransactionError):
    """An operation was attempted in a state that does not permit it."""


class StorageError(ReproError):
    """Base class for storage engine failures."""


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist."""


class DuplicateKeyError(StorageError):
    """An insert violated a primary-key constraint."""


class RecoveryError(ReproError):
    """A recovery procedure could not complete."""


class LogPrunedError(ReproError):
    """A certifier-log read referenced records below the GC horizon.

    Raised when a caller asks for records (or a conflict window) that log
    garbage collection has already discarded.  Under the low-water-mark
    protocol this indicates either a protocol violation or a recovering node
    whose dump predates the horizon and therefore needs a full state
    transfer instead of log replay.
    """

    def __init__(self, requested_after: int, pruned_version: int) -> None:
        super().__init__(
            f"log records after version {requested_after} were requested, but "
            f"the log is pruned up to version {pruned_version}"
        )
        self.requested_after = requested_after
        self.pruned_version = pruned_version


class ConsensusError(ReproError):
    """Base class for Paxos / replicated-log failures."""


class NotLeaderError(ConsensusError):
    """A request was sent to a certifier node that is not the current leader."""


class QuorumUnavailableError(ConsensusError):
    """Not enough certifier nodes are up to make progress."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class SchedulerError(ReproError):
    """Base class for cluster-scheduler (transaction routing) failures."""


class NoHealthyReplicaError(SchedulerError):
    """Every replica known to the scheduler is marked unhealthy."""


class AdmissionTimeoutError(SchedulerError):
    """A routed transaction waited at the admission queue past its deadline.

    Raised by the functional routed session when no replica has a free
    multiprogramming slot (the single-threaded functional stack cannot block
    waiting for one); recorded as an ``admission-timeout`` abort by the
    simulated routed clients.
    """


class SchedulerSaturatedError(SchedulerError):
    """The scheduler's bounded admission wait queue is full.

    The front door sheds load instead of queueing without bound — the caller
    should back off and retry (or surface the rejection to its client).
    """
