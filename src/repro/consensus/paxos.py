"""Single-decree Paxos.

A compact, synchronous implementation of the classic protocol [Lamport 98]
used by the replicated certifier: proposers run the two phases (prepare /
accept) against a set of acceptors; a value is chosen once a majority of
acceptors has accepted it.  The implementation is deliberately message-level
(phase methods return explicit reply objects) so failure injection in tests
can drop or reorder individual messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConsensusError, QuorumUnavailableError


@dataclass(frozen=True)
class Ballot:
    """A totally ordered ballot number: (round, proposer id)."""

    round: int
    proposer: int

    def __lt__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) < (other.round, other.proposer)

    def __le__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) <= (other.round, other.proposer)

    def next_round(self) -> "Ballot":
        return Ballot(self.round + 1, self.proposer)


@dataclass
class PrepareReply:
    """Acceptor's answer to phase 1."""

    acceptor: int
    promised: bool
    accepted_ballot: Ballot | None = None
    accepted_value: object = None


@dataclass
class AcceptReply:
    """Acceptor's answer to phase 2."""

    acceptor: int
    accepted: bool


class Acceptor:
    """A Paxos acceptor with stable (crash-surviving) state."""

    def __init__(self, acceptor_id: int) -> None:
        self.acceptor_id = acceptor_id
        self.promised_ballot: Ballot | None = None
        self.accepted_ballot: Ballot | None = None
        self.accepted_value: object = None
        self.up = True

    def prepare(self, ballot: Ballot) -> PrepareReply | None:
        """Phase 1b: promise not to accept lower ballots."""
        if not self.up:
            return None
        if self.promised_ballot is not None and ballot <= self.promised_ballot:
            return PrepareReply(self.acceptor_id, promised=False)
        self.promised_ballot = ballot
        return PrepareReply(
            self.acceptor_id,
            promised=True,
            accepted_ballot=self.accepted_ballot,
            accepted_value=self.accepted_value,
        )

    def accept(self, ballot: Ballot, value: object) -> AcceptReply | None:
        """Phase 2b: accept the value unless a higher ballot was promised."""
        if not self.up:
            return None
        if self.promised_ballot is not None and ballot < self.promised_ballot:
            return AcceptReply(self.acceptor_id, accepted=False)
        self.promised_ballot = ballot
        self.accepted_ballot = ballot
        self.accepted_value = value
        return AcceptReply(self.acceptor_id, accepted=True)

    # -- crash / recovery -------------------------------------------------------

    def crash(self) -> None:
        self.up = False

    def recover(self) -> None:
        """Acceptor state is stable storage: it survives the crash."""
        self.up = True


class Proposer:
    """A Paxos proposer driving both phases against a set of acceptors."""

    def __init__(self, proposer_id: int, acceptors: Sequence[Acceptor]) -> None:
        if not acceptors:
            raise ConsensusError("a proposer needs at least one acceptor")
        self.proposer_id = proposer_id
        self.acceptors = list(acceptors)
        self.ballot = Ballot(0, proposer_id)

    @property
    def majority(self) -> int:
        return len(self.acceptors) // 2 + 1

    def propose(self, value: object, *, max_rounds: int = 10) -> object:
        """Drive the protocol until a value is chosen; returns the chosen value.

        The chosen value may differ from ``value`` if an earlier proposal was
        already accepted by some acceptor (the proposer then adopts it, as
        Paxos requires).  Raises :class:`QuorumUnavailableError` when a
        majority of acceptors is unreachable.
        """
        for _ in range(max_rounds):
            self.ballot = self.ballot.next_round()
            promises = [a.prepare(self.ballot) for a in self.acceptors]
            granted = [p for p in promises if p is not None and p.promised]
            reachable = [p for p in promises if p is not None]
            if len(reachable) < self.majority:
                raise QuorumUnavailableError(
                    f"only {len(reachable)} of {len(self.acceptors)} acceptors reachable"
                )
            if len(granted) < self.majority:
                continue  # outpaced by a higher ballot; retry with a higher round
            proposal = self._choose_value(granted, value)
            replies = [a.accept(self.ballot, proposal) for a in self.acceptors]
            accepted = [r for r in replies if r is not None and r.accepted]
            if len(accepted) >= self.majority:
                return proposal
        raise ConsensusError(f"no decision after {max_rounds} ballots")

    @staticmethod
    def _choose_value(promises: Iterable[PrepareReply], fallback: object) -> object:
        """Adopt the value of the highest accepted ballot, if any."""
        best: PrepareReply | None = None
        for promise in promises:
            if promise.accepted_ballot is None:
                continue
            if best is None or best.accepted_ballot < promise.accepted_ballot:
                best = promise
        return fallback if best is None else best.accepted_value


@dataclass
class PaxosInstance:
    """One consensus instance (one slot of the replicated log)."""

    acceptors: list[Acceptor] = field(default_factory=list)
    chosen_value: object = None
    decided: bool = False

    def decide(self, proposer: Proposer, value: object) -> object:
        chosen = proposer.propose(value)
        self.chosen_value = chosen
        self.decided = True
        return chosen
