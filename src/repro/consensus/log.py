"""A leader-based replicated log (multi-Paxos style).

The replicated certifier needs a log whose entries are agreed on by a
majority of certifier nodes before they count as durable (paper, Section
7.3: "When a majority of certifiers reply, the leader declares those
transactions as committed").  Each log slot is a Paxos instance; in the
common case the stable leader skips phase 1 and drives phase 2 directly,
which is exactly the one-round-trip-plus-fsync behaviour the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.consensus.paxos import Acceptor, Ballot, Proposer
from repro.errors import ConsensusError, NotLeaderError, QuorumUnavailableError


@dataclass
class ReplicatedLogNode:
    """One certifier node's replica of the log.

    Slots below :attr:`base_slot` have been *compacted away*: their effect is
    folded into :attr:`snapshot` (an opaque, self-validating object installed
    by :meth:`truncate_to` or :meth:`install_snapshot`), and ``entries[i]``
    holds the value of absolute slot ``base_slot + i``.  An untruncated node
    has ``base_slot == 0`` and behaves exactly as before.
    """

    node_id: int
    entries: list[object] = field(default_factory=list)
    #: Each slot has its own acceptor state.
    acceptors: dict[int, Acceptor] = field(default_factory=dict)
    up: bool = True
    #: Synchronous writes performed by this node (each accepted slot is one
    #: stable-storage write in the real system; they are batched in practice).
    stable_writes: int = 0
    #: First retained slot; everything below it is covered by the snapshot.
    base_slot: int = 0
    #: The snapshot covering slots ``[0, base_slot)`` (``None`` when intact).
    snapshot: object | None = None
    #: Snapshots installed via anti-entropy state transfer (not local GC).
    snapshot_installs: int = 0

    def acceptor_for(self, slot: int) -> Acceptor:
        acceptor = self.acceptors.get(slot)
        if acceptor is None:
            acceptor = Acceptor(self.node_id)
            self.acceptors[slot] = acceptor
        acceptor.up = self.up
        return acceptor

    def covers(self, slot: int) -> bool:
        """Whether ``slot`` is still individually readable on this node."""
        return slot >= self.base_slot

    def entry_at(self, slot: int) -> object | None:
        """The learned value of an absolute slot (``None`` = unknown or
        compacted — callers distinguish via :meth:`covers`)."""
        index = slot - self.base_slot
        if index < 0 or index >= len(self.entries):
            return None
        return self.entries[index]

    def learn(self, slot: int, value: object) -> None:
        """Record a chosen value locally (extends the node's copy of the log)."""
        if not self.up:
            return
        if slot < self.base_slot:
            return  # already folded into the snapshot
        index = slot - self.base_slot
        while len(self.entries) <= index:
            self.entries.append(None)
        if self.entries[index] is None:
            self.entries[index] = value
            self.stable_writes += 1

    def crash(self) -> None:
        self.up = False

    def recover(self) -> None:
        self.up = True
        for acceptor in self.acceptors.values():
            acceptor.recover()

    def known_length(self) -> int:
        """Length of the longest known prefix with no holes (in absolute
        slots; a snapshot counts as knowing everything beneath it)."""
        length = self.base_slot
        for entry in self.entries:
            if entry is None:
                break
            length += 1
        return length

    # -- log compaction ---------------------------------------------------------

    def truncate_to(self, slot: int, snapshot: object) -> int:
        """Drop slots below ``slot``, replacing them with ``snapshot``.

        Only the contiguous known prefix may be truncated — compacting past
        an unlearned slot would lose a value this node never had.  Idempotent
        for ``slot`` at or below the current base.  Returns the number of
        entries dropped.
        """
        if slot <= self.base_slot:
            return 0
        if slot > self.known_length():
            raise ConsensusError(
                f"node {self.node_id}: cannot truncate to slot {slot} beyond "
                f"the known prefix ({self.known_length()})"
            )
        dropped = slot - self.base_slot
        del self.entries[:dropped]
        self.acceptors = {s: a for s, a in self.acceptors.items() if s >= slot}
        self.base_slot = slot
        self.snapshot = snapshot
        self.stable_writes += 1
        return dropped

    def install_snapshot(self, snapshot: object, up_to_slot: int) -> bool:
        """Adopt a peer's snapshot covering slots below ``up_to_slot``.

        The anti-entropy bootstrap path for a node whose known prefix
        predates a peer's truncation point.  The snapshot is verified first
        (duck-typed ``validate()``, raising on truncation or checksum
        mismatch) — a corrupted transfer must be re-fetched, never installed.
        Idempotent: re-offering a snapshot at or below the current base is a
        no-op, so a crash mid-install is repaired by simply retrying.
        Returns whether anything was installed.
        """
        validate = getattr(snapshot, "validate", None)
        if validate is not None:
            validate()
        if up_to_slot <= self.base_slot:
            return False
        overlap = up_to_slot - self.base_slot
        self.entries = self.entries[overlap:] if overlap < len(self.entries) else []
        self.acceptors = {s: a for s, a in self.acceptors.items() if s >= up_to_slot}
        self.base_slot = up_to_slot
        self.snapshot = snapshot
        self.stable_writes += 1
        self.snapshot_installs += 1
        return True


class ReplicatedLog:
    """The leader's view of the replicated log."""

    def __init__(self, nodes: Sequence[ReplicatedLogNode], *, leader_id: int | None = None) -> None:
        if not nodes:
            raise ConsensusError("the replicated log needs at least one node")
        self.nodes = list(nodes)
        self.leader_id = leader_id if leader_id is not None else self.nodes[0].node_id
        self._next_slot = 0

    # -- leadership ---------------------------------------------------------------

    @property
    def leader(self) -> ReplicatedLogNode:
        for node in self.nodes:
            if node.node_id == self.leader_id:
                return node
        raise ConsensusError(f"unknown leader id {self.leader_id}")

    @property
    def majority(self) -> int:
        return len(self.nodes) // 2 + 1

    def up_nodes(self) -> list[ReplicatedLogNode]:
        return [node for node in self.nodes if node.up]

    def has_quorum(self) -> bool:
        return len(self.up_nodes()) >= self.majority

    def elect_leader(self) -> int:
        """Elect the lowest-id up node as leader (deterministic election)."""
        candidates = self.up_nodes()
        if not candidates:
            raise QuorumUnavailableError("no certifier node is up")
        self.leader_id = min(node.node_id for node in candidates)
        return self.leader_id

    # -- appending ----------------------------------------------------------------------

    def append(self, value: object, *, from_node: int | None = None) -> int:
        """Append ``value`` through the leader; returns its slot index.

        Raises :class:`NotLeaderError` when the request is addressed to a
        non-leader node and :class:`QuorumUnavailableError` when fewer than a
        majority of nodes are up.
        """
        if from_node is not None and from_node != self.leader_id:
            raise NotLeaderError(
                f"node {from_node} is not the leader (leader is {self.leader_id})"
            )
        if not self.leader.up:
            raise NotLeaderError(f"leader {self.leader_id} is down; elect a new leader")
        if not self.has_quorum():
            raise QuorumUnavailableError(
                f"only {len(self.up_nodes())} of {len(self.nodes)} certifier nodes are up"
            )
        slot = self._next_slot
        acceptors = [node.acceptor_for(slot) for node in self.nodes]
        proposer = Proposer(self.leader_id, acceptors)
        chosen = proposer.propose(value)
        for node in self.nodes:
            node.learn(slot, chosen)
        self._next_slot += 1
        return slot

    # -- recovery ---------------------------------------------------------------------------

    def catch_up(self, node: ReplicatedLogNode) -> int:
        """State transfer: copy missing entries to a recovering node.

        The source is the up peer with the longest known prefix.  When the
        source has compacted beneath ``node``'s known prefix (the node was
        down past the GC horizon), its snapshot is installed first and only
        the retained log suffix is copied — the paper's snapshot-plus-suffix
        state transfer instead of a full log replay.  Returns the number of
        log entries transferred ("essentially a file transfer" from an up
        node, Section 9.6); snapshot installs are counted on the node.
        """
        source = None
        for candidate in self.up_nodes():
            if candidate.node_id == node.node_id:
                continue
            if source is None or candidate.known_length() > source.known_length():
                source = candidate
        if source is None:
            raise QuorumUnavailableError("no up node available for state transfer")
        if source.base_slot > node.known_length():
            # The retained suffix alone cannot extend this node's prefix:
            # ship the snapshot covering everything beneath the truncation.
            node.install_snapshot(source.snapshot, source.base_slot)
        transferred = 0
        for index, value in enumerate(source.entries):
            if value is None:
                continue
            slot = source.base_slot + index
            if not node.covers(slot):
                continue
            if node.entry_at(slot) is None:
                node.learn(slot, value)
                transferred += 1
        return transferred

    def truncate_to(self, slot: int, snapshot: object) -> int:
        """Compact every up node's log below ``slot`` behind ``snapshot``.

        A lagging up node is caught up first so the truncation never outruns
        a live replica's known prefix; down nodes keep their (longer) logs
        and adopt the snapshot via :meth:`catch_up` when they return.
        Returns the total number of entries dropped across up nodes.
        """
        dropped = 0
        for node in self.up_nodes():
            if node.known_length() < slot:
                self.catch_up(node)
            dropped += node.truncate_to(slot, snapshot)
        return dropped

    def base_slot(self) -> int:
        """The effective truncation point: the furthest any up node has
        compacted (slots below it are not readable on every up node)."""
        return max((node.base_slot for node in self.up_nodes()), default=0)

    def snapshot(self) -> object | None:
        """The snapshot backing :meth:`base_slot` (``None`` when intact)."""
        candidates = [node for node in self.up_nodes() if node.snapshot is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda node: node.base_slot).snapshot

    def chosen_prefix(self) -> list[object]:
        """The values chosen so far, in slot order (the leader's view of the
        retained suffix — compacted slots live in the snapshot)."""
        return [entry for entry in self.leader.entries if entry is not None]

    def __len__(self) -> int:
        return self._next_slot
