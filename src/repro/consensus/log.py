"""A leader-based replicated log (multi-Paxos style).

The replicated certifier needs a log whose entries are agreed on by a
majority of certifier nodes before they count as durable (paper, Section
7.3: "When a majority of certifiers reply, the leader declares those
transactions as committed").  Each log slot is a Paxos instance; in the
common case the stable leader skips phase 1 and drives phase 2 directly,
which is exactly the one-round-trip-plus-fsync behaviour the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.consensus.paxos import Acceptor, Ballot, Proposer
from repro.errors import ConsensusError, NotLeaderError, QuorumUnavailableError


@dataclass
class ReplicatedLogNode:
    """One certifier node's replica of the log."""

    node_id: int
    entries: list[object] = field(default_factory=list)
    #: Each slot has its own acceptor state.
    acceptors: dict[int, Acceptor] = field(default_factory=dict)
    up: bool = True
    #: Synchronous writes performed by this node (each accepted slot is one
    #: stable-storage write in the real system; they are batched in practice).
    stable_writes: int = 0

    def acceptor_for(self, slot: int) -> Acceptor:
        acceptor = self.acceptors.get(slot)
        if acceptor is None:
            acceptor = Acceptor(self.node_id)
            self.acceptors[slot] = acceptor
        acceptor.up = self.up
        return acceptor

    def learn(self, slot: int, value: object) -> None:
        """Record a chosen value locally (extends the node's copy of the log)."""
        if not self.up:
            return
        while len(self.entries) <= slot:
            self.entries.append(None)
        if self.entries[slot] is None:
            self.entries[slot] = value
            self.stable_writes += 1

    def crash(self) -> None:
        self.up = False

    def recover(self) -> None:
        self.up = True
        for acceptor in self.acceptors.values():
            acceptor.recover()

    def known_length(self) -> int:
        """Length of the longest known prefix with no holes."""
        length = 0
        for entry in self.entries:
            if entry is None:
                break
            length += 1
        return length


class ReplicatedLog:
    """The leader's view of the replicated log."""

    def __init__(self, nodes: Sequence[ReplicatedLogNode], *, leader_id: int | None = None) -> None:
        if not nodes:
            raise ConsensusError("the replicated log needs at least one node")
        self.nodes = list(nodes)
        self.leader_id = leader_id if leader_id is not None else self.nodes[0].node_id
        self._next_slot = 0

    # -- leadership ---------------------------------------------------------------

    @property
    def leader(self) -> ReplicatedLogNode:
        for node in self.nodes:
            if node.node_id == self.leader_id:
                return node
        raise ConsensusError(f"unknown leader id {self.leader_id}")

    @property
    def majority(self) -> int:
        return len(self.nodes) // 2 + 1

    def up_nodes(self) -> list[ReplicatedLogNode]:
        return [node for node in self.nodes if node.up]

    def has_quorum(self) -> bool:
        return len(self.up_nodes()) >= self.majority

    def elect_leader(self) -> int:
        """Elect the lowest-id up node as leader (deterministic election)."""
        candidates = self.up_nodes()
        if not candidates:
            raise QuorumUnavailableError("no certifier node is up")
        self.leader_id = min(node.node_id for node in candidates)
        return self.leader_id

    # -- appending ----------------------------------------------------------------------

    def append(self, value: object, *, from_node: int | None = None) -> int:
        """Append ``value`` through the leader; returns its slot index.

        Raises :class:`NotLeaderError` when the request is addressed to a
        non-leader node and :class:`QuorumUnavailableError` when fewer than a
        majority of nodes are up.
        """
        if from_node is not None and from_node != self.leader_id:
            raise NotLeaderError(
                f"node {from_node} is not the leader (leader is {self.leader_id})"
            )
        if not self.leader.up:
            raise NotLeaderError(f"leader {self.leader_id} is down; elect a new leader")
        if not self.has_quorum():
            raise QuorumUnavailableError(
                f"only {len(self.up_nodes())} of {len(self.nodes)} certifier nodes are up"
            )
        slot = self._next_slot
        acceptors = [node.acceptor_for(slot) for node in self.nodes]
        proposer = Proposer(self.leader_id, acceptors)
        chosen = proposer.propose(value)
        for node in self.nodes:
            node.learn(slot, chosen)
        self._next_slot += 1
        return slot

    # -- recovery ---------------------------------------------------------------------------

    def catch_up(self, node: ReplicatedLogNode) -> int:
        """State transfer: copy missing entries to a recovering node.

        Returns the number of entries transferred ("essentially a file
        transfer" from an up node, Section 9.6).
        """
        source = None
        for candidate in self.up_nodes():
            if candidate.node_id != node.node_id:
                source = candidate
                break
        if source is None:
            raise QuorumUnavailableError("no up node available for state transfer")
        transferred = 0
        for slot, value in enumerate(source.entries):
            if value is None:
                continue
            if slot >= len(node.entries) or node.entries[slot] is None:
                node.learn(slot, value)
                transferred += 1
        return transferred

    def chosen_prefix(self) -> list[object]:
        """The values chosen so far, in slot order (the leader's view)."""
        return [entry for entry in self.leader.entries if entry is not None]

    def __len__(self) -> int:
        return self._next_slot
