"""The Paxos-replicated certifier group.

Combines the pure certification logic with the replicated log: the leader
certifies, proposes the accepted writeset to the certifier group, and only
acknowledges the commit to the replica once a majority of certifier nodes
has the log record.  Individual nodes can crash and recover; progress
requires a majority (paper, Section 7: "Update transactions can be processed
if a majority of certifier nodes are up and at least one replica is up").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.log import ReplicatedLog, ReplicatedLogNode
from repro.core.certification import CertificationRequest, CertificationResult, Certifier
from repro.core.certifier_log import LogRecord
from repro.errors import QuorumUnavailableError


@dataclass
class GroupStats:
    """Counters describing the group's replication activity."""

    appended_records: int = 0
    leader_changes: int = 0
    state_transfers: int = 0


class ReplicatedCertifierGroup:
    """A certifier replicated across ``num_nodes`` nodes with a leader."""

    def __init__(self, num_nodes: int = 3, *, forced_abort_rate: float = 0.0,
                 abort_chooser=None) -> None:
        self.nodes = [ReplicatedLogNode(node_id=i) for i in range(num_nodes)]
        self.replicated_log = ReplicatedLog(self.nodes)
        self.certifier = Certifier(
            forced_abort_rate=forced_abort_rate, abort_chooser=abort_chooser
        )
        self.stats = GroupStats()

    # -- certification through the group ---------------------------------------------

    @property
    def leader_id(self) -> int:
        return self.replicated_log.leader_id

    def certify(self, request: CertificationRequest) -> CertificationResult:
        """Certify a transaction; the decision is durable on a majority.

        Raises :class:`QuorumUnavailableError` when fewer than a majority of
        certifier nodes are up — update transactions cannot be processed in
        that state, which is exactly the paper's availability condition.
        """
        if not self.replicated_log.has_quorum():
            raise QuorumUnavailableError("certifier group has no majority")
        if not self.replicated_log.leader.up:
            self.elect_new_leader()
        result = self.certifier.certify(request)
        if result.committed and result.tx_commit_version is not None:
            record = self.certifier.log.record_at(result.tx_commit_version)
            self.replicated_log.append(
                (record.commit_version, record.writeset), from_node=self.leader_id
            )
            self.certifier.log.mark_durable(record.commit_version)
            self.stats.appended_records += 1
        return result

    # -- log garbage collection (low-water-mark protocol) ------------------------------------

    def note_replica_version(self, replica: str, version: int) -> None:
        """Record a replica's applied watermark with the leader's certifier."""
        self.certifier.note_replica_version(replica, version)

    def collect_garbage(self, *, headroom: int = 0) -> int:
        """Prune the leader's certifier log below the replicas' low-water mark.

        The replicated slots themselves are retained (they are the group's
        stable storage); what GC bounds is the leader's in-memory conflict
        window, exactly as for an unreplicated certifier.  Returns the
        number of records pruned.
        """
        return self.certifier.collect_garbage(headroom=headroom)

    # -- failures ----------------------------------------------------------------------------

    def crash_node(self, node_id: int) -> None:
        for node in self.nodes:
            if node.node_id == node_id:
                node.crash()
                return
        raise KeyError(f"unknown certifier node {node_id}")

    def recover_node(self, node_id: int) -> int:
        """Bring a node back: state transfer from an up peer, rejoin the group."""
        for node in self.nodes:
            if node.node_id == node_id:
                node.recover()
                transferred = self.replicated_log.catch_up(node)
                self.stats.state_transfers += 1
                return transferred
        raise KeyError(f"unknown certifier node {node_id}")

    def elect_new_leader(self) -> int:
        previous = self.replicated_log.leader_id
        new_leader = self.replicated_log.elect_leader()
        if new_leader != previous:
            self.stats.leader_changes += 1
        return new_leader

    # -- interrogation -----------------------------------------------------------------------

    def up_count(self) -> int:
        return len(self.replicated_log.up_nodes())

    def has_quorum(self) -> bool:
        return self.replicated_log.has_quorum()

    def node_log_length(self, node_id: int) -> int:
        for node in self.nodes:
            if node.node_id == node_id:
                return node.known_length()
        raise KeyError(f"unknown certifier node {node_id}")

    def logs_consistent(self) -> bool:
        """Every up node's log is a prefix of the leader's chosen sequence."""
        chosen = self.replicated_log.chosen_prefix()
        for node in self.replicated_log.up_nodes():
            prefix = [entry for entry in node.entries if entry is not None]
            if prefix != chosen[: len(prefix)]:
                return False
        return True
