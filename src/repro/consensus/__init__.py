"""Certifier availability substrate: Paxos-replicated state.

The paper replicates the certifier across a small set of nodes using Paxos
(Section 7.3): a leader receives all certification requests, sends the new
log records to every certifier node, and declares transactions committed
once a majority has acknowledged the write.  This package provides:

* :mod:`repro.consensus.paxos` — single-decree Paxos (proposers, acceptors);
* :mod:`repro.consensus.log` — a multi-Paxos style replicated log with a
  leader, majority acknowledgement, catch-up, and log compaction behind
  self-validating snapshots (``truncate_to`` / ``install_snapshot``,
  orchestrated by :mod:`repro.recovery.snapshots`);
* :mod:`repro.consensus.group` — the replicated certifier group built on the
  replicated log, with crash and recovery of individual nodes;
* :mod:`repro.consensus.sharded` — per-shard Paxos groups and the
  fault-tolerant sharded certifier whose coordinator is reconstructible
  from the groups' chosen prefixes (recovery orchestration lives in
  :mod:`repro.recovery.sharded_recovery`; see ``docs/recovery.md``).

A supporting package of the layer map in ``docs/architecture.md``.
"""

from repro.consensus.paxos import Acceptor, PaxosInstance, Proposer
from repro.consensus.log import ReplicatedLog, ReplicatedLogNode
from repro.consensus.group import ReplicatedCertifierGroup
from repro.consensus.sharded import (
    ReplicatedShardedCertifier,
    ShardLogEntry,
    ShardPaxosGroups,
)

__all__ = [
    "Acceptor",
    "PaxosInstance",
    "Proposer",
    "ReplicatedCertifierGroup",
    "ReplicatedLog",
    "ReplicatedLogNode",
    "ReplicatedShardedCertifier",
    "ShardLogEntry",
    "ShardPaxosGroups",
]
