"""Per-shard Paxos groups and the fault-tolerant sharded certifier.

PR 4 sharded the certifier but left the paper's availability story
(Section 7: "Update transactions can be processed if a majority of certifier
nodes are up and at least one replica is up") attached to the *single*
certifier's :class:`~repro.consensus.group.ReplicatedCertifierGroup`.  This
module closes that gap: every certification shard's log is replicated across
its **own** Paxos group, and the :class:`ReplicatedShardedCertifier`
coordinator is built so that everything it keeps in memory is
reconstructible from the groups' chosen prefixes.

State model
===========

* **Stable** state is the per-shard groups' acceptor/learner state
  (:class:`ShardPaxosGroups`): each replicated :class:`ShardLogEntry`
  carries the full writeset, the touched-shard set and the GC markers —
  enough to rebuild everything else.
* **Volatile** state is the :class:`~repro.core.sharding.ShardedCertifier`
  coordinator: the global sequencer, the version-ordered directory, each
  shard's :class:`~repro.core.certifier_log.CertifierLog` + local↔global
  maps, the replica watermarks and the exactly-once commit-ack table.  A
  coordinator crash (:meth:`ReplicatedShardedCertifier.crash`) wipes all of
  it; :func:`repro.recovery.sharded_recovery.recover_sharded_certifier`
  rebuilds it.

Commit protocol (one certification request)
===========================================

1. **probe** — every touched shard conflict-checks its fragment (pure,
   volatile; a crash here loses nothing);
2. **admit** — all fragments clean ⇒ the sequencer allocates the global
   commit version and every touched shard installs its fragment (volatile);
3. **flush** — the :class:`ShardLogEntry` for the round is appended to every
   touched shard's Paxos group; a majority of each group accepting it is
   what *durable* means here;
4. only then is the decision acknowledged (and, with a ``tx_id``, recorded
   in the exactly-once table so a client retry after a crash is answered
   from the table instead of re-certifying).

Because probe-all precedes admit-all precedes flush-all, a crash at any
point leaves one of exactly three durable states per round: *nowhere* (the
round aborts on recovery and its global version is re-allocated), *on some
touched shards' groups* (recovery replays the surviving entry — it carries
the full writeset — onto the missing groups and commits the round), or *on
all of them* (recovery simply commits the round).  Nothing else is possible,
which is what makes the crash-schedule harness in ``tests/faults.py``
exhaustive rather than probabilistic.

Quorum rule: an update touching shards ``S`` needs a majority in *each* of
``S``'s groups — checked before any mutation, so quorum loss surfaces as
:class:`~repro.errors.QuorumUnavailableError`, never as a wrong decision.
Read-only requests and refreshes are served from the volatile coordinator
without touching the groups, exactly as the paper serves reads while the
certifier is degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.consensus.group import GroupStats
from repro.consensus.log import ReplicatedLog, ReplicatedLogNode
from repro.core.certification import (
    CertificationDecision,
    CertificationRequest,
    CertificationResult,
)
from repro.core.sharding import Partitioner, ShardedCertifier
from repro.core.writeset import WriteSet
from repro.errors import ConfigurationError, QuorumUnavailableError, RecoveryError

#: Entry kinds carried by the per-shard replicated logs.
ENTRY_COMMIT = "commit"
ENTRY_GC = "gc"


@dataclass(frozen=True)
class ShardLogEntry:
    """One replicated record of a shard's Paxos group.

    A ``commit`` entry describes one certification round from the point of
    view of *any* of its touched shards: it carries the full writeset (not
    just this shard's fragment) and the touched-shard set, so a single
    surviving copy is enough to finish an interrupted round — the stable
    partitioner re-derives every fragment.  A ``gc`` entry records a decided
    garbage-collection horizon (``global_version`` is the prune target).
    """

    kind: str
    global_version: int
    writeset: WriteSet | None = None
    touched: tuple[int, ...] = ()
    origin_replica: str = "unknown"
    #: The transaction's start version (the horizon its fragments were
    #: certified back to at commit time; later extensions are volatile).
    certified_back_to: int = 0
    #: Client-supplied idempotence token (exactly-once acknowledgement).
    tx_id: object = None


@dataclass
class ShardedGroupStats:
    """Counters describing the fault-tolerance machinery's activity."""

    coordinator_crashes: int = 0
    recoveries: int = 0
    gc_markers: int = 0
    #: Commit acks answered from the exactly-once table (client retries).
    replayed_acks: int = 0
    #: Exactly-once ack entries dropped below the GC horizon (the table is
    #: horizon-bound: it stops growing with retained history).
    ack_entries_dropped: int = 0
    #: Log-compaction rounds (snapshot taken + group log truncated).
    compactions: int = 0
    per_shard: list[GroupStats] = field(default_factory=list)


class ShardPaxosGroups:
    """N per-shard Paxos groups, one replicated log per certification shard.

    Each group replicates its shard's log across ``nodes_per_shard`` nodes
    with a leader (multi-Paxos, as in :mod:`repro.consensus.log`); shards
    fail, elect and recover **independently** — losing a majority of shard
    3's group stalls only the transactions that touch shard 3.
    """

    def __init__(self, num_shards: int, nodes_per_shard: int = 3) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if nodes_per_shard < 1:
            raise ConfigurationError("nodes_per_shard must be >= 1")
        self.nodes_per_shard = nodes_per_shard
        self.groups: list[ReplicatedLog] = [
            ReplicatedLog([ReplicatedLogNode(node_id=i) for i in range(nodes_per_shard)])
            for _ in range(num_shards)
        ]
        self.stats = [GroupStats() for _ in range(num_shards)]

    @property
    def num_shards(self) -> int:
        return len(self.groups)

    def group(self, shard_id: int) -> ReplicatedLog:
        if not 0 <= shard_id < len(self.groups):
            raise KeyError(f"unknown certification shard {shard_id}")
        return self.groups[shard_id]

    # -- quorum / leadership ----------------------------------------------------

    def has_quorum(self, shard_id: int) -> bool:
        return self.group(shard_id).has_quorum()

    def all_have_quorum(self, shard_ids: list[int] | None = None) -> bool:
        targets = range(self.num_shards) if shard_ids is None else shard_ids
        return all(self.has_quorum(shard_id) for shard_id in targets)

    def leader_id(self, shard_id: int) -> int:
        return self.group(shard_id).leader_id

    def ensure_leader(self, shard_id: int) -> int:
        """Elect a new leader for the shard if the current one is down."""
        group = self.group(shard_id)
        if not group.leader.up:
            previous = group.leader_id
            elected = group.elect_leader()
            if elected != previous:
                self.stats[shard_id].leader_changes += 1
        return group.leader_id

    # -- appending ----------------------------------------------------------------

    def append(self, shard_id: int, entry: ShardLogEntry) -> int:
        """Append ``entry`` through the shard's leader; majority-acked.

        Raises :class:`QuorumUnavailableError` when fewer than a majority of
        the shard's nodes are up (electing a leader first if the previous
        one crashed).  Returns the slot index.
        """
        group = self.group(shard_id)
        if not group.has_quorum():
            raise QuorumUnavailableError(
                f"certification shard {shard_id}: only {len(group.up_nodes())} "
                f"of {len(group.nodes)} group nodes are up"
            )
        self.ensure_leader(shard_id)
        slot = group.append(entry, from_node=group.leader_id)
        self.stats[shard_id].appended_records += 1
        return slot

    # -- failures -----------------------------------------------------------------

    def crash_node(self, shard_id: int, node_id: int) -> None:
        group = self.group(shard_id)
        for node in group.nodes:
            if node.node_id == node_id:
                node.crash()
                return
        raise KeyError(f"shard {shard_id} has no node {node_id}")

    def crash_leader(self, shard_id: int) -> int:
        """Crash the shard's current leader; returns its node id."""
        leader = self.group(shard_id).leader_id
        self.crash_node(shard_id, leader)
        return leader

    def recover_node(self, shard_id: int, node_id: int) -> int:
        """Bring a shard-group node back: state transfer from an up peer."""
        group = self.group(shard_id)
        for node in group.nodes:
            if node.node_id == node_id:
                node.recover()
                transferred = group.catch_up(node)
                self.stats[shard_id].state_transfers += 1
                return transferred
        raise KeyError(f"shard {shard_id} has no node {node_id}")

    # -- log compaction ------------------------------------------------------------

    def compaction_base(self, shard_id: int) -> int:
        """First retained slot of the shard's group (0 = never compacted)."""
        return self.group(shard_id).base_slot()

    def snapshot_at(self, shard_id: int) -> object | None:
        """The snapshot backing the shard group's truncation point."""
        return self.group(shard_id).snapshot()

    def truncate_group(self, shard_id: int, up_to_slot: int,
                       snapshot: object) -> int:
        """Truncate the shard's replicated log beneath ``up_to_slot``.

        Requires quorum (compaction replaces chosen slots; doing so while a
        majority cannot confirm them would risk compacting an unchosen
        value).  Returns the number of entries dropped across up nodes.
        """
        group = self.group(shard_id)
        if not group.has_quorum():
            raise QuorumUnavailableError(
                f"certification shard {shard_id} has no majority; "
                f"compaction needs a quorum to confirm the chosen prefix"
            )
        dropped = group.truncate_to(up_to_slot, snapshot)
        return dropped

    def node_log_lengths(self, shard_id: int) -> list[int]:
        """Retained entry-list length per node (bounded-log evidence)."""
        return [len(node.entries) for node in self.group(shard_id).nodes]

    # -- recovery reads -----------------------------------------------------------

    def chosen_entries(self, shard_id: int) -> list[ShardLogEntry]:
        """The shard's chosen entry sequence above the compaction base, read
        across the up nodes.

        Requires a majority (recovery cannot proceed degraded below quorum —
        a minority might miss chosen entries).  The union read repairs
        leader-local holes: any learned value *is* the chosen value for its
        slot, so the first copy found is authoritative.  Starts at the
        furthest truncation point among up nodes; everything beneath it is
        covered by :meth:`snapshot_at`.
        """
        group = self.group(shard_id)
        if not group.has_quorum():
            raise QuorumUnavailableError(
                f"certification shard {shard_id} has no majority; "
                f"recovery needs a quorum to read the chosen prefix"
            )
        up_nodes = group.up_nodes()
        base = max((node.base_slot for node in up_nodes), default=0)
        length = max(
            (node.base_slot + len(node.entries) for node in up_nodes), default=0
        )
        entries: list[ShardLogEntry] = []
        for slot in range(base, length):
            value = None
            for node in up_nodes:
                if node.covers(slot):
                    value = node.entry_at(slot)
                    if value is not None:
                        break
            if value is None:
                break
            entries.append(value)
        return entries

    def up_count(self, shard_id: int) -> int:
        return len(self.group(shard_id).up_nodes())

    def __repr__(self) -> str:
        return (
            f"ShardPaxosGroups(shards={self.num_shards}, "
            f"nodes_per_shard={self.nodes_per_shard})"
        )


class ReplicatedShardedCertifier:
    """Fault-tolerant sharded certification (see the module docstring).

    Wraps the volatile :class:`~repro.core.sharding.ShardedCertifier` with a
    :class:`ShardPaxosGroups` stable layer.  ``crash_hook``, when set, is
    invoked with a crash-point name at every protocol boundary (``pre-probe``,
    ``post-probe``, ``pre-admit``, ``mid-admit``, ``post-admit``,
    ``pre-flush``, ``mid-flush``, ``post-flush``); a hook that raises models
    a coordinator crash at exactly that point.  Reads (refreshes, horizon
    extensions, stats) delegate to :attr:`core` directly.
    """

    def __init__(
        self,
        num_shards: int = 2,
        *,
        nodes_per_shard: int = 3,
        partitioner: Partitioner | None = None,
        forced_abort_rate: float = 0.0,
        abort_chooser: Callable[[], float] | None = None,
        log_mode: str | None = None,
        crash_hook: Callable[[str], None] | None = None,
        gc_headroom: int = 0,
    ) -> None:
        if gc_headroom < 0:
            raise ConfigurationError("gc_headroom must be >= 0")
        self.groups = ShardPaxosGroups(num_shards, nodes_per_shard)
        self.crash_hook = crash_hook
        #: Default records kept below the replicas' low-water mark by
        #: :meth:`collect_garbage` — the knob trading snapshot cadence
        #: against retained-suffix length (sweepable through the sim config).
        self.gc_headroom = gc_headroom
        self.stats = ShardedGroupStats(per_shard=self.groups.stats)
        # Construction parameters are kept so recovery rebuilds an
        # identically configured coordinator.
        self._forced_abort_rate = forced_abort_rate
        self._abort_chooser = abort_chooser
        self._log_mode = log_mode
        self.core: ShardedCertifier | None = ShardedCertifier(
            num_shards,
            partitioner=partitioner,
            forced_abort_rate=forced_abort_rate,
            abort_chooser=abort_chooser,
            log_mode=log_mode,
        )
        self._partitioner: Partitioner = self.core.partitioner
        #: Exactly-once commit acknowledgements: tx_id → global commit
        #: version, rebuilt from the replicated entries on recovery.
        self._committed_tx: dict[object, int] = {}

    @property
    def num_shards(self) -> int:
        return self.groups.num_shards

    @property
    def crashed(self) -> bool:
        return self.core is None

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    def _hook(self, point: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(point)

    def _alive(self) -> ShardedCertifier:
        if self.core is None:
            raise RecoveryError(
                "the sharded certifier coordinator is crashed; run "
                "recover_sharded_certifier() before serving requests"
            )
        return self.core

    # -- certification -------------------------------------------------------

    def certify(self, request: CertificationRequest,
                *, tx_id: object = None) -> CertificationResult:
        """Certify a transaction; the decision is durable on a majority of
        every touched shard's group before it is acknowledged.

        ``tx_id`` opts into exactly-once acknowledgement: a retry of a
        transaction whose round survived a coordinator crash is answered
        from the recovered commit table instead of being re-certified (and
        double-committed).  Raises :class:`QuorumUnavailableError` — before
        any mutation — when some touched shard's group has no majority.
        """
        core = self._alive()
        self._hook("pre-probe")
        if tx_id is not None and tx_id in self._committed_tx:
            commit_version = self._committed_tx[tx_id]
            self.stats.replayed_acks += 1
            remote = [
                info for info in core.fetch_remote_writesets(
                    request.replica_version,
                    replica=request.origin_replica or None)
                if info.commit_version != commit_version
            ]
            return CertificationResult(
                decision=CertificationDecision.COMMIT,
                tx_commit_version=commit_version,
                remote_writesets=remote,
            )
        fragments = core.partitioner.split(request.writeset)
        if fragments:
            touched = sorted(fragments)
            if not self.groups.all_have_quorum(touched):
                degraded = [s for s in touched if not self.groups.has_quorum(s)]
                raise QuorumUnavailableError(
                    f"no majority in certification shard group(s) {degraded}; "
                    f"update transactions cannot be processed"
                )
        result = core.certify(request, fragments=fragments, phase_hook=self._hook)
        if result.committed and result.tx_commit_version is not None:
            record = core.record_at(result.tx_commit_version)
            self._hook("pre-flush")
            entry = ShardLogEntry(
                kind=ENTRY_COMMIT,
                global_version=record.commit_version,
                writeset=record.writeset,
                touched=tuple(shard_id for shard_id, _ in record.shard_locals),
                origin_replica=record.origin_replica,
                certified_back_to=request.tx_start_version,
                tx_id=tx_id,
            )
            for position, (shard_id, _local) in enumerate(record.shard_locals):
                self.groups.append(shard_id, entry)
                if position == 0:
                    self._hook("mid-flush")
            # A majority of every touched group holds the entry: that is the
            # durability of a replicated deployment, so the shard logs'
            # durable horizons advance without any fsync of their own.
            for shard_id, local in record.shard_locals:
                shard = core.shards[shard_id]
                if local > shard.log.durable_version:
                    shard.log.mark_durable(local)
            core.advance_durable_frontier()
            self._hook("post-flush")
            if tx_id is not None:
                self._committed_tx[tx_id] = result.tx_commit_version
        return result

    # -- garbage collection --------------------------------------------------

    def collect_garbage(self, *, headroom: int | None = None) -> int:
        """Prune below the low-water mark, durably.

        The decided horizon is replicated as a ``gc`` marker to **every**
        shard group before the volatile prune, so a recovering coordinator
        re-prunes to exactly the same version (the satellite invariant: the
        GC low-water mark survives a coordinator restart).  Skipped — not
        failed — while any group lacks quorum: GC is background work.

        ``headroom`` defaults to the certifier's configured
        :attr:`gc_headroom`.  Exactly-once ack entries at or below the pruned
        horizon are dropped with it: their log entries are the rebuild source
        on recovery, so an ack must never outlive its entry — this is what
        keeps the commit-ack table horizon-bound instead of growing with
        history.
        """
        core = self._alive()
        effective = self.gc_headroom if headroom is None else headroom
        target = core.gc_target(headroom=effective)
        if target is None:
            return 0
        if not self.groups.all_have_quorum():
            return 0
        marker = ShardLogEntry(kind=ENTRY_GC, global_version=target)
        for shard_id in range(self.num_shards):
            self.groups.append(shard_id, marker)
        self.stats.gc_markers += 1
        stale = [tx for tx, version in self._committed_tx.items() if version <= target]
        for tx in stale:
            del self._committed_tx[tx]
        self.stats.ack_entries_dropped += len(stale)
        return core.apply_gc(target)

    def committed_acks(self) -> dict[object, int]:
        """A copy of the exactly-once commit-ack table (tx_id → version)."""
        return dict(self._committed_tx)

    @property
    def committed_tx_count(self) -> int:
        """Live size of the exactly-once ack table (bounded under GC)."""
        return len(self._committed_tx)

    # -- crash / recovery ----------------------------------------------------

    def crash(self) -> None:
        """Coordinator crash: every volatile structure is lost.

        The per-shard Paxos groups are stable storage and survive.  The
        certifier refuses requests until
        :func:`repro.recovery.sharded_recovery.recover_sharded_certifier`
        rebuilds the coordinator.
        """
        self.core = None
        self._committed_tx = {}
        self.stats.coordinator_crashes += 1

    def adopt_core(self, core: ShardedCertifier,
                   committed_tx: dict[object, int]) -> None:
        """Install a recovered coordinator (called by the recovery module)."""
        if core.num_shards != self.num_shards:
            raise RecoveryError(
                f"recovered coordinator covers {core.num_shards} shards, "
                f"the groups cover {self.num_shards}"
            )
        self.core = core
        self._partitioner = core.partitioner
        self._committed_tx = dict(committed_tx)
        self.stats.recoveries += 1

    def rebuild_parameters(self) -> dict[str, object]:
        """Constructor parameters recovery must reproduce."""
        return {
            "forced_abort_rate": self._forced_abort_rate,
            "abort_chooser": self._abort_chooser,
            "log_mode": self._log_mode,
            "partitioner": self._partitioner,
        }

    # -- convenience passthroughs (volatile reads) ---------------------------

    def fetch_remote_writesets(self, replica_version: int,
                               check_back_to: int | None = None,
                               *, replica: str | None = None,
                               up_to: int | None = None,
                               exclude_version: int | None = None):
        return self._alive().fetch_remote_writesets(
            replica_version, check_back_to, replica=replica, up_to=up_to,
            exclude_version=exclude_version)

    def note_replica_version(self, replica: str, version: int) -> None:
        self._alive().note_replica_version(replica, version)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else f"version={self.core.last_version}"
        return (
            f"ReplicatedShardedCertifier(shards={self.num_shards}, "
            f"nodes_per_shard={self.groups.nodes_per_shard}, {state})"
        )
