"""Workload generators: AllUpdates, TPC-B and TPC-W (shopping mix).

Each workload comes in two forms that share the same parameters:

* a **simulation profile** (:meth:`WorkloadSpec.next_transaction`) used by the
  cluster models — it yields per-transaction CPU costs and synthetic
  writesets whose sizes and conflict structure match the paper's description
  (54 / 158 / 275 byte average writesets, update fractions, hot rows);
* a **functional form** (:meth:`WorkloadSpec.schemas`,
  :meth:`WorkloadSpec.setup`, :meth:`WorkloadSpec.run_transaction`) that runs
  real transactions through the public client API against the real engine,
  used by the examples and the integration tests.

Scenario axes beyond the paper (e.g. AllUpdates' ``update_burst``
session-affinity knob) are plain constructor options, forwarded through
``workload_by_name(..., **options)``; ``docs/benchmarks.md`` lists which
benchmark exercises which axis.
"""

from repro.workloads.spec import TransactionProfile, WorkloadSpec, workload_by_name
from repro.workloads.allupdates import AllUpdatesWorkload
from repro.workloads.tpcb import TPCBWorkload
from repro.workloads.tpcw import TPCWWorkload

#: Module-style aliases so ``from repro import allupdates`` reads naturally.
allupdates = AllUpdatesWorkload
tpcb = TPCBWorkload
tpcw = TPCWWorkload

__all__ = [
    "AllUpdatesWorkload",
    "TPCBWorkload",
    "TPCWWorkload",
    "TransactionProfile",
    "WorkloadSpec",
    "allupdates",
    "tpcb",
    "tpcw",
    "workload_by_name",
]
