"""The workload interface shared by the simulator and the functional path."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.config import WorkloadName
from repro.core.writeset import WriteSet
from repro.engine.table import TableSchema
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.middleware.client_api import ClientSession


@dataclass(frozen=True)
class TransactionProfile:
    """Everything the simulator needs to know about one transaction."""

    readonly: bool
    exec_cpu_ms: float
    writeset: WriteSet = field(default_factory=WriteSet)
    label: str = "txn"

    @property
    def is_update(self) -> bool:
        return not self.readonly


class WorkloadSpec(abc.ABC):
    """Base class for the three benchmarks.

    Subclasses define the per-transaction CPU cost, the writeset structure
    (which determines both the wire size and the conflict behaviour), and the
    functional schema plus transaction bodies used by the examples.
    """

    #: Which benchmark this is.
    name: WorkloadName
    #: Closed-loop clients attached to each replica (sized to drive a replica
    #: at ~85% of standalone peak, per the paper's methodology).
    default_clients_per_replica: int = 10
    #: CPU cost of applying one remote writeset at a replica (ms).
    writeset_apply_cpu_ms: float = 0.25
    #: Mean extra fsync delay caused by database page IO when the logging
    #: channel is shared with the data files (ms).  Zero when the database is
    #: tiny and effectively memory-resident.
    page_io_interference_ms: float = 1.0
    #: In-memory commit cost when synchronous commit is disabled (ms).
    in_memory_commit_ms: float = 0.05
    #: Client think time between transactions (ms).  Zero for the
    #: back-to-back AllUpdates/TPC-B clients; TPC-W emulated browsers think.
    think_time_ms: float = 0.0

    def __init__(self, *, num_replicas: int = 1, scale: int = 1) -> None:
        self.num_replicas = max(1, num_replicas)
        self.scale = max(1, scale)

    # -- simulation interface ---------------------------------------------------

    @abc.abstractmethod
    def next_transaction(self, rng: RandomStreams, *, replica_index: int,
                         client_index: int, sequence: int) -> TransactionProfile:
        """Generate the next transaction for a given client."""

    # -- functional interface -----------------------------------------------------

    @abc.abstractmethod
    def schemas(self) -> Sequence[TableSchema]:
        """Table schemas for the functional (engine-backed) form."""

    @abc.abstractmethod
    def setup(self, session: "ClientSession") -> None:
        """Load initial data through a client session."""

    @abc.abstractmethod
    def run_transaction(self, session: "ClientSession", rng: RandomStreams, *,
                        client_index: int = 0, sequence: int = 0) -> bool:
        """Run one transaction through the public client API.

        Returns True when the transaction committed, False when it aborted
        (callers decide whether to retry).
        """

    # -- shared helpers -------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name.value,
            "clients_per_replica": self.default_clients_per_replica,
            "writeset_apply_cpu_ms": self.writeset_apply_cpu_ms,
            "page_io_interference_ms": self.page_io_interference_ms,
            "num_replicas": self.num_replicas,
            "scale": self.scale,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(replicas={self.num_replicas}, scale={self.scale})"


def workload_by_name(name: WorkloadName | str, *, num_replicas: int = 1,
                     scale: int = 1, **options: object) -> WorkloadSpec:
    """Instantiate a workload from its :class:`WorkloadName`.

    Extra keyword ``options`` are forwarded to the workload constructor —
    the scenario axes a specific benchmark exposes beyond the paper's
    parameters (e.g. ``update_burst`` for AllUpdates).  Unknown options
    raise ``TypeError`` from the constructor.
    """
    from repro.workloads.allupdates import AllUpdatesWorkload
    from repro.workloads.tpcb import TPCBWorkload
    from repro.workloads.tpcw import TPCWWorkload

    name = WorkloadName(name)
    classes = {
        WorkloadName.ALL_UPDATES: AllUpdatesWorkload,
        WorkloadName.TPC_B: TPCBWorkload,
        WorkloadName.TPC_W: TPCWWorkload,
    }
    return classes[name](num_replicas=num_replicas, scale=scale, **options)
