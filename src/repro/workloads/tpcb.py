"""The TPC-B benchmark (paper Section 9.1).

TPC-B transactions contain "small writes and one read" — the classic
bank-transfer profile: update one account, its teller and its branch, read
the account balance back and append a history record.  The average writeset
size is 158 bytes.  Unlike AllUpdates, TPC-B exhibits genuine write-write
conflicts (hot branch and teller rows) and, under Tashkent-API, *artificial*
conflicts between remote writeset groups (the paper measures a 35% rate),
which force extra serialisation points.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import WorkloadName
from repro.core.writeset import WriteSet
from repro.engine.table import TableSchema
from repro.sim.rng import RandomStreams
from repro.workloads.spec import TransactionProfile, WorkloadSpec


class TPCBWorkload(WorkloadSpec):
    """The TPC-B bank-transfer workload."""

    name = WorkloadName.TPC_B
    default_clients_per_replica = 10
    writeset_apply_cpu_ms = 0.28
    page_io_interference_ms = 1.0
    #: CPU to execute one TPC-B transaction (reads + writes) at the replica.
    exec_cpu_ms = 4.3

    #: TPC-B scaling: tellers per branch and accounts per branch.  The
    #: functional form uses a reduced accounts-per-branch so the examples
    #: stay fast; the conflict structure (hot branch rows) is unchanged.
    tellers_per_branch = 10
    accounts_per_branch_sim = 100_000
    accounts_per_branch_functional = 200

    #: Branches per replica.  TPC-B scales the database with the offered
    #: load; enough branches keep genuine write-write conflicts modest (the
    #: paper: "TPC-B and TPC-W have very few (non-artificial) conflicts")
    #: while the hot branch rows still produce artificial conflicts between
    #: remote writeset groups under Tashkent-API.
    branches_per_replica = 40

    def __init__(self, *, num_replicas: int = 1, scale: int = 1) -> None:
        super().__init__(num_replicas=num_replicas, scale=scale)
        self.branches = max(1, self.num_replicas) * self.branches_per_replica * self.scale
        #: The functional form keeps the database small (a few branches) so
        #: the examples and integration tests stay fast; the conflict
        #: structure (hot branch rows) is unchanged.
        self.functional_branches = max(1, self.num_replicas) * self.scale

    # -- simulation profile -----------------------------------------------------------

    def next_transaction(self, rng: RandomStreams, *, replica_index: int,
                         client_index: int, sequence: int) -> TransactionProfile:
        stream = f"tpcb:r{replica_index}"
        branch = rng.choice_index(stream, self.branches)
        teller = branch * self.tellers_per_branch + rng.choice_index(
            stream, self.tellers_per_branch
        )
        account = branch * self.accounts_per_branch_sim + rng.choice_index(
            stream, self.accounts_per_branch_sim
        )
        delta = rng.choice_index(stream, 1999) - 999
        writeset = WriteSet()
        writeset.add_update("accounts", account, balance_delta=delta)
        writeset.add_update("tellers", teller, balance_delta=delta)
        writeset.add_update("branches", branch, balance_delta=delta, filler="b" * 40)
        writeset.add_insert(
            "history",
            f"h-{replica_index}-{client_index}-{sequence}",
            account=account,
            teller=teller,
            branch=branch,
            delta=delta,
        )
        return TransactionProfile(
            readonly=False,
            exec_cpu_ms=self.exec_cpu_ms,
            writeset=writeset,
            label="tpcb",
        )

    # -- functional form ------------------------------------------------------------------

    def schemas(self) -> Sequence[TableSchema]:
        return (
            TableSchema("branches", ("id", "balance", "filler"), "id"),
            TableSchema("tellers", ("id", "branch", "balance"), "id"),
            TableSchema("accounts", ("id", "branch", "balance"), "id"),
            TableSchema("history", ("id", "account", "teller", "branch", "delta"), "id"),
        )

    def setup(self, session) -> None:
        """Populate branches, tellers and accounts with zero balances."""
        session.begin()
        accounts_per_branch = self.accounts_per_branch_functional
        for branch in range(self.functional_branches):
            session.insert("branches", branch, id=branch, balance=0, filler="")
            for t in range(self.tellers_per_branch):
                teller = branch * self.tellers_per_branch + t
                session.insert("tellers", teller, id=teller, branch=branch, balance=0)
            for a in range(accounts_per_branch):
                account = branch * accounts_per_branch + a
                session.insert("accounts", account, id=account, branch=branch, balance=0)
        outcome = session.commit()
        if not outcome.committed:
            raise RuntimeError("TPC-B setup transaction failed to commit")

    def run_transaction(self, session, rng: RandomStreams, *, client_index: int = 0,
                        sequence: int = 0) -> bool:
        """The TPC-B profile transaction against the functional schema."""
        accounts_per_branch = self.accounts_per_branch_functional
        stream = f"tpcb-func:{client_index}"
        branch = rng.choice_index(stream, self.functional_branches)
        teller = branch * self.tellers_per_branch + rng.choice_index(
            stream, self.tellers_per_branch
        )
        account = branch * accounts_per_branch + rng.choice_index(stream, accounts_per_branch)
        delta = rng.choice_index(stream, 1999) - 999

        session.begin()
        account_row = session.read("accounts", account)
        teller_row = session.read("tellers", teller)
        branch_row = session.read("branches", branch)
        if account_row is None or teller_row is None or branch_row is None:
            session.abort()
            return False
        session.update("accounts", account, balance=int(account_row["balance"]) + delta)
        session.update("tellers", teller, balance=int(teller_row["balance"]) + delta)
        session.update("branches", branch, balance=int(branch_row["balance"]) + delta)
        session.insert(
            "history",
            f"h-{client_index}-{sequence}",
            id=f"h-{client_index}-{sequence}",
            account=account,
            teller=teller,
            branch=branch,
            delta=delta,
        )
        return session.commit().committed

    # -- analysis helpers ---------------------------------------------------------------------

    def expected_conflict_tables(self) -> frozenset[str]:
        """Tables whose rows are hot enough to produce real conflicts."""
        return frozenset({"branches", "tellers"})
