"""The AllUpdates benchmark (paper Section 9.1).

"Clients rapidly generate back-to-back short update transactions that do not
conflict.  The average writeset size is 54 bytes for each update
transaction.  AllUpdates represents a worst-case workload for a replicated
system."

Every transaction updates exactly one counter row owned by the issuing
client, so there are never write-write conflicts (neither genuine nor
artificial), which is why Tashkent-API can group every commit record and why
forced aborts (Section 9.5) have to be injected at the certifier to study
abort behaviour at all.

``update_burst`` opens a scenario axis beyond the paper: with a burst of
*b*, each client re-updates its current counter row *b* times before moving
to the next slot (``update_burst=1``, the default, is exactly the paper's
cycling behaviour).  Burstiness is invisible under the paper's static client
pinning — a client's own replica always observed its previous commit, so
consecutive rewrites never conflict — but it is the workload property that
separates routing policies: a scheduler that bounces a mid-burst client to a
replica which has not yet applied its previous commit buys a certain
certification abort (the writeset intersects its own predecessor), while
conflict-aware affinity routing keeps the burst on one replica.  See
``docs/scheduler.md`` and ``benchmarks/test_scheduler_routing.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import WorkloadName
from repro.core.writeset import WriteSet
from repro.engine.table import TableSchema
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workloads.spec import TransactionProfile, WorkloadSpec


class AllUpdatesWorkload(WorkloadSpec):
    """Back-to-back, non-conflicting, single-row update transactions."""

    name = WorkloadName.ALL_UPDATES
    default_clients_per_replica = 10
    writeset_apply_cpu_ms = 0.19
    page_io_interference_ms = 1.0
    #: CPU to execute one AllUpdates transaction at the replica.
    exec_cpu_ms = 1.3
    #: Rows per client in the counters table (functional form).
    rows_per_client = 4

    def __init__(self, *, num_replicas: int = 1, scale: int = 1,
                 update_burst: int = 1) -> None:
        super().__init__(num_replicas=num_replicas, scale=scale)
        if update_burst < 1:
            raise ConfigurationError("update_burst must be >= 1")
        #: Consecutive transactions a client aims at the same counter row
        #: before advancing to the next slot (1 = the paper's behaviour).
        self.update_burst = update_burst

    # -- simulation profile ---------------------------------------------------------

    def next_transaction(self, rng: RandomStreams, *, replica_index: int,
                         client_index: int, sequence: int) -> TransactionProfile:
        writeset = WriteSet()
        # One small update to a row private to this client: a 54-byte
        # writeset with zero conflict probability.
        key = self._counter_key(replica_index, client_index, sequence)
        writeset.add_update("counters", key, value=sequence, note="x" * 24)
        return TransactionProfile(
            readonly=False,
            exec_cpu_ms=self.exec_cpu_ms,
            writeset=writeset,
            label="allupdates",
        )

    def _counter_key(self, replica_index: int, client_index: int, sequence: int) -> str:
        slot = (sequence // self.update_burst) % self.rows_per_client
        return f"r{replica_index}-c{client_index}-{slot}"

    # -- functional form ----------------------------------------------------------------

    def schemas(self) -> Sequence[TableSchema]:
        return (
            TableSchema(
                name="counters",
                columns=("id", "value", "note"),
                primary_key="id",
            ),
        )

    def setup(self, session) -> None:
        """Create one counter row per (replica, client, slot) combination."""
        session.begin()
        for replica_index in range(self.num_replicas):
            for client_index in range(self.default_clients_per_replica):
                for slot in range(self.rows_per_client):
                    key = f"r{replica_index}-c{client_index}-{slot}"
                    session.insert("counters", key, id=key, value=0, note="")
        outcome = session.commit()
        if not outcome.committed:
            raise RuntimeError("AllUpdates setup transaction failed to commit")

    def run_transaction(self, session, rng: RandomStreams, *, client_index: int = 0,
                        sequence: int = 0) -> bool:
        """Increment this client's counter row (never conflicts)."""
        replica_index = client_index % self.num_replicas
        key = self._counter_key(replica_index, client_index, sequence)
        session.begin()
        row = session.read("counters", key)
        current = int(row["value"]) if row is not None else 0
        session.update("counters", key, value=current + 1, note=f"seq-{sequence}")
        return session.commit().committed
