"""The TPC-W benchmark, shopping mix (paper Section 9.1).

TPC-W models an on-line bookstore.  The paper uses the shopping mix (20%
update transactions) and reports an average writeset size of 275 bytes.  In
contrast to AllUpdates and TPC-B, TPC-W transactions are heavyweight — "the
relatively heavy-weight transactions of TPC-W make CPU processing the
bottleneck" — and the update rate is low enough that separating ordering and
durability is *not* a bottleneck (Figure 12: Tashkent-API matches Base),
while the shared IO channel still penalises the systems that log at the
replicas.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import WorkloadName
from repro.core.writeset import WriteSet
from repro.engine.table import TableSchema
from repro.sim.rng import RandomStreams
from repro.workloads.spec import TransactionProfile, WorkloadSpec


class TPCWWorkload(WorkloadSpec):
    """The TPC-W on-line bookstore, shopping mix."""

    name = WorkloadName.TPC_W
    default_clients_per_replica = 10
    writeset_apply_cpu_ms = 0.6
    #: The TPC-W database (~700 MB in the paper) does not fit in memory, so a
    #: shared IO channel sees heavy interference from page reads and
    #: dirty-page write-back: a commit-record fsync queues behind a burst of
    #: data-page IO ("significantly higher critical path fsync delays due to
    #: non-logging IO congestion", Section 9.4).
    page_io_interference_ms = 220.0
    #: Fraction of update transactions in the shopping mix.
    update_fraction = 0.20
    #: CPU costs: browsing interactions are heavy (search, best-sellers...),
    #: order placement is heavier still.
    readonly_cpu_ms = 40.0
    update_cpu_ms = 48.0
    #: Emulated-browser think time between interactions (ms).
    think_time_ms = 400.0

    #: Catalogue sizes (functional form keeps them small but proportional).
    items_sim = 10_000
    customers_sim = 28_800
    items_functional = 100
    customers_functional = 50

    # -- simulation profile -----------------------------------------------------------

    def next_transaction(self, rng: RandomStreams, *, replica_index: int,
                         client_index: int, sequence: int) -> TransactionProfile:
        stream = f"tpcw:r{replica_index}"
        if rng.random(stream) >= self.update_fraction:
            return TransactionProfile(
                readonly=True,
                exec_cpu_ms=self.readonly_cpu_ms,
                label="tpcw-browse",
            )
        customer = rng.choice_index(stream, self.customers_sim)
        item = rng.choice_index(stream, self.items_sim)
        order_id = f"o-{replica_index}-{client_index}-{sequence}"
        writeset = WriteSet()
        writeset.add_insert(
            "orders", order_id,
            customer=customer, total=rng.choice_index(stream, 500), status="pending",
            ship_addr="street " + "x" * 40,
        )
        writeset.add_insert(
            "order_line", f"{order_id}-1",
            order=order_id, item=item, qty=1 + rng.choice_index(stream, 3),
            comments="y" * 60,
        )
        writeset.add_update("items", item, stock_delta=-1)
        writeset.add_update("customers", customer, last_order=order_id, discount=1)
        return TransactionProfile(
            readonly=False,
            exec_cpu_ms=self.update_cpu_ms,
            writeset=writeset,
            label="tpcw-buy",
        )

    # -- functional form ------------------------------------------------------------------

    def schemas(self) -> Sequence[TableSchema]:
        return (
            TableSchema("items", ("id", "title", "price", "stock"), "id"),
            TableSchema("customers", ("id", "name", "discount", "last_order"), "id"),
            TableSchema("orders", ("id", "customer", "total", "status", "ship_addr"), "id"),
            TableSchema("order_line", ("id", "order", "item", "qty", "comments"), "id"),
            TableSchema("carts", ("id", "customer", "item", "qty"), "id"),
        )

    def setup(self, session) -> None:
        """Load the catalogue and customer base."""
        session.begin()
        for item in range(self.items_functional):
            session.insert(
                "items", item,
                id=item, title=f"book-{item}", price=5 + item % 40, stock=1000,
            )
        for customer in range(self.customers_functional):
            session.insert(
                "customers", customer,
                id=customer, name=f"customer-{customer}", discount=0, last_order="",
            )
        outcome = session.commit()
        if not outcome.committed:
            raise RuntimeError("TPC-W setup transaction failed to commit")

    def run_transaction(self, session, rng: RandomStreams, *, client_index: int = 0,
                        sequence: int = 0) -> bool:
        """One shopping-mix interaction: 80% browse, 20% buy."""
        stream = f"tpcw-func:{client_index}"
        if rng.random(stream) >= self.update_fraction:
            return self._browse(session, rng, stream)
        return self._buy(session, rng, stream, client_index, sequence)

    def _browse(self, session, rng: RandomStreams, stream: str) -> bool:
        """Read-only interaction: look at a few catalogue items."""
        session.begin()
        for _ in range(3):
            item = rng.choice_index(stream, self.items_functional)
            session.read("items", item)
        return session.commit().committed

    def _buy(self, session, rng: RandomStreams, stream: str,
             client_index: int, sequence: int) -> bool:
        """Update interaction: place an order for one item."""
        customer = rng.choice_index(stream, self.customers_functional)
        item = rng.choice_index(stream, self.items_functional)
        order_id = f"o-{client_index}-{sequence}"
        session.begin()
        item_row = session.read("items", item)
        customer_row = session.read("customers", customer)
        if item_row is None or customer_row is None:
            session.abort()
            return False
        qty = 1 + rng.choice_index(stream, 3)
        session.insert(
            "orders", order_id,
            id=order_id, customer=customer, total=int(item_row["price"]) * qty,
            status="pending", ship_addr="1 repro way",
        )
        session.insert(
            "order_line", f"{order_id}-1",
            id=f"{order_id}-1", order=order_id, item=item, qty=qty, comments="",
        )
        session.update("items", item, stock=int(item_row["stock"]) - qty)
        session.update("customers", customer, last_order=order_id)
        return session.commit().committed
