"""Live-cluster node entrypoints: ``python -m repro.live.node --role ...``.

One process per node, three roles, all serving the length-prefixed JSON
protocol of :mod:`repro.live.wire` over asyncio TCP:

``certifier-shard``
    The durable tail of one certification shard: an append-only,
    batch-sequenced WAL file with a real ``os.fsync`` per batch
    (:class:`~repro.live.wal.BatchWalFile`).  The scheduler's certifier
    service gates every commit decision on this process's acknowledgement,
    so killing it mid-flush is a genuine durability-path fault.

``scheduler``
    The certification coordinator and cluster front door.  Hosts the
    *unmodified* functional certifier service (:func:`make_certifier_service`
    — the seed :class:`CertifierService` at one shard, the
    :class:`ShardedCertifierService` above that), with each shard's log
    device replaced by a :class:`~repro.live.wal.RemoteWalDevice` pointed at
    a certifier-shard process.  Adds the **exactly-once transaction table**:
    every client commit carries a ``tx_id``; the admit outcome is recorded
    under it, a duplicate ``certify`` is answered from the record instead of
    re-admitted, and ``commit_status`` lets a client that lost its replica
    mid-commit resolve the fate of its transaction without re-executing it.

``replica``
    One database replica: an engine :class:`Database` (file-backed engine
    WAL) behind the *unmodified* :class:`TransparentProxy`, whose certifier
    is a :class:`~repro.live.client.LiveCertifierClient` speaking the wire
    protocol to the scheduler.  Serves client sessions (begin / read / scan /
    insert / update / delete / commit / abort) plus the maintenance surface
    (refresh, vacuum, dump_table) the cluster driver uses.

Concurrency (the ``live.pipeline`` spec switch, default on):

* every server accepts request-id (``rid``) tagged frames and answers them
  **out of order** — a tagged request is dispatched as its own task, so one
  connection carries many in-flight calls.  ``rid``-less frames keep the
  original strict read→reply→read discipline per connection.
* the **scheduler** runs all service work on a single service thread (the
  middleware objects are not thread-safe) and funnels concurrent ``certify``
  requests through a batcher: pending requests are cut into *rounds* (time/
  size policy from :mod:`repro.transport`) and certified via the service's
  ``certify_batch``, so every commit in a round shares one WAL append + one
  real fsync per touched shard.  With a zero window this is *natural* group
  commit — a round accumulates exactly while the previous round's WAL round
  trip + fsync is in flight.
* a **replica** runs client ops on a small thread pool under one
  replica-wide state lock; the lock is released only while a commit waits on
  its certification round trip, so commits overlap on the wire while all
  local work stays serialized.  A :class:`~repro.live.client.CommitGate`
  finalizes commits in certification (= send = global version) order.

With ``live.pipeline`` off every node behaves exactly like the original
strict one-in-flight protocol — the unbatched baseline the live benchmark
sweep compares against.

Readiness is announced by a machine-readable handshake line on stdout
(:data:`~repro.live.harness.READY_PREFIX` + JSON with the kernel-assigned
port) — nodes bind to port 0 unless a restart pins the previous port.

Deterministic fault injection: ``--wedge-before-sync`` / ``--wedge-after-sync``
(certifier-shard) and ``--wedge-before-commit-op`` / ``--wedge-after-commit-op``
(replica) make the node stop responding at an exact protocol point — after
which the harness delivers the actual ``kill -9``.  This maps the in-process
crash points of ``tests/faults.py`` onto real processes: wedge-before-sync is
``pre-flush`` (decision unreleased, nothing durable), wedge-after-sync is
``mid-flush`` (durable but unacknowledged), wedge-after-commit-op is
``post-flush`` (everything durable, only the client ack lost).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

from repro.engine.locks import LockBlockedError
from repro.errors import TransactionAborted
from repro.live import codec
from repro.live.harness import READY_PREFIX
from repro.live.wire import (
    RemoteCallError,
    WireError,
    encode_frame,
    read_frame,
)

#: Returned by a role handler to make the whole process hang forever (the
#: deterministic "wedge" the crash tests SIGKILL through).
WEDGE = object()


class ServerStats:
    """Per-node wire counters, served by every role's ``stats`` op."""

    def __init__(self) -> None:
        self.connections = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.in_flight = 0
        self.in_flight_high_water = 0

    def begin_request(self) -> None:
        self.in_flight += 1
        if self.in_flight > self.in_flight_high_water:
            self.in_flight_high_water = self.in_flight

    def end_request(self) -> None:
        self.in_flight -= 1

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "in_flight_high_water": self.in_flight_high_water,
        }


def _error_envelope(exc: Exception, *, unexpected_trace: bool = True) -> dict:
    """The wire error envelope for ``exc`` (same shape on every path)."""
    from repro.errors import TransactionAborted

    if isinstance(exc, RemoteCallError):
        return {"ok": False, "error": exc.error,
                "error_type": exc.error_type, "reason": exc.reason}
    if isinstance(exc, TransactionAborted):
        return {"ok": False, "error": str(exc),
                "error_type": "TransactionAborted", "reason": exc.reason}
    from repro.errors import ReproError

    if unexpected_trace and not isinstance(exc, ReproError):
        traceback.print_exc(file=sys.stderr)
    return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}


# ---------------------------------------------------------------------------
# certifier-shard role
# ---------------------------------------------------------------------------


class CertifierShardRole:
    """Durable WAL server for one certification shard.

    Handled inline on the event loop (no executor): the WAL fsync *is* the
    serialization point, and inline handling keeps the wedge fault points
    exactly where PR 8 put them.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.live.wal import BatchWalFile

        self.shard_id = args.shard_id
        self.wal = BatchWalFile(args.wal or f"{args.name}.wal",
                                fsync_floor_ms=args.fsync_floor_ms)
        self.wedge_before_sync = args.wedge_before_sync
        self.wedge_after_sync = args.wedge_after_sync
        self.append_ops = 0
        self.server_stats = ServerStats()

    def handle(self, op: str, payload: dict):
        if op == "wal_append":
            self.append_ops += 1
            if self.wedge_before_sync and self.append_ops == self.wedge_before_sync:
                # Nothing written: the batch is lost with this process; the
                # scheduler still holds it and resends after the restart.
                return WEDGE
            import binascii

            applied = self.wal.append_batch(
                int(payload["seq"]),
                [binascii.unhexlify(p) for p in payload["payloads"]],
            )
            if self.wedge_after_sync and self.append_ops == self.wedge_after_sync:
                # Durable but unacknowledged: the resend after restart must
                # be deduplicated by seq.
                return WEDGE
            return {"applied": applied, "last_seq": self.wal.last_seq}
        if op == "wal_read":
            # Promotion path: a standby scheduler reads back the applied
            # batches to rebuild the certifier.  Every batch was fsynced
            # before it was acknowledged, so re-reading the file from disk
            # (the append handle runs on this same event-loop thread) sees
            # exactly the acknowledged prefix.
            import binascii

            from repro.live.wal import read_wal_batches

            return {
                "last_seq": self.wal.last_seq,
                "batches": [
                    {"seq": batch["seq"],
                     "payloads": [binascii.hexlify(p).decode()
                                  for p in batch["payloads"]]}
                    for batch in read_wal_batches(self.wal.path)
                ],
            }
        if op == "wal_stats":
            return self.wal.stats()
        if op == "stats":
            return {"wal": self.wal.stats(), "append_ops": self.append_ops,
                    "server": self.server_stats.as_dict()}
        if op == "ping":
            return {"role": "certifier-shard", "shard_id": self.shard_id}
        raise RemoteCallError(op, f"unknown certifier-shard op {op!r}")

    def describe(self) -> dict:
        return {"shard_id": self.shard_id, "wal": str(self.wal.path)}


# ---------------------------------------------------------------------------
# scheduler role
# ---------------------------------------------------------------------------


class _CertifyBatcher:
    """Collects concurrent ``certify`` requests into certification rounds.

    Lives on the event loop; submission parks an ``asyncio`` future, the
    flusher loop cuts rounds by the configured flush policy and runs each
    round as **one** job on the scheduler's service thread.  With a zero
    window the cut happens as soon as the service thread can take it —
    requests arriving while a round's WAL append + fsync is in flight simply
    join the next round (natural group commit, no added latency).
    """

    def __init__(self, role: "SchedulerRole", loop: asyncio.AbstractEventLoop) -> None:
        from repro.transport import ExplicitFlushPolicy, TimeWindowFlushPolicy

        self._role = role
        self._loop = loop
        self._pending: list[tuple[dict, asyncio.Future]] = []
        self._wake = asyncio.Event()
        self._window_ms = role.batch_window_ms
        if self._window_ms > 0:
            self._policy = TimeWindowFlushPolicy(self._window_ms,
                                                 max_batch=role.batch_max)
        else:
            self._policy = ExplicitFlushPolicy(role.batch_max)
        #: Seconds the service thread spent executing rounds (the rest of
        #: wall time the batcher was waiting for requests to arrive).
        self.busy_s = 0.0
        self._task = loop.create_task(self._run())

    async def submit(self, payload: dict) -> dict:
        future: asyncio.Future = self._loop.create_future()
        self._pending.append((payload, future))
        self._wake.set()
        return await future

    async def _run(self) -> None:
        while True:
            if not self._pending:
                self._wake.clear()
                await self._wake.wait()
            if self._window_ms > 0:
                # Accumulate until the policy fires (window elapsed or batch
                # cap reached) — or until arrivals go quiescent: when every
                # certify the scheduler has read is already in ``pending``
                # and nothing new landed across two polls, waiting out the
                # rest of the window only adds latency, so cut early.
                started = self._loop.time()
                step = max(self._window_ms / 8000.0, 0.00025)
                stable_polls = 0
                last_seen = len(self._pending)
                while not self._policy.should_flush(
                        len(self._pending),
                        (self._loop.time() - started) * 1000.0):
                    await asyncio.sleep(step)
                    pending = len(self._pending)
                    in_flight = self._role.server_stats.in_flight
                    if pending == last_seen and pending >= in_flight:
                        stable_polls += 1
                        if stable_polls >= 2:
                            break
                    else:
                        stable_polls = 0
                    last_seen = pending
            cap = self._policy.max_batch or len(self._pending)
            batch = self._pending[:cap]
            del self._pending[:len(batch)]
            payloads = [payload for payload, _ in batch]
            round_started = self._loop.time()
            try:
                responses = await self._loop.run_in_executor(
                    self._role.service_pool,
                    self._role.certify_batch_payloads, payloads)
            except Exception as exc:  # noqa: BLE001 - per-round boundary
                for _, future in batch:
                    if not future.done():
                        future.set_result(_error_envelope(exc))
                continue
            finally:
                self.busy_s += self._loop.time() - round_started
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)


class SchedulerRole:
    """Certification coordinator + exactly-once table + routing directory."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.core.group_commit import GroupCommitStats
        from repro.live.wal import RemoteWalDevice
        from repro.middleware.certifier import CertifierConfig
        from repro.middleware.sharded_certifier import make_certifier_service

        spec = _load_spec(args)
        cert = spec.get("certifier", {})
        live = spec.get("live", {})
        shards = [_parse_addr(a) for a in (args.shard or [])]
        config = CertifierConfig(
            durability_enabled=cert.get("durability_enabled", True),
            forced_abort_rate=cert.get("forced_abort_rate", 0.0),
            rng_seed=cert.get("rng_seed", 1),
            shards=max(1, len(shards)) if cert.get("shards") is None else cert["shards"],
        )
        if cert.get("gc_headroom_versions") is not None:
            import dataclasses

            config = dataclasses.replace(
                config, gc_headroom_versions=cert["gc_headroom_versions"])
        if len(shards) != config.shards:
            raise SystemExit(
                f"scheduler needs one --shard address per certifier shard "
                f"({config.shards}), got {len(shards)}"
            )
        self.devices = [
            RemoteWalDevice(host, port, shard_id=i)
            for i, (host, port) in enumerate(shards)
        ]
        self.shard_addrs = shards
        self.cert_config = config
        #: Replicated-scheduler mode: shard WAL payloads are full round
        #: entries a standby can rebuild the certifier from (tentpole of the
        #: failover work); off keeps the opaque-marker WAL shape.
        self.replicated = bool(live.get("scheduler_standby", False))
        self.standby = bool(getattr(args, "standby", False))
        #: A standby answers only control-plane ops until promoted; clients
        #: see ``NotPromoted`` errors their retry loop backs off on.
        self.promoted = not self.standby
        self.promotions = 0
        self.last_promotion: dict | None = None
        self.seed_package = None
        if self.standby and not self.replicated:
            raise SystemExit("--standby requires live.scheduler_standby in the spec")
        if self.replicated:
            from repro.live.replicated import LiveReplicatedCertifierService

            # Always the sharded service, even at one shard: the seed
            # CertifierService has no failover hooks, and the single-shard
            # sharded core is decision-equivalent to it.
            self.service = LiveReplicatedCertifierService(
                config, log_devices=list(self.devices))
            if self.standby:
                self._seed_from_primary(getattr(args, "primary", None), config)
        elif config.shards == 1:
            self.service = make_certifier_service(config, log_device=self.devices[0])
        else:
            self.service = make_certifier_service(config, log_devices=list(self.devices))
        self.wedge_before_certify_round = args.wedge_before_certify_round
        self.wedge_after_certify_round = args.wedge_after_certify_round
        self.certify_rounds = 0
        self.pipeline = bool(live.get("pipeline", True))
        self.batch_window_ms = float(live.get("certify_batch_window_ms", 0.0))
        self.batch_max = int(live.get("certify_batch_max", 64))
        #: Certification-round size histogram (how many concurrent certifies
        #: shared one round, and with it one WAL fsync per touched shard).
        self.batch_stats = GroupCommitStats()
        #: Seconds spent inside ``certify_batch_payloads`` on the service
        #: thread (excludes the executor hand-off either way).
        self.certify_exec_s = 0.0
        #: All service work runs on this one thread — the middleware objects
        #: are not thread-safe, and one writer thread *is* the group-commit
        #: model: everything pending when it frees up forms the next round.
        self.service_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="scheduler-service")
        self._batcher: _CertifyBatcher | None = None
        #: replica name -> server-side writeset subscription.
        self.subscriptions: dict[str, object] = {}
        #: replica name -> (host, port) routing directory.
        self.replica_addrs: dict[str, tuple[str, int]] = {}
        #: Exactly-once transaction table: tx_id -> recorded certify outcome.
        self.tx_table: dict[str, dict] = {}
        self.tx_admits = 0
        self.duplicate_tx_hits = 0
        self.status_queries = 0
        self.server_stats = ServerStats()

    # -- standby seeding and promotion ----------------------------------------

    def _seed_from_primary(self, primary: str | None, config) -> None:
        """Best-effort warm boot from the live primary's state transfer.

        A reachable primary hands over a checksummed
        :class:`StateTransferPackage` (PR 6's anti-entropy unit); the
        standby installs it and keeps the package around so promotion can
        cross-check the WAL rebuild against it.  An unreachable primary
        (already dead, or racing its own boot) degrades to a cold standby —
        promotion rebuilds everything from the shard WALs alone.
        """
        from repro.live.replicated import LiveReplicatedCertifierService
        from repro.live.wire import ConnectionLost, WireClient

        if primary is None:
            return
        host, port = _parse_addr(primary)
        try:
            with WireClient(host, port, timeout=5.0, name="standby-seed") as ctl:
                response = ctl.call("state_transfer")
        except (ConnectionLost, RemoteCallError, OSError) as exc:
            print(f"standby cold boot (primary unreachable: {exc})",
                  file=sys.stderr, flush=True)
            return
        package = codec.decode_state_transfer(response["package"])
        self.service = LiveReplicatedCertifierService.from_state_transfer(
            package, config=config, log_devices=list(self.devices))
        self.seed_package = package

    def _promote(self) -> dict:
        """Take over as the certification coordinator (on the service thread).

        Reads every shard's WAL back over the wire, rebuilds the certifier
        through the functional recovery orchestration (completing rounds
        that died mid-flush), durably appends those completion fragments,
        rebuilds the exactly-once transaction table from the entries'
        ``tx_id`` tokens, and only then starts answering data-plane ops.
        New WAL batches start above each shard's applied ``last_seq`` so the
        seq-dedupe protecting the dead primary's resends cannot swallow
        them.
        """
        import binascii

        from repro.errors import RecoveryError
        from repro.live.replicated import (
            LiveReplicatedCertifierService,
            decode_entry_payload,
            encode_entry_payload,
            rebuild_from_shard_wals,
        )
        from repro.live.wal import RemoteWalDevice
        from repro.live.wire import WireClient

        started = time.perf_counter()
        per_shard_entries: list[list] = []
        last_seqs: list[int] = []
        for shard_id, (host, port) in enumerate(self.shard_addrs):
            with WireClient(host, port, timeout=5.0,
                            name=f"promote-{shard_id}") as ctl:
                response = ctl.call_retrying("wal_read", deadline_s=30.0)
            per_shard_entries.append([
                decode_entry_payload(binascii.unhexlify(payload))
                for batch in response["batches"]
                for payload in batch["payloads"]
            ])
            last_seqs.append(int(response["last_seq"]))
        certifier, report, completions = rebuild_from_shard_wals(
            per_shard_entries, config=self.cert_config)
        package = self.seed_package
        if package is not None:
            # The WAL rebuild must dominate the state-transfer seed: every
            # round the package knew about is in the shard WALs (they were
            # fsynced before the primary acknowledged anything).  Falling
            # short means a shard answered with a truncated file — refuse
            # to serve a diverged history.
            expected = package.horizon + len(package.rounds)
            if report.system_version < expected:
                raise RecoveryError(
                    f"shard WAL rebuild reaches version {report.system_version}, "
                    f"state-transfer seed proves {expected} existed")
        for device in self.devices:
            device.close()
        self.devices = [
            RemoteWalDevice(host, port, shard_id=i, start_seq=last_seqs[i])
            for i, (host, port) in enumerate(self.shard_addrs)
        ]
        for shard_id, entry in completions:
            # Recovery finished these rounds from surviving fragments; make
            # the completion durable on the shards that missed it before
            # acknowledging any new work.
            self.devices[shard_id].append(encode_entry_payload(entry))
            self.devices[shard_id].sync()
        self.service = LiveReplicatedCertifierService.from_recovered_core(
            certifier.core, config=self.cert_config,
            log_devices=list(self.devices))
        acks = certifier.committed_acks()
        self.service._tx_for_version = {v: tx for tx, v in acks.items()}
        for tx_id, version in acks.items():
            # The original decision-time system version died with the
            # primary; the commit version is a safe (tighter) window cap —
            # everything the replica needs below it still rides along.
            self.tx_table[tx_id] = {
                "committed": True, "commit_version": version,
                "forced_abort": False, "conflicting_version": None,
                "decided_at": version,
            }
        self.tx_admits = len(self.tx_table)
        if package is not None:
            for replica, version in package.replica_versions:
                self.service.register_replica(replica, version)
        self.promoted = True
        self.promotions += 1
        self.last_promotion = {
            "rounds_recovered": report.rounds_recovered,
            "rounds_completed": report.rounds_completed,
            "completions_appended": len(completions),
            "system_version": report.system_version,
            "pruned_version": report.pruned_version,
            "tx_table_rebuilt": len(acks),
            "seeded": package is not None,
            "promotion_ms": round((time.perf_counter() - started) * 1000.0, 3),
        }
        return self.last_promotion

    #: Ops a standby answers before promotion — control plane only; every
    #: data-plane op raises ``NotPromoted`` (clients back off and retry).
    _STANDBY_OPS = frozenset({"ping", "stats", "standby_status", "promote",
                              "cluster_info"})

    # -- async plumbing -------------------------------------------------------

    def setup_async(self, loop: asyncio.AbstractEventLoop) -> None:
        if self.pipeline:
            self._batcher = _CertifyBatcher(self, loop)

    async def dispatch(self, op: str, payload: dict,
                       loop: asyncio.AbstractEventLoop):
        if not self.pipeline:
            return self.handle(op, payload)
        if op == "certify" and self._batcher is not None:
            if not self.promoted:
                raise RemoteCallError(op, "standby not promoted",
                                      error_type="NotPromoted")
            return await self._batcher.submit(payload)
        return await loop.run_in_executor(self.service_pool,
                                          self.handle, op, payload)

    # -- request dispatch -----------------------------------------------------

    def handle(self, op: str, payload: dict):
        if not self.promoted and op not in self._STANDBY_OPS:
            raise RemoteCallError(op, "standby not promoted",
                                  error_type="NotPromoted")
        service = self.service
        if op == "certify":
            return self._certify(payload)
        if op == "state_transfer":
            if not self.replicated:
                raise RemoteCallError(op, "scheduler is not in replicated mode")
            return {"package": codec.encode_state_transfer(
                service.export_state_transfer())}
        if op == "standby_status":
            return {"replicated": self.replicated, "standby": self.standby,
                    "promoted": self.promoted, "promotions": self.promotions,
                    "seeded": self.seed_package is not None,
                    "last_promotion": self.last_promotion}
        if op == "promote":
            if self.promoted:
                return {"promoted": True, "already": True,
                        **(self.last_promotion or {})}
            return {"promoted": True, "already": False, **self._promote()}
        if op == "commit_status":
            self.status_queries += 1
            recorded = self.tx_table.get(payload["tx_id"])
            if recorded is None:
                return {"known": False}
            return {"known": True, **recorded}
        if op == "hello_replica":
            name = payload["replica"]
            from_version = int(payload.get("from_version", 0))
            previous = self.subscriptions.pop(name, None)
            if previous is not None:
                # A restarted replica re-subscribes under its old name; the
                # dead incarnation's subscription must not pin GC or queue
                # batches nobody will drain.
                service.disconnect_replica(name)
            self.subscriptions[name] = service.subscribe_replica(name, from_version)
            if "host" in payload:
                self.replica_addrs[name] = (payload["host"], int(payload["port"]))
            return {"subscribed_from": from_version}
        if op == "poll_writesets":
            subscription = self.subscriptions.get(payload["replica"])
            if subscription is None:
                raise RemoteCallError(op, f"unknown replica {payload['replica']!r}")
            subscription.advance_to(int(payload.get("advance_to", 0)))
            return {"writesets": [codec.encode_remote_info(i)
                                  for i in subscription.poll_flat()]}
        if op == "flush_propagation":
            service.flush_propagation()
            return {}
        if op == "register_replica":
            service.register_replica(payload["replica"], int(payload.get("version", 0)))
            return {}
        if op == "extend_remote_horizons":
            infos = [codec.decode_remote_info(i) for i in payload["infos"]]
            extended = service.extend_remote_horizons(infos, int(payload["back_to"]))
            return {"infos": [codec.encode_remote_info(i) for i in extended]}
        if op == "replication_horizon":
            return {"horizon": service.replication_horizon()}
        if op == "collect_garbage":
            return {"pruned": service.collect_garbage()}
        if op == "system_version":
            return {"version": service.system_version}
        if op == "cluster_info":
            return {
                "replicas": {n: list(a) for n, a in self.replica_addrs.items()},
                "shards": self.service.config.shards,
            }
        if op == "stats":
            return {
                "service": service.stats(),
                "tx_admits": self.tx_admits,
                "tx_table_size": len(self.tx_table),
                "duplicate_tx_hits": self.duplicate_tx_hits,
                "status_queries": self.status_queries,
                "wal_resent_batches": sum(d.resent_batches for d in self.devices),
                "pipeline": self.pipeline,
                "replicated": self.replicated,
                "standby": self.standby,
                "promoted": self.promoted,
                "promotions": self.promotions,
                "certify_rounds": self.certify_rounds,
                "fsyncs": service.fsync_count,
                # Transactions that did not pay their own fsync: committed
                # log records minus synchronous writes (>0 only when rounds
                # coalesce; the paper's writesets-per-fsync win, measured).
                "fsync_coalesced_transactions": max(
                    0, self._records_flushed() - service.fsync_count),
                "certify_batching": {
                    "busy_s": round(
                        getattr(self._batcher, "busy_s", 0.0), 6)
                    if self._batcher is not None else 0.0,
                    "exec_s": round(self.certify_exec_s, 6),
                    "rounds": self.batch_stats.flushes,
                    "requests": self.batch_stats.records_flushed,
                    "average_round_size": self.batch_stats.average_batch_size,
                    "largest_round": self.batch_stats.largest_batch,
                    "round_size_histogram": {
                        str(k): v for k, v in
                        sorted(self.batch_stats.batch_size_histogram.items())},
                },
                "wal_clients": [d.wire_stats() for d in self.devices],
                "server": self.server_stats.as_dict(),
            }
        if op == "ping":
            return {"role": "scheduler", "version": service.system_version}
        raise RemoteCallError(op, f"unknown scheduler op {op!r}")

    def _records_flushed(self) -> int:
        return self.service.stats_snapshot().flush.records_flushed

    def _certify(self, payload: dict) -> dict:
        tx_id = payload.get("tx_id")
        if tx_id is not None and tx_id in self.tx_table:
            self.duplicate_tx_hits += 1
            return self._duplicate_response(payload)
        request = codec.decode_request(payload["request"])
        if self.replicated:
            # The tx_id rides into the durable WAL entry so a promoted
            # standby rebuilds the exactly-once table, not just decisions.
            result = self.service.certify_tx(request, tx_id)
        else:
            result = self.service.certify(request)
        self._record_tx(tx_id, result)
        return {"result": codec.encode_result(result), "duplicate": False}

    def _record_tx(self, tx_id: str | None, result) -> None:
        if tx_id is None:
            return
        if result.committed:
            self.tx_admits += 1
        self.tx_table[tx_id] = {
            "committed": result.committed,
            "commit_version": result.tx_commit_version,
            "forced_abort": result.forced_abort,
            "conflicting_version": result.conflicting_version,
            # System version at decision time: bounds the writeset window a
            # duplicate answer may carry (see _duplicate_response).
            "decided_at": self.service.system_version,
        }

    def _duplicate_response(self, payload: dict) -> dict:
        # Already decided: answer from the record, never re-admit.  The
        # client protocol resolves committed retries via commit_status
        # before re-executing, so this branch is a safety net, not the
        # primary exactly-once mechanism.
        request = codec.decode_request(payload["request"])
        recorded = self.tx_table[payload["tx_id"]]
        # Reproduce the ORIGINAL response's window: cap at the decision-time
        # system version and drop the transaction's own writeset.  An
        # uncapped fetch could carry a transaction admitted after this one —
        # on the replica, the commit gate finalizes this (earlier-ticket)
        # retry first, and priority-applying that later writeset would abort
        # its still-open engine transaction: a client-visible abort for a
        # commit the certifier admitted.
        remote = self.service.fetch_remote_writesets(
            request.replica_version, replica=request.origin_replica or None,
            up_to=recorded.get("decided_at"),
            exclude_version=recorded["commit_version"])
        return {
            "result": {
                "decision": "commit" if recorded["committed"] else "abort",
                "tx_commit_version": recorded["commit_version"],
                "remote_writesets": [codec.encode_remote_info(i) for i in remote],
                "forced_abort": recorded.get("forced_abort", False),
                "conflicting_version": recorded.get("conflicting_version"),
            },
            "duplicate": True,
        }

    def certify_batch_payloads(self, payloads: list[dict]) -> list[dict]:
        """One certification round, on the service thread.

        Splits the round into fresh requests (certified through the
        service's ``certify_batch``, sharing its flushes) and duplicates
        (answered from the exactly-once table, exactly as sequentially) —
        in batch order, so a resend that landed in the same round as its
        original is still deduplicated.
        """
        exec_started = time.perf_counter()
        self.certify_rounds += 1
        if (self.wedge_before_certify_round
                and self.certify_rounds == self.wedge_before_certify_round):
            # Killed here, the round was never admitted: nothing durable,
            # nothing recorded — clients re-execute safely after failover.
            return [WEDGE] * len(payloads)
        self.batch_stats.record_flush(len(payloads))
        responses: list[dict | None] = [None] * len(payloads)
        fresh: list[tuple[int, dict]] = []
        first_index: dict[str, int] = {}
        for i, payload in enumerate(payloads):
            tx_id = payload.get("tx_id")
            if tx_id is not None and (tx_id in self.tx_table or tx_id in first_index):
                continue  # answered from the record after the fresh pass
            if tx_id is not None:
                first_index[tx_id] = i
            fresh.append((i, payload))
        requests = []
        tx_ids = []
        for i, payload in list(fresh):
            try:
                requests.append(codec.decode_request(payload["request"]))
            except Exception as exc:  # noqa: BLE001 - malformed request
                responses[i] = _error_envelope(exc)
                fresh.remove((i, payload))
                continue
            tx_ids.append(payload.get("tx_id"))
        if not requests:
            outcomes = []
        elif self.replicated:
            outcomes = self.service.certify_batch_tx(requests, tx_ids)
        else:
            outcomes = self.service.certify_batch(requests)
        for (i, payload), outcome in zip(fresh, outcomes):
            if isinstance(outcome, Exception):
                responses[i] = _error_envelope(outcome, unexpected_trace=False)
                continue
            self._record_tx(payload.get("tx_id"), outcome)
            responses[i] = {"result": codec.encode_result(outcome),
                            "duplicate": False}
        for i, payload in enumerate(payloads):
            if responses[i] is not None:
                continue
            tx_id = payload["tx_id"]
            if tx_id in self.tx_table:
                self.duplicate_tx_hits += 1
                responses[i] = self._duplicate_response(payload)
            else:
                # The original in this very round failed before recording an
                # outcome; answer the duplicate identically.
                responses[i] = dict(responses[first_index[tx_id]])
        self.certify_exec_s += time.perf_counter() - exec_started
        if (self.wedge_after_certify_round
                and self.certify_rounds == self.wedge_after_certify_round):
            # Killed here, the round is fully durable on the shard WALs and
            # recorded in this (dying) process's memory, but no client ever
            # sees the ack: the promoted standby must answer the retries
            # from its WAL-rebuilt exactly-once table.
            return [WEDGE] * len(payloads)
        return responses  # type: ignore[return-value]

    def describe(self) -> dict:
        return {"shards": self.service.config.shards,
                "standby": self.standby, "replicated": self.replicated}


# ---------------------------------------------------------------------------
# replica role
# ---------------------------------------------------------------------------


class ReplicaRole:
    """One database replica: engine + transparent proxy + session server."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.core.config import SystemKind
        from repro.engine.database import Database
        from repro.engine.log_device import FileLogDevice
        from repro.engine.table import TableSchema
        from repro.live.client import CommitGate, LiveCertifierClient
        from repro.middleware.client_api import ClientSession
        from repro.middleware.replica import Replica

        spec = _load_spec(args)
        if args.scheduler is None:
            raise SystemExit("replica role requires --scheduler host:port")
        host, port = _parse_addr(args.scheduler)
        live = spec.get("live", {})
        self.name = args.name
        self.pipeline = bool(live.get("pipeline", True))
        self.workers = int(live.get("replica_workers", 8)) if self.pipeline else 1
        self.wedge_before_commit_op = args.wedge_before_commit_op
        self.wedge_after_commit_op = args.wedge_after_commit_op
        self.commit_ops = 0
        # Real file-backed engine WAL: Tashkent-MW replicas run with
        # synchronous commit off (the proxy turns it off), but the append
        # path and group-apply fsync accounting are the real thing.
        device = FileLogDevice(f"{self.name}.engine.wal")
        database = Database(name=self.name, synchronous_commit=True, log_device=device)
        for schema in spec.get("schemas", []):
            database.create_table_from_schema(TableSchema(
                name=schema["name"],
                columns=tuple(schema["columns"]),
                primary_key=schema.get("primary_key", "id"),
            ))
        fallbacks: tuple[tuple[str, int], ...] = ()
        if args.scheduler_standby:
            fallbacks = (_parse_addr(args.scheduler_standby),)
        self.cert_client = LiveCertifierClient(host, port, replica_name=self.name,
                                               pipelined=self.pipeline,
                                               fallbacks=fallbacks)
        #: Replica-wide state lock: every op holds it; a commit releases it
        #: only while its certification round trip is in flight, so commits
        #: overlap on the wire while all local state stays single-threaded.
        self.state_lock = threading.Lock()
        if self.pipeline:
            self.cert_client.enable_concurrent_commits(self.state_lock, CommitGate())
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix=f"{self.name}-worker")
        system = SystemKind(spec.get("system", "tashkent-mw"))
        self.replica = Replica(
            self.name,
            database,
            self.cert_client,  # quacks like CertifierService for the proxy
            system=system,
            local_certification=spec.get("local_certification", True),
            eager_pre_certification=spec.get("eager_pre_certification", True),
        )
        self._session_cls = ClientSession
        #: session id -> ClientSession (the unmodified client API object).
        self.sessions: dict[int, object] = {}
        self._next_session = 1
        self.server_stats = ServerStats()

    # -- async plumbing -------------------------------------------------------

    #: Ops that either block on another node (commit certifies over the
    #: wire, refresh pulls writesets) or do heavy table-sized work.  Only
    #: these go to the worker pool; everything else is local micro-work
    #: that is cheaper to run inline than to pay two thread hand-offs for.
    _POOLED_OPS = frozenset({"commit", "refresh", "vacuum", "scan",
                             "dump_table"})

    async def dispatch(self, op: str, payload: dict,
                       loop: asyncio.AbstractEventLoop):
        if not self.pipeline:
            return self.handle(op, payload)
        pooled = op in self._POOLED_OPS or (
            op == "session_batch"
            and any(entry.get("op") in self._POOLED_OPS
                    for entry in payload.get("ops", ())))
        if pooled:
            return await loop.run_in_executor(self._pool, self._locked_handle,
                                              op, payload)
        # Inline on the event loop.  Safe: the state lock is only ever held
        # for local CPU work (a commit releases it across its wire wait), so
        # this acquire cannot stall the loop behind a network round trip.
        return self._locked_handle(op, payload)

    def _locked_handle(self, op: str, payload: dict):
        with self.state_lock:
            return self.handle(op, payload)

    # -- request dispatch -----------------------------------------------------

    def handle(self, op: str, payload: dict):
        if op == "open_session":
            session_id = self._next_session
            self._next_session += 1
            self.sessions[session_id] = self._session_cls(
                self.replica.proxy, client_name=payload.get("client_name", "client"))
            return {"session_id": session_id, "replica": self.name}
        if op == "close_session":
            self.sessions.pop(payload["session_id"], None)
            return {}
        if op in ("begin", "read", "scan", "insert", "update", "delete",
                  "commit", "abort"):
            return self._session_op(op, payload)
        if op == "session_batch":
            return self._session_batch(payload)
        if op == "refresh":
            return {"applied": self.replica.refresh()}
        if op == "vacuum":
            return {"reclaimed": self.replica.vacuum(max_rows=payload.get("max_rows"))}
        if op == "dump_table":
            database = self.replica.database
            table = database.table(payload["table"])
            state = table.snapshot_state(database.current_version)
            return {"state": codec.encode_table_state(state),
                    "version": self.replica.replica_version}
        if op == "tables":
            return {"tables": sorted(self.replica.database.tables)}
        if op == "replica_version":
            return {"version": self.replica.replica_version}
        if op == "stats":
            return {"stats": self.replica.stats_snapshot(),
                    "commit_ops": self.commit_ops,
                    "pipeline": self.pipeline,
                    "workers": self.workers,
                    "certifier_wire": self.cert_client.wire_stats(),
                    "commit_wire_wait_s": self.cert_client.wire_wait_s,
                    "commit_gate_wait_s": self.cert_client.gate_wait_s,
                    "server": self.server_stats.as_dict()}
        if op == "ping":
            return {"role": "replica", "name": self.name,
                    "version": self.replica.replica_version}
        raise RemoteCallError(op, f"unknown replica op {op!r}")

    def _session_batch(self, payload: dict):
        """Execute a fused list of session statements as one frame.

        The driver's :class:`LiveSession` defers resultless statements and
        ships them ahead of the next synchronous one, cutting the per-
        transaction frame count.  Statements run in order; the first failure
        stops the batch and its error envelope is returned in place — the
        same outcome the client would have observed sending the statements
        as individual frames and halting at the error.
        """
        results: list[dict] = []
        for entry in payload["ops"]:
            sub = dict(entry)
            sub_op = sub.pop("op")
            sub["session_id"] = payload["session_id"]
            try:
                result = self._session_op(sub_op, sub)
            except Exception as exc:  # noqa: BLE001 - per-statement boundary
                results.append(_error_envelope(exc))
                break
            if result is WEDGE:
                return WEDGE
            results.append({"ok": True, **(result or {})})
        return {"results": results}

    def _session_op(self, op: str, payload: dict):
        session = self.sessions.get(payload["session_id"])
        if session is None:
            raise RemoteCallError(op, f"unknown session {payload['session_id']}")
        if op == "begin":
            session.begin()
            return {}
        if op == "read":
            row = session.read(payload["table"], payload["key"])
            return {"row": codec.encode_row(row)}
        if op == "scan":
            rows = session.scan(payload["table"])
            return {"rows": [[key, dict(row)] for key, row in rows]}
        if op in ("insert", "update", "delete"):
            try:
                if op == "insert":
                    session.insert(payload["table"], payload["key"],
                                   **payload.get("values", {}))
                elif op == "update":
                    session.update(payload["table"], payload["key"],
                                   **payload.get("values", {}))
                else:
                    session.delete(payload["table"], payload["key"])
            except LockBlockedError as exc:
                # No-wait write-write policy.  The functional/sim stacks park
                # a blocked writer in the lock manager's wait queue, but a
                # live worker thread cannot sit inside the replica state lock
                # waiting for the holder's commit — abort the requester
                # instead (first-updater wins; the loser retries with a fresh
                # transaction, which is how the driver counts it).
                session.abort()
                raise TransactionAborted(str(exc), reason="ww-block") from exc
            return {}
        if op == "abort":
            session.abort()
            return {}
        # commit: the exactly-once tx id rides down to the scheduler with the
        # certification request this commit triggers.
        self.commit_ops += 1
        if (self.wedge_before_commit_op
                and self.commit_ops == self.wedge_before_commit_op):
            # Killed here, the transaction was never certified: the client's
            # status query finds nothing and re-executes — safely, exactly
            # once, because nothing was admitted.
            return WEDGE
        self.cert_client.next_tx_id = payload.get("tx_id")
        try:
            outcome = session.commit()
        finally:
            self.cert_client.next_tx_id = None
            # Release this commit's finalization-order ticket (no-op when the
            # commit was read-only or never reached certification).
            self.cert_client.finish_commit_ticket()
        if (self.wedge_after_commit_op
                and self.commit_ops == self.wedge_after_commit_op):
            # Killed here, the transaction IS committed (admitted, durable,
            # propagated) but the ack never reaches the client: the status
            # query answers "committed" and the client must not re-execute.
            return WEDGE
        return {"outcome": codec.encode_outcome(outcome)}

    def describe(self) -> dict:
        return {"replica": self.name}


# ---------------------------------------------------------------------------
# server plumbing
# ---------------------------------------------------------------------------


def _load_spec(args: argparse.Namespace) -> dict:
    if args.spec is None:
        return {}
    with open(args.spec, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _parse_addr(addr: str) -> tuple[str, int]:
    host, _, port = addr.rpartition(":")
    return host or "127.0.0.1", int(port)


async def _serve(role, args: argparse.Namespace) -> None:
    loop = asyncio.get_running_loop()
    stats: ServerStats = getattr(role, "server_stats", None) or ServerStats()
    role.server_stats = stats
    setup = getattr(role, "setup_async", None)
    if setup is not None:
        setup(loop)
    role_dispatch = getattr(role, "dispatch", None)

    async def handle_connection(reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        stats.connections += 1
        tasks: set[asyncio.Task] = set()

        def account_in(nbytes: int) -> None:
            stats.frames_in += 1
            stats.bytes_in += nbytes

        write_lock = asyncio.Lock()

        async def send(response: dict) -> None:
            data = encode_frame(response)
            async with write_lock:
                writer.write(data)
                await writer.drain()
            stats.frames_out += 1
            stats.bytes_out += len(data)

        async def process(op: str, payload: dict, rid: int | None) -> None:
            stats.begin_request()
            try:
                if role_dispatch is not None:
                    response = await role_dispatch(op, payload, loop)
                else:
                    response = role.handle(op, payload)
            except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
                response = _error_envelope(exc)
            finally:
                stats.end_request()
            if response is WEDGE:
                # Freeze the WHOLE process, event loop included — a
                # task-level wait would let retries on fresh connections
                # be served, and the crash point would quietly heal
                # itself before the kill -9 lands.
                print(f"WEDGED op={op}", file=sys.stderr, flush=True)
                while True:
                    time.sleep(3600)
            if isinstance(response, dict) and "ok" not in response:
                response = {"ok": True, **response}
            if rid is not None:
                response = {**response, "rid": rid}
            try:
                await send(response)
            except (ConnectionError, OSError):
                pass  # client went away; its retry path owns recovery

        try:
            while True:
                message = await read_frame(reader, on_bytes=account_in)
                if message is None:
                    break
                op = str(message.pop("op", ""))
                rid = message.pop("rid", None)
                if rid is None:
                    # rid-less frames keep the strict one-in-flight
                    # discipline: answered before the next frame is read.
                    await process(op, message, None)
                else:
                    # Multiplexed: each tagged request is its own task; the
                    # response carries the rid and may overtake others.
                    task = loop.create_task(process(op, message, int(rid)))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError, WireError):
            pass
        finally:
            for task in list(tasks):
                task.cancel()
            writer.close()

    server = await asyncio.start_server(handle_connection, args.host, args.port)
    port = server.sockets[0].getsockname()[1]
    handshake = {
        "role": args.role, "name": args.name, "port": port,
        "host": args.host, "pid": __import__("os").getpid(),
        **role.describe(),
    }
    print(READY_PREFIX + json.dumps(handshake), flush=True)
    async with server:
        await server.serve_forever()


ROLES = {
    "certifier-shard": CertifierShardRole,
    "scheduler": SchedulerRole,
    "replica": ReplicaRole,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.node",
        description="One live-cluster node (certifier shard, scheduler or replica).",
    )
    parser.add_argument("--role", required=True, choices=sorted(ROLES))
    parser.add_argument("--name", default="node")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--advertise-host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 (default) lets the kernel pick; the handshake reports it")
    parser.add_argument("--spec", default=None,
                        help="cluster spec JSON (schemas, system kind, certifier config)")
    parser.add_argument("--wal", default=None, help="WAL file path (certifier-shard)")
    parser.add_argument("--shard-id", type=int, default=0)
    parser.add_argument("--shard", action="append", default=None, metavar="HOST:PORT",
                        help="certifier-shard address (scheduler; repeat per shard)")
    parser.add_argument("--scheduler", default=None, metavar="HOST:PORT")
    parser.add_argument("--standby", action="store_true",
                        help="boot this scheduler as an unpromoted standby "
                             "(requires live.scheduler_standby in the spec)")
    parser.add_argument("--primary", default=None, metavar="HOST:PORT",
                        help="primary scheduler a standby seeds its state "
                             "transfer from (best effort)")
    parser.add_argument("--scheduler-standby", default=None, metavar="HOST:PORT",
                        help="standby scheduler address a replica fails over "
                             "to when the primary stops answering")
    # Deterministic fault points (see module docstring): wedge = stop
    # responding at the Nth op so the harness can land a kill -9 exactly there.
    parser.add_argument("--fsync-floor-ms", type=float, default=0.0,
                        help="wall-clock floor per WAL batch fsync (disk emulation)")
    parser.add_argument("--wedge-before-sync", type=int, default=0)
    parser.add_argument("--wedge-after-sync", type=int, default=0)
    parser.add_argument("--wedge-before-commit-op", type=int, default=0)
    parser.add_argument("--wedge-after-commit-op", type=int, default=0)
    parser.add_argument("--wedge-before-certify-round", type=int, default=0,
                        help="scheduler: wedge before admitting the Nth "
                             "certification round (nothing durable)")
    parser.add_argument("--wedge-after-certify-round", type=int, default=0,
                        help="scheduler: wedge after the Nth round's durable "
                             "flush, before any ack reaches a replica")
    return parser


def main(argv: list[str] | None = None) -> None:
    # Node processes mix an asyncio event loop with service/worker threads;
    # the default 5 ms GIL switch interval lets the loop thread starve a
    # worker that just finished blocking IO (observed: a 0.25 ms WAL round
    # trip ballooning to ~4 ms under load).  1 ms of scheduling granularity
    # keeps cross-thread hand-offs prompt at negligible switching cost.
    sys.setswitchinterval(0.001)
    args = build_parser().parse_args(argv)
    role = ROLES[args.role](args)
    try:
        asyncio.run(_serve(role, args))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass


if __name__ == "__main__":
    main()
