"""Live-cluster node entrypoints: ``python -m repro.live.node --role ...``.

One process per node, three roles, all serving the length-prefixed JSON
protocol of :mod:`repro.live.wire` over asyncio TCP:

``certifier-shard``
    The durable tail of one certification shard: an append-only,
    batch-sequenced WAL file with a real ``os.fsync`` per batch
    (:class:`~repro.live.wal.BatchWalFile`).  The scheduler's certifier
    service gates every commit decision on this process's acknowledgement,
    so killing it mid-flush is a genuine durability-path fault.

``scheduler``
    The certification coordinator and cluster front door.  Hosts the
    *unmodified* functional certifier service (:func:`make_certifier_service`
    — the seed :class:`CertifierService` at one shard, the
    :class:`ShardedCertifierService` above that), with each shard's log
    device replaced by a :class:`~repro.live.wal.RemoteWalDevice` pointed at
    a certifier-shard process.  Adds the **exactly-once transaction table**:
    every client commit carries a ``tx_id``; the admit outcome is recorded
    under it, a duplicate ``certify`` is answered from the record instead of
    re-admitted, and ``commit_status`` lets a client that lost its replica
    mid-commit resolve the fate of its transaction without re-executing it.

``replica``
    One database replica: an engine :class:`Database` (file-backed engine
    WAL) behind the *unmodified* :class:`TransparentProxy`, whose certifier
    is a :class:`~repro.live.client.LiveCertifierClient` speaking the wire
    protocol to the scheduler.  Serves client sessions (begin / read / scan /
    insert / update / delete / commit / abort) plus the maintenance surface
    (refresh, vacuum, dump_table) the cluster driver uses.

Readiness is announced by a machine-readable handshake line on stdout
(:data:`~repro.live.harness.READY_PREFIX` + JSON with the kernel-assigned
port) — nodes bind to port 0 unless a restart pins the previous port.

Deterministic fault injection: ``--wedge-before-sync`` / ``--wedge-after-sync``
(certifier-shard) and ``--wedge-before-commit-op`` / ``--wedge-after-commit-op``
(replica) make the node stop responding at an exact protocol point — after
which the harness delivers the actual ``kill -9``.  This maps the in-process
crash points of ``tests/faults.py`` onto real processes: wedge-before-sync is
``pre-flush`` (decision unreleased, nothing durable), wedge-after-sync is
``mid-flush`` (durable but unacknowledged), wedge-after-commit-op is
``post-flush`` (everything durable, only the client ack lost).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
import traceback

from repro.live import codec
from repro.live.harness import READY_PREFIX
from repro.live.wire import RemoteCallError, read_frame, write_frame

#: Returned by a role handler to make the connection hang forever (the
#: deterministic "wedge" the crash tests SIGKILL through).
WEDGE = object()


# ---------------------------------------------------------------------------
# certifier-shard role
# ---------------------------------------------------------------------------


class CertifierShardRole:
    """Durable WAL server for one certification shard."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.live.wal import BatchWalFile

        self.shard_id = args.shard_id
        self.wal = BatchWalFile(args.wal or f"{args.name}.wal")
        self.wedge_before_sync = args.wedge_before_sync
        self.wedge_after_sync = args.wedge_after_sync
        self.append_ops = 0

    def handle(self, op: str, payload: dict):
        if op == "wal_append":
            self.append_ops += 1
            if self.wedge_before_sync and self.append_ops == self.wedge_before_sync:
                # Nothing written: the batch is lost with this process; the
                # scheduler still holds it and resends after the restart.
                return WEDGE
            import binascii

            applied = self.wal.append_batch(
                int(payload["seq"]),
                [binascii.unhexlify(p) for p in payload["payloads"]],
            )
            if self.wedge_after_sync and self.append_ops == self.wedge_after_sync:
                # Durable but unacknowledged: the resend after restart must
                # be deduplicated by seq.
                return WEDGE
            return {"applied": applied, "last_seq": self.wal.last_seq}
        if op == "wal_stats":
            return self.wal.stats()
        if op == "ping":
            return {"role": "certifier-shard", "shard_id": self.shard_id}
        raise RemoteCallError(op, f"unknown certifier-shard op {op!r}")

    def describe(self) -> dict:
        return {"shard_id": self.shard_id, "wal": str(self.wal.path)}


# ---------------------------------------------------------------------------
# scheduler role
# ---------------------------------------------------------------------------


class SchedulerRole:
    """Certification coordinator + exactly-once table + routing directory."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.live.wal import RemoteWalDevice
        from repro.middleware.certifier import CertifierConfig
        from repro.middleware.sharded_certifier import make_certifier_service

        spec = _load_spec(args)
        cert = spec.get("certifier", {})
        shards = [_parse_addr(a) for a in (args.shard or [])]
        config = CertifierConfig(
            durability_enabled=cert.get("durability_enabled", True),
            forced_abort_rate=cert.get("forced_abort_rate", 0.0),
            rng_seed=cert.get("rng_seed", 1),
            shards=max(1, len(shards)) if cert.get("shards") is None else cert["shards"],
        )
        if cert.get("gc_headroom_versions") is not None:
            import dataclasses

            config = dataclasses.replace(
                config, gc_headroom_versions=cert["gc_headroom_versions"])
        if len(shards) != config.shards:
            raise SystemExit(
                f"scheduler needs one --shard address per certifier shard "
                f"({config.shards}), got {len(shards)}"
            )
        self.devices = [
            RemoteWalDevice(host, port, shard_id=i)
            for i, (host, port) in enumerate(shards)
        ]
        if config.shards == 1:
            self.service = make_certifier_service(config, log_device=self.devices[0])
        else:
            self.service = make_certifier_service(config, log_devices=list(self.devices))
        #: replica name -> server-side writeset subscription.
        self.subscriptions: dict[str, object] = {}
        #: replica name -> (host, port) routing directory.
        self.replica_addrs: dict[str, tuple[str, int]] = {}
        #: Exactly-once transaction table: tx_id -> recorded certify outcome.
        self.tx_table: dict[str, dict] = {}
        self.tx_admits = 0
        self.duplicate_tx_hits = 0
        self.status_queries = 0

    # -- request dispatch -----------------------------------------------------

    def handle(self, op: str, payload: dict):
        service = self.service
        if op == "certify":
            return self._certify(payload)
        if op == "commit_status":
            self.status_queries += 1
            recorded = self.tx_table.get(payload["tx_id"])
            if recorded is None:
                return {"known": False}
            return {"known": True, **recorded}
        if op == "hello_replica":
            name = payload["replica"]
            from_version = int(payload.get("from_version", 0))
            previous = self.subscriptions.pop(name, None)
            if previous is not None:
                # A restarted replica re-subscribes under its old name; the
                # dead incarnation's subscription must not pin GC or queue
                # batches nobody will drain.
                service.disconnect_replica(name)
            self.subscriptions[name] = service.subscribe_replica(name, from_version)
            if "host" in payload:
                self.replica_addrs[name] = (payload["host"], int(payload["port"]))
            return {"subscribed_from": from_version}
        if op == "poll_writesets":
            subscription = self.subscriptions.get(payload["replica"])
            if subscription is None:
                raise RemoteCallError(op, f"unknown replica {payload['replica']!r}")
            subscription.advance_to(int(payload.get("advance_to", 0)))
            return {"writesets": [codec.encode_remote_info(i)
                                  for i in subscription.poll_flat()]}
        if op == "flush_propagation":
            service.flush_propagation()
            return {}
        if op == "register_replica":
            service.register_replica(payload["replica"], int(payload.get("version", 0)))
            return {}
        if op == "extend_remote_horizons":
            infos = [codec.decode_remote_info(i) for i in payload["infos"]]
            extended = service.extend_remote_horizons(infos, int(payload["back_to"]))
            return {"infos": [codec.encode_remote_info(i) for i in extended]}
        if op == "replication_horizon":
            return {"horizon": service.replication_horizon()}
        if op == "collect_garbage":
            return {"pruned": service.collect_garbage()}
        if op == "system_version":
            return {"version": service.system_version}
        if op == "cluster_info":
            return {
                "replicas": {n: list(a) for n, a in self.replica_addrs.items()},
                "shards": self.service.config.shards,
            }
        if op == "stats":
            return {
                "service": service.stats(),
                "tx_admits": self.tx_admits,
                "tx_table_size": len(self.tx_table),
                "duplicate_tx_hits": self.duplicate_tx_hits,
                "status_queries": self.status_queries,
                "wal_resent_batches": sum(d.resent_batches for d in self.devices),
            }
        if op == "ping":
            return {"role": "scheduler", "version": service.system_version}
        raise RemoteCallError(op, f"unknown scheduler op {op!r}")

    def _certify(self, payload: dict) -> dict:
        tx_id = payload.get("tx_id")
        request = codec.decode_request(payload["request"])
        if tx_id is not None and tx_id in self.tx_table:
            # Already decided: answer from the record, never re-admit.  The
            # client protocol resolves committed retries via commit_status
            # before re-executing, so this branch is a safety net, not the
            # primary exactly-once mechanism.
            self.duplicate_tx_hits += 1
            recorded = self.tx_table[tx_id]
            remote = self.service.fetch_remote_writesets(
                request.replica_version, replica=request.origin_replica or None)
            return {
                "result": {
                    "decision": "commit" if recorded["committed"] else "abort",
                    "tx_commit_version": recorded["commit_version"],
                    "remote_writesets": [codec.encode_remote_info(i) for i in remote],
                    "forced_abort": recorded.get("forced_abort", False),
                    "conflicting_version": recorded.get("conflicting_version"),
                },
                "duplicate": True,
            }
        result = self.service.certify(request)
        if tx_id is not None:
            if result.committed:
                self.tx_admits += 1
            self.tx_table[tx_id] = {
                "committed": result.committed,
                "commit_version": result.tx_commit_version,
                "forced_abort": result.forced_abort,
                "conflicting_version": result.conflicting_version,
            }
        return {"result": codec.encode_result(result), "duplicate": False}

    def describe(self) -> dict:
        return {"shards": self.service.config.shards}


# ---------------------------------------------------------------------------
# replica role
# ---------------------------------------------------------------------------


class ReplicaRole:
    """One database replica: engine + transparent proxy + session server."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.core.config import SystemKind
        from repro.engine.database import Database
        from repro.engine.log_device import FileLogDevice
        from repro.engine.table import TableSchema
        from repro.live.client import LiveCertifierClient
        from repro.middleware.client_api import ClientSession
        from repro.middleware.replica import Replica

        spec = _load_spec(args)
        if args.scheduler is None:
            raise SystemExit("replica role requires --scheduler host:port")
        host, port = _parse_addr(args.scheduler)
        self.name = args.name
        self.wedge_before_commit_op = args.wedge_before_commit_op
        self.wedge_after_commit_op = args.wedge_after_commit_op
        self.commit_ops = 0
        # Real file-backed engine WAL: Tashkent-MW replicas run with
        # synchronous commit off (the proxy turns it off), but the append
        # path and group-apply fsync accounting are the real thing.
        device = FileLogDevice(f"{self.name}.engine.wal")
        database = Database(name=self.name, synchronous_commit=True, log_device=device)
        for schema in spec.get("schemas", []):
            database.create_table_from_schema(TableSchema(
                name=schema["name"],
                columns=tuple(schema["columns"]),
                primary_key=schema.get("primary_key", "id"),
            ))
        self.cert_client = LiveCertifierClient(host, port, replica_name=self.name)
        system = SystemKind(spec.get("system", "tashkent-mw"))
        self.replica = Replica(
            self.name,
            database,
            self.cert_client,  # quacks like CertifierService for the proxy
            system=system,
            local_certification=spec.get("local_certification", True),
            eager_pre_certification=spec.get("eager_pre_certification", True),
        )
        self._session_cls = ClientSession
        #: session id -> ClientSession (the unmodified client API object).
        self.sessions: dict[int, object] = {}
        self._next_session = 1

    # -- request dispatch -----------------------------------------------------

    def handle(self, op: str, payload: dict):
        if op == "open_session":
            session_id = self._next_session
            self._next_session += 1
            self.sessions[session_id] = self._session_cls(
                self.replica.proxy, client_name=payload.get("client_name", "client"))
            return {"session_id": session_id, "replica": self.name}
        if op == "close_session":
            self.sessions.pop(payload["session_id"], None)
            return {}
        if op in ("begin", "read", "scan", "insert", "update", "delete",
                  "commit", "abort"):
            return self._session_op(op, payload)
        if op == "refresh":
            return {"applied": self.replica.refresh()}
        if op == "vacuum":
            return {"reclaimed": self.replica.vacuum(max_rows=payload.get("max_rows"))}
        if op == "dump_table":
            database = self.replica.database
            table = database.table(payload["table"])
            state = table.snapshot_state(database.current_version)
            return {"state": codec.encode_table_state(state),
                    "version": self.replica.replica_version}
        if op == "tables":
            return {"tables": sorted(self.replica.database.tables)}
        if op == "replica_version":
            return {"version": self.replica.replica_version}
        if op == "stats":
            return {"stats": self.replica.stats_snapshot(),
                    "commit_ops": self.commit_ops}
        if op == "ping":
            return {"role": "replica", "name": self.name,
                    "version": self.replica.replica_version}
        raise RemoteCallError(op, f"unknown replica op {op!r}")

    def _session_op(self, op: str, payload: dict):
        session = self.sessions.get(payload["session_id"])
        if session is None:
            raise RemoteCallError(op, f"unknown session {payload['session_id']}")
        if op == "begin":
            session.begin()
            return {}
        if op == "read":
            row = session.read(payload["table"], payload["key"])
            return {"row": codec.encode_row(row)}
        if op == "scan":
            rows = session.scan(payload["table"])
            return {"rows": [[key, dict(row)] for key, row in rows]}
        if op == "insert":
            session.insert(payload["table"], payload["key"], **payload.get("values", {}))
            return {}
        if op == "update":
            session.update(payload["table"], payload["key"], **payload.get("values", {}))
            return {}
        if op == "delete":
            session.delete(payload["table"], payload["key"])
            return {}
        if op == "abort":
            session.abort()
            return {}
        # commit: the exactly-once tx id rides down to the scheduler with the
        # certification request this commit triggers.
        self.commit_ops += 1
        if (self.wedge_before_commit_op
                and self.commit_ops == self.wedge_before_commit_op):
            # Killed here, the transaction was never certified: the client's
            # status query finds nothing and re-executes — safely, exactly
            # once, because nothing was admitted.
            return WEDGE
        self.cert_client.next_tx_id = payload.get("tx_id")
        try:
            outcome = session.commit()
        finally:
            self.cert_client.next_tx_id = None
        if (self.wedge_after_commit_op
                and self.commit_ops == self.wedge_after_commit_op):
            # Killed here, the transaction IS committed (admitted, durable,
            # propagated) but the ack never reaches the client: the status
            # query answers "committed" and the client must not re-execute.
            return WEDGE
        return {"outcome": codec.encode_outcome(outcome)}

    def describe(self) -> dict:
        return {"replica": self.name}


# ---------------------------------------------------------------------------
# server plumbing
# ---------------------------------------------------------------------------


def _load_spec(args: argparse.Namespace) -> dict:
    if args.spec is None:
        return {}
    with open(args.spec, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _parse_addr(addr: str) -> tuple[str, int]:
    host, _, port = addr.rpartition(":")
    return host or "127.0.0.1", int(port)


async def _serve(role, args: argparse.Namespace) -> None:
    async def handle_connection(reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    break
                op = str(message.pop("op", ""))
                try:
                    response = role.handle(op, message)
                except RemoteCallError as exc:
                    response = {"ok": False, "error": exc.error,
                                "error_type": exc.error_type, "reason": exc.reason}
                except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
                    from repro.errors import TransactionAborted

                    if isinstance(exc, TransactionAborted):
                        response = {"ok": False, "error": str(exc),
                                    "error_type": "TransactionAborted",
                                    "reason": exc.reason}
                    else:
                        traceback.print_exc(file=sys.stderr)
                        response = {"ok": False, "error": str(exc),
                                    "error_type": type(exc).__name__}
                if response is WEDGE:
                    # Freeze the WHOLE process, event loop included — a
                    # task-level wait would let retries on fresh connections
                    # be served, and the crash point would quietly heal
                    # itself before the kill -9 lands.
                    print(f"WEDGED op={op}", file=sys.stderr, flush=True)
                    while True:
                        time.sleep(3600)
                if isinstance(response, dict) and "ok" not in response:
                    response = {"ok": True, **response}
                await write_frame(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle_connection, args.host, args.port)
    port = server.sockets[0].getsockname()[1]
    handshake = {
        "role": args.role, "name": args.name, "port": port,
        "host": args.host, "pid": __import__("os").getpid(),
        **role.describe(),
    }
    print(READY_PREFIX + json.dumps(handshake), flush=True)
    async with server:
        await server.serve_forever()


ROLES = {
    "certifier-shard": CertifierShardRole,
    "scheduler": SchedulerRole,
    "replica": ReplicaRole,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.node",
        description="One live-cluster node (certifier shard, scheduler or replica).",
    )
    parser.add_argument("--role", required=True, choices=sorted(ROLES))
    parser.add_argument("--name", default="node")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--advertise-host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 (default) lets the kernel pick; the handshake reports it")
    parser.add_argument("--spec", default=None,
                        help="cluster spec JSON (schemas, system kind, certifier config)")
    parser.add_argument("--wal", default=None, help="WAL file path (certifier-shard)")
    parser.add_argument("--shard-id", type=int, default=0)
    parser.add_argument("--shard", action="append", default=None, metavar="HOST:PORT",
                        help="certifier-shard address (scheduler; repeat per shard)")
    parser.add_argument("--scheduler", default=None, metavar="HOST:PORT")
    # Deterministic fault points (see module docstring): wedge = stop
    # responding at the Nth op so the harness can land a kill -9 exactly there.
    parser.add_argument("--wedge-before-sync", type=int, default=0)
    parser.add_argument("--wedge-after-sync", type=int, default=0)
    parser.add_argument("--wedge-before-commit-op", type=int, default=0)
    parser.add_argument("--wedge-after-commit-op", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    role = ROLES[args.role](args)
    try:
        asyncio.run(_serve(role, args))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass


if __name__ == "__main__":
    main()
