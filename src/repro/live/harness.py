"""Process harness: spawn, supervise and reap live-cluster node processes.

In the style of the per-node process-dict launchers of classic distributed
test rigs, the :class:`ProcessHarness` owns a run directory and a registry of
:class:`NodeHandle` children.  It exists to make two flake classes
structurally impossible:

* **port collisions** — nodes are never told which port to take.  Each node
  binds to port 0, lets the kernel pick, and announces the result in a
  machine-readable handshake line on stdout (:data:`READY_PREFIX`).  The
  harness tails the node's captured stdout until the handshake appears (or a
  deadline passes), so there is no pre-allocation race and no sleep-based
  readiness probe.  Only a *restart* pins a port — the one the dead
  incarnation owned, so peers' retry loops reconnect without re-discovery.
* **orphaned children** — the harness context manager reaps every child on
  exit (SIGTERM, then SIGKILL after a grace period) and
  :meth:`assert_no_orphans` lets test teardown prove the reap happened.

Logs: every node's stdout/stderr are captured to ``<run_dir>/<name>.out`` /
``.err`` — the artifacts CI uploads when a live test fails.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.errors import ReproError

#: The handshake line a node prints (and flushes) once its server is bound
#: and serving: ``REPRO-LIVE-READY {"role": ..., "name": ..., "port": ...}``.
READY_PREFIX = "REPRO-LIVE-READY "


class HarnessError(ReproError):
    """A supervised node failed to start, answer, or die."""


class NodeHandle:
    """One supervised child process and its captured logs."""

    def __init__(self, harness: "ProcessHarness", name: str, role: str,
                 args: list[str], env: dict[str, str]) -> None:
        self.harness = harness
        self.name = name
        self.role = role
        self.args = list(args)
        self.env = dict(env)
        self.stdout_path = harness.run_dir / f"{name}.out"
        self.stderr_path = harness.run_dir / f"{name}.err"
        self.process: subprocess.Popen | None = None
        self.port: int | None = None
        self.ready_info: dict | None = None
        self.spawn_count = 0

    # -- lifecycle ------------------------------------------------------------

    def spawn(self, extra_args: list[str] | None = None) -> None:
        """Start (or restart) the child; appends stdout/stderr to the logs."""
        if self.process is not None and self.process.poll() is None:
            raise HarnessError(f"node {self.name!r} is already running")
        argv = [sys.executable, "-m", "repro.live.node", *self.args]
        if extra_args:
            argv.extend(extra_args)
        self.spawn_count += 1
        with open(self.stdout_path, "ab") as out, open(self.stderr_path, "ab") as err:
            self.process = subprocess.Popen(
                argv, stdout=out, stderr=err, env={**os.environ, **self.env},
                cwd=str(self.harness.run_dir),
            )

    def wait_ready(self, timeout_s: float = 30.0) -> dict:
        """Block until the node's handshake line appears on its stdout.

        Returns the parsed handshake (and records ``self.port`` from it).
        The handshake of a *restart* is the last one in the log, so the scan
        counts handshakes and waits for the ``spawn_count``-th.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.process is not None and self.process.poll() is not None:
                raise HarnessError(
                    f"node {self.name!r} exited with {self.process.returncode} "
                    f"before becoming ready; see {self.stderr_path}"
                )
            handshakes = self._read_handshakes()
            if len(handshakes) >= self.spawn_count:
                info = handshakes[-1]
                self.ready_info = info
                self.port = int(info["port"])
                return info
            time.sleep(0.01)
        raise HarnessError(
            f"node {self.name!r} did not hand shake within {timeout_s}s; "
            f"see {self.stdout_path} / {self.stderr_path}"
        )

    def _read_handshakes(self) -> list[dict]:
        if not self.stdout_path.exists():
            return []
        handshakes = []
        with open(self.stdout_path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                if line.startswith(READY_PREFIX):
                    try:
                        handshakes.append(json.loads(line[len(READY_PREFIX):]))
                    except ValueError:
                        continue
        return handshakes

    def poll(self) -> int | None:
        """The child's exit code, or ``None`` while it is running."""
        return None if self.process is None else self.process.poll()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def pid(self) -> int | None:
        return None if self.process is None else self.process.pid

    def kill(self) -> None:
        """``kill -9``: no shutdown handler runs, nothing is flushed."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=30)

    def terminate(self, grace_s: float = 5.0) -> None:
        """SIGTERM, escalating to SIGKILL after ``grace_s``."""
        if self.process is None or self.process.poll() is not None:
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=30)

    def restart(self, *, timeout_s: float = 30.0,
                drop_args: tuple[str, ...] = ()) -> dict:
        """Respawn a dead node on the port its previous incarnation owned.

        ``drop_args`` removes flag (and value) pairs from the original spawn
        args — how the crash tests shed a ``--wedge-*`` fault flag on the
        restarted incarnation.
        """
        if self.alive:
            raise HarnessError(f"node {self.name!r} is still running")
        if self.port is None:
            raise HarnessError(f"node {self.name!r} was never ready; cannot pin its port")
        args = list(self.args)
        for flag in drop_args:
            while flag in args:
                index = args.index(flag)
                del args[index:index + 2]
        self.args = args
        self.spawn(extra_args=["--port", str(self.port)])
        return self.wait_ready(timeout_s=timeout_s)

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"exit={self.poll()}"
        return f"NodeHandle(name={self.name!r}, role={self.role!r}, port={self.port}, {state})"


class ProcessHarness:
    """Supervisor for a set of live-cluster node processes."""

    def __init__(self, run_dir: str | Path | None = None, *, keep_dir: bool = False) -> None:
        if run_dir is None:
            run_dir = tempfile.mkdtemp(prefix="repro-live-")
            # A caller-provided directory is theirs to keep; an auto-created
            # one is removed on a clean exit unless asked otherwise.
            self._owns_dir = not keep_dir
        else:
            self._owns_dir = False
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.nodes: dict[str, NodeHandle] = {}

    # -- spawning -------------------------------------------------------------

    def spawn(self, role: str, name: str, args: list[str] | None = None,
              *, env: dict[str, str] | None = None, wait_ready: bool = True,
              timeout_s: float = 30.0) -> NodeHandle:
        """Launch ``python -m repro.live.node --role <role> ...`` as ``name``."""
        if name in self.nodes and self.nodes[name].alive:
            raise HarnessError(f"a node named {name!r} is already running")
        node_env = {"PYTHONPATH": self._pythonpath(), "PYTHONUNBUFFERED": "1"}
        if env:
            node_env.update(env)
        handle = NodeHandle(
            self, name, role,
            ["--role", role, "--name", name, *(args or [])],
            node_env,
        )
        self.nodes[name] = handle
        handle.spawn()
        if wait_ready:
            handle.wait_ready(timeout_s=timeout_s)
        return handle

    @staticmethod
    def _pythonpath() -> str:
        src = str(Path(__file__).resolve().parents[2])
        existing = os.environ.get("PYTHONPATH", "")
        return f"{src}{os.pathsep}{existing}" if existing else src

    # -- supervision ----------------------------------------------------------

    def node(self, name: str) -> NodeHandle:
        return self.nodes[name]

    def poll_all(self) -> dict[str, int | None]:
        return {name: node.poll() for name, node in self.nodes.items()}

    def live_nodes(self) -> list[NodeHandle]:
        return [node for node in self.nodes.values() if node.alive]

    def reap_all(self, grace_s: float = 5.0) -> None:
        """Terminate every child (SIGTERM → SIGKILL) and wait for all."""
        for node in self.nodes.values():
            if node.alive:
                node.terminate(grace_s=grace_s)

    def assert_no_orphans(self) -> None:
        """Raise unless every supervised child has actually exited."""
        orphans = [node.name for node in self.nodes.values() if node.alive]
        if orphans:
            raise HarnessError(f"orphaned node processes after reap: {orphans}")

    def collect_logs(self) -> dict[str, tuple[Path, Path]]:
        return {name: (node.stdout_path, node.stderr_path)
                for name, node in self.nodes.items()}

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "ProcessHarness":
        return self

    def __exit__(self, *exc: object) -> None:
        self.reap_all()
        self.assert_no_orphans()
        if self._owns_dir and not any(exc):
            import shutil

            shutil.rmtree(self.run_dir, ignore_errors=True)

    def __repr__(self) -> str:
        alive = sum(1 for node in self.nodes.values() if node.alive)
        return f"ProcessHarness(run_dir={str(self.run_dir)!r}, nodes={len(self.nodes)}, alive={alive})"
