"""``repro-cluster``: boot a live cluster and drive a workload against it.

Usage (from the repo root)::

    PYTHONPATH=src python -m repro.live.cli run --workload allupdates \\
        --replicas 2 --shards 2 --transactions 40

``run`` boots shard/scheduler/replica processes on localhost via the
:class:`~repro.live.harness.ProcessHarness`, loads the workload's initial
data, runs round-robin client transactions against every replica, refreshes,
and prints a JSON summary (commits, aborts, system version, per-replica
versions, WAL stats).  Everything is reaped on exit — including on ^C.

``spawn`` boots a cluster and holds it for interactive poking (``nc`` or a
:class:`~repro.live.wire.WireClient`) until interrupted.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.core.config import ReplicationConfig, SystemKind
from repro.live.cluster import LiveCluster
from repro.sim.rng import RandomStreams
from repro.workloads import workload_by_name


def _build_cluster(args: argparse.Namespace) -> tuple[LiveCluster, object]:
    workload = workload_by_name(args.workload, num_replicas=args.replicas,
                                scale=args.scale)
    config = ReplicationConfig(
        system=SystemKind(args.system),
        num_replicas=args.replicas,
        certifier_shards=args.shards,
        rng_seed=args.seed,
        live_scheduler_standby=args.standby,
    )
    cluster = LiveCluster(config, workload.schemas(),
                          run_dir=args.run_dir, keep_dir=args.run_dir is not None)
    return cluster, workload


def cmd_run(args: argparse.Namespace) -> int:
    cluster, workload = _build_cluster(args)
    started = time.monotonic()
    with cluster:
        cluster.load_initial_data(workload)
        cluster.refresh_all()
        if args.clients > 0:
            # Concurrent closed-loop driver (pipelined RPC + group
            # certification): per-client transaction counts, shared fsyncs.
            run = cluster.run_workload(
                workload, clients=args.clients,
                transactions_per_client=max(1, args.transactions // args.clients),
                seed=args.seed,
            )
            committed, aborted = run["commits"], run["aborts"]
            driver: dict[str, object] = {
                "clients": int(run["clients"]),
                "certs_per_sec": round(float(run["certs_per_sec"]), 1),
                "fsyncs_per_commit": round(float(run["fsyncs_per_commit"]), 3),
            }
        else:
            sessions = [cluster.session(name) for name in cluster.replicas]
            rng = RandomStreams(args.seed)
            committed = aborted = 0
            for sequence in range(args.transactions):
                session = sessions[sequence % len(sessions)]
                if workload.run_transaction(session, rng, client_index=0,
                                            sequence=sequence):
                    committed += 1
                else:
                    aborted += 1
                if (sequence + 1) % args.refresh_every == 0:
                    cluster.refresh_all()
            driver = {"clients": 0}
        cluster.refresh_all()
        summary = build_run_summary(cluster, workload_name=args.workload,
                                    transactions=args.transactions,
                                    committed=committed, aborted=aborted,
                                    wall_clock_s=time.monotonic() - started,
                                    driver=driver)
    # No default=str fallback: every field is a JSON-native type by
    # construction (build_run_summary), so the summary round-trips through
    # json.loads with the same types it was printed with.
    print(json.dumps(summary, indent=2))
    return 0


def build_run_summary(cluster: LiveCluster, *, workload_name: str,
                      transactions: int, committed: int, aborted: int,
                      wall_clock_s: float,
                      driver: dict[str, object] | None = None) -> dict:
    """Typed, JSON-native run summary (what ``repro-cluster run`` prints).

    Every leaf is an ``int``, ``float``, ``str`` or ``bool`` so the document
    survives ``json.dumps``/``json.loads`` with types intact — no
    ``default=`` coercion hiding a non-serialisable value.
    """
    summary = {
        "workload": str(workload_name),
        "transactions": int(transactions),
        "committed": int(committed),
        "aborted": int(aborted),
        "system_version": int(cluster.system_version()),
        "replica_versions": {str(name): int(cluster.replica_version(name))
                             for name in cluster.replicas},
        "replication_horizon": int(cluster.replication_horizon()),
        "shard_wals": [{str(k): int(v) for k, v in
                        cluster.shard_wal_stats(i).items()}
                       for i in range(len(cluster.shards))],
        "wall_clock_s": round(float(wall_clock_s), 3),
    }
    if driver:
        summary["driver"] = driver
    return summary


def cmd_spawn(args: argparse.Namespace) -> int:
    cluster, _ = _build_cluster(args)
    with cluster:
        layout = {
            "run_dir": str(cluster.harness.run_dir),
            "scheduler": cluster.scheduler.port,
            "shards": [node.port for node in cluster.shards],
            "replicas": {name: node.port for name, node in cluster.replicas.items()},
        }
        if cluster.standby_scheduler is not None:
            layout["scheduler_standby"] = cluster.standby_scheduler.port
        print(json.dumps(layout, indent=2))
        print("cluster up; ^C to tear down", flush=True)
        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Boot and drive a live multi-process replicated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (("run", cmd_run), ("spawn", cmd_spawn)):
        cmd = sub.add_parser(name)
        cmd.set_defaults(handler=handler)
        cmd.add_argument("--workload", default="allupdates")
        cmd.add_argument("--system", default=SystemKind.TASHKENT_MW.value,
                         choices=[k.value for k in SystemKind
                                  if k is not SystemKind.STANDALONE])
        cmd.add_argument("--replicas", type=int, default=2)
        cmd.add_argument("--shards", type=int, default=1)
        cmd.add_argument("--scale", type=int, default=1)
        cmd.add_argument("--seed", type=int, default=1)
        cmd.add_argument("--transactions", type=int, default=40)
        cmd.add_argument("--clients", type=int, default=0,
                         help="run this many concurrent closed-loop clients "
                              "(0 = sequential round-robin driver)")
        cmd.add_argument("--refresh-every", type=int, default=8)
        cmd.add_argument("--standby", action="store_true",
                         help="also boot a standby scheduler seeded from the "
                              "primary (kill -9 the primary, then promote "
                              "via the standby's 'promote' op)")
        cmd.add_argument("--run-dir", default=None,
                         help="keep node logs/WALs here instead of a temp dir")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
