"""``repro-cluster``: boot a live cluster and drive a workload against it.

Usage (from the repo root)::

    PYTHONPATH=src python -m repro.live.cli run --workload allupdates \\
        --replicas 2 --shards 2 --transactions 40

``run`` boots shard/scheduler/replica processes on localhost via the
:class:`~repro.live.harness.ProcessHarness`, loads the workload's initial
data, runs round-robin client transactions against every replica, refreshes,
and prints a JSON summary (commits, aborts, system version, per-replica
versions, WAL stats).  Everything is reaped on exit — including on ^C.

``spawn`` boots a cluster and holds it for interactive poking (``nc`` or a
:class:`~repro.live.wire.WireClient`) until interrupted.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.core.config import ReplicationConfig, SystemKind
from repro.live.cluster import LiveCluster
from repro.sim.rng import RandomStreams
from repro.workloads import workload_by_name


def _build_cluster(args: argparse.Namespace) -> tuple[LiveCluster, object]:
    workload = workload_by_name(args.workload, num_replicas=args.replicas,
                                scale=args.scale)
    config = ReplicationConfig(
        system=SystemKind(args.system),
        num_replicas=args.replicas,
        certifier_shards=args.shards,
        rng_seed=args.seed,
    )
    cluster = LiveCluster(config, workload.schemas(),
                          run_dir=args.run_dir, keep_dir=args.run_dir is not None)
    return cluster, workload


def cmd_run(args: argparse.Namespace) -> int:
    cluster, workload = _build_cluster(args)
    started = time.monotonic()
    with cluster:
        cluster.load_initial_data(workload)
        cluster.refresh_all()
        sessions = [cluster.session(name) for name in cluster.replicas]
        rng = RandomStreams(args.seed)
        committed = aborted = 0
        for sequence in range(args.transactions):
            session = sessions[sequence % len(sessions)]
            if workload.run_transaction(session, rng, client_index=0,
                                        sequence=sequence):
                committed += 1
            else:
                aborted += 1
            if (sequence + 1) % args.refresh_every == 0:
                cluster.refresh_all()
        cluster.refresh_all()
        summary = {
            "workload": args.workload,
            "transactions": args.transactions,
            "committed": committed,
            "aborted": aborted,
            "system_version": cluster.system_version(),
            "replica_versions": {name: cluster.replica_version(name)
                                 for name in cluster.replicas},
            "replication_horizon": cluster.replication_horizon(),
            "shard_wals": [cluster.shard_wal_stats(i)
                           for i in range(len(cluster.shards))],
            "wall_clock_s": round(time.monotonic() - started, 3),
        }
    print(json.dumps(summary, indent=2, default=str))
    return 0


def cmd_spawn(args: argparse.Namespace) -> int:
    cluster, _ = _build_cluster(args)
    with cluster:
        layout = {
            "run_dir": str(cluster.harness.run_dir),
            "scheduler": cluster.scheduler.port,
            "shards": [node.port for node in cluster.shards],
            "replicas": {name: node.port for name, node in cluster.replicas.items()},
        }
        print(json.dumps(layout, indent=2))
        print("cluster up; ^C to tear down", flush=True)
        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Boot and drive a live multi-process replicated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (("run", cmd_run), ("spawn", cmd_spawn)):
        cmd = sub.add_parser(name)
        cmd.set_defaults(handler=handler)
        cmd.add_argument("--workload", default="allupdates")
        cmd.add_argument("--system", default=SystemKind.TASHKENT_MW.value,
                         choices=[k.value for k in SystemKind
                                  if k is not SystemKind.STANDALONE])
        cmd.add_argument("--replicas", type=int, default=2)
        cmd.add_argument("--shards", type=int, default=1)
        cmd.add_argument("--scale", type=int, default=1)
        cmd.add_argument("--seed", type=int, default=1)
        cmd.add_argument("--transactions", type=int, default=40)
        cmd.add_argument("--refresh-every", type=int, default=8)
        cmd.add_argument("--run-dir", default=None,
                         help="keep node logs/WALs here instead of a temp dir")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
