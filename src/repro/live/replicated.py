"""Replicated live scheduler: durable WAL entries + standby promotion.

The plain live scheduler (PR 8/9) writes opaque size markers to the shard
WALs — enough to *gate* commits on a real remote fsync, useless for
rebuilding the certifier after the scheduler process dies.  This module
closes that gap with two pieces:

:class:`LiveReplicatedCertifierService`
    A :class:`~repro.middleware.sharded_certifier.ShardedCertifierService`
    whose shard WAL payloads are full JSON-encoded
    :class:`~repro.consensus.sharded.ShardLogEntry` records — writeset,
    touched-shard set, origin replica, certified-back horizon and the
    exactly-once ``tx_id`` — plus replicated GC markers.  The certifier
    shard processes thereby become the scheduler's durable acceptor
    stores: any state a standby needs survives in their WAL files, exactly
    like the functional :class:`~repro.consensus.sharded.
    ReplicatedShardedCertifier` keeps it in its Paxos groups.

:func:`rebuild_from_shard_wals`
    The promotion path.  The shard WALs' entries are learned into an
    in-memory single-node-per-shard :class:`~repro.consensus.sharded.
    ShardPaxosGroups` and the *functional* recovery orchestration —
    :func:`~repro.recovery.sharded_recovery.recover_sharded_certifier`,
    byte for byte — rebuilds the coordinator: merges per-shard prefixes
    into rounds, **completes rounds interrupted mid-flush** (present on
    some but not all touched shards' WALs), restores the GC horizon from
    the replicated markers and rebuilds the exactly-once commit table from
    the entries' ``tx_id`` tokens.  Completed fragments are returned so
    the caller can append them durably to the real shard WALs before
    serving traffic.

The deployment choreography (standby seeding over the wire, the
``promote`` op, client re-dial) lives in :mod:`repro.live.node` /
:mod:`repro.live.cluster`; this module is deliberately wire-free so the
rebuild logic is unit-testable against the functional stack.
"""

from __future__ import annotations

import json
import random

from repro.consensus.sharded import (
    ENTRY_GC,
    ReplicatedShardedCertifier,
    ShardLogEntry,
)
from repro.core.certification import CertificationRequest, CertificationResult
from repro.core.sharding import Partitioner
from repro.errors import ReproError
from repro.live.codec import decode_shard_log_entry, encode_shard_log_entry
from repro.middleware.certifier import CertifierConfig
from repro.middleware.sharded_certifier import ShardedCertifierService
from repro.recovery.sharded_recovery import (
    ShardedCertifierRecoveryReport,
    recover_sharded_certifier,
)


def encode_entry_payload(entry: ShardLogEntry) -> bytes:
    """One WAL payload: the JSON-encoded entry (`codec` writeset format)."""
    return json.dumps(encode_shard_log_entry(entry),
                      separators=(",", ":")).encode("utf-8")


def decode_entry_payload(payload: bytes) -> ShardLogEntry:
    return decode_shard_log_entry(json.loads(payload.decode("utf-8")))


class LiveReplicatedCertifierService(ShardedCertifierService):
    """A sharded certifier service whose WAL payloads rebuild the scheduler.

    Used by the live scheduler when ``live.scheduler_standby`` is on — at
    *any* shard count, including one: the seed
    :class:`~repro.middleware.certifier.CertifierService` has no failover
    hooks, and the single-shard sharded service is decision-equivalent to
    it (``tests/test_property_certify_batch.py`` pins that).
    """

    def __init__(
        self,
        config: CertifierConfig | None = None,
        *,
        log_devices=None,
        partitioner: Partitioner | None = None,
    ) -> None:
        super().__init__(config, log_devices=log_devices, partitioner=partitioner)
        #: Global commit version → client tx_id, for rounds whose entries
        #: have not been flushed yet (pruned with the GC horizon).  The
        #: entry must carry the tx_id so a promoted standby can answer the
        #: client's retry from the rebuilt exactly-once table.
        self._tx_for_version: dict[int, object] = {}

    # -- certification with exactly-once tokens -------------------------------

    def certify_tx(self, request: CertificationRequest,
                   tx_id: object = None) -> CertificationResult:
        """Certify one transaction, stamping its WAL entry with ``tx_id``."""
        outcome = self.certify_batch_tx([request], [tx_id])[0]
        if isinstance(outcome, ReproError):
            raise outcome
        return outcome

    def certify_batch_tx(
        self,
        requests: list[CertificationRequest],
        tx_ids: list[object],
    ) -> list[CertificationResult | ReproError]:
        """`certify_batch` with the version→tx_id map populated between
        admit and flush, so `_flush_shard` can stamp each entry.

        Mirrors :meth:`ShardedCertifierService.certify_batch` exactly —
        same decisions, same enqueue/flush/GC cadence — the only addition
        is the tx bookkeeping the durable entries need.
        """
        before = self.core.certification_requests
        outcomes = self.core.certify_batch(requests)
        touched: set[int] = set()
        for outcome, tx_id in zip(outcomes, tx_ids):
            if (isinstance(outcome, CertificationResult) and outcome.committed
                    and outcome.tx_commit_version is not None):
                if tx_id is not None:
                    self._tx_for_version[outcome.tx_commit_version] = tx_id
                record = self.core.record_at(outcome.tx_commit_version)
                for shard_id, local in record.shard_locals:
                    self._batchers[shard_id].enqueue(
                        (outcome.tx_commit_version, local))
                    touched.add(shard_id)
        if touched:
            if self.config.durability_enabled:
                self.flush(shard_ids=sorted(touched))
            else:
                self._propagate_up_to(self.core.last_version)
        interval = self.config.gc_interval_requests
        if interval > 0 and (before // interval
                             != self.core.certification_requests // interval):
            if not self.config.durability_enabled:
                self.flush()
            self.collect_garbage()
        return outcomes

    def certify(self, request: CertificationRequest) -> CertificationResult:
        return self.certify_tx(request, None)

    def certify_batch(
        self, requests: list[CertificationRequest],
    ) -> list[CertificationResult | ReproError]:
        return self.certify_batch_tx(requests, [None] * len(requests))

    # -- durable entries -------------------------------------------------------

    def _flush_shard(self, shard_id: int) -> int:
        """Append full round entries — not size markers — to the shard WAL.

        Every touched shard gets the complete entry (full writeset +
        touched set), mirroring the functional replicated certifier's
        group appends: one surviving copy is enough for recovery to finish
        an interrupted cross-shard round.
        """
        batcher = self._batchers[shard_id]
        if not batcher.has_pending:
            return 0
        shard = self.core.shards[shard_id]
        device = self.devices[shard_id]
        batch = batcher.take_batch()
        for global_version, _local_version in batch:
            record = self.core.record_at(global_version)
            device.append(encode_entry_payload(ShardLogEntry(
                kind="commit",
                global_version=global_version,
                writeset=record.writeset,
                touched=tuple(s for s, _ in record.shard_locals),
                origin_replica=record.origin_replica,
                certified_back_to=self.core.certified_back_to(global_version),
                tx_id=self._tx_for_version.get(global_version),
            )))
        device.sync()
        batcher.complete_batch()
        shard.log.mark_durable(max(local for _, local in batch))
        self.core.advance_durable_frontier()
        return len(batch)

    def collect_garbage(self) -> int:
        """Replicate the decided GC horizon to every shard WAL, then prune.

        Marker-before-prune, like the functional replicated certifier: a
        standby re-prunes to exactly the horizon the dead primary decided,
        and the version→tx_id map stays horizon-bound with it.
        """
        target = self.core.gc_target(headroom=self.config.gc_headroom_versions)
        if target is None:
            return 0
        marker = encode_entry_payload(
            ShardLogEntry(kind=ENTRY_GC, global_version=target))
        for device in self.devices:
            device.append(marker)
            device.sync()
        for version in [v for v in self._tx_for_version if v <= target]:
            del self._tx_for_version[version]
        return self.core.apply_gc(target)


def rebuild_from_shard_wals(
    per_shard_entries: list[list[ShardLogEntry]],
    *,
    config: CertifierConfig | None = None,
    partitioner: Partitioner | None = None,
) -> tuple[ReplicatedShardedCertifier, ShardedCertifierRecoveryReport,
           list[tuple[int, ShardLogEntry]]]:
    """Rebuild a certifier coordinator from the shard WALs' entries.

    ``per_shard_entries[shard_id]`` is that shard's decoded WAL payload
    sequence, in append order.  The entries are learned into an in-memory
    one-node-per-shard Paxos group set (a WAL file acknowledges its own
    fsyncs, so one "node" per shard *is* the quorum) and the functional
    :func:`recover_sharded_certifier` does the rest — including completing
    rounds that reached only a subset of their touched shards' WALs.

    Returns ``(certifier, report, completions)`` where ``completions``
    lists ``(shard_id, entry)`` fragments recovery appended in memory to
    finish interrupted rounds — the caller must append them durably to the
    real shard WALs before acknowledging any new work.
    """
    base = config if config is not None else CertifierConfig()
    certifier = ReplicatedShardedCertifier(
        max(1, len(per_shard_entries)),
        nodes_per_shard=1,
        partitioner=partitioner,
        forced_abort_rate=base.forced_abort_rate,
        abort_chooser=random.Random(base.rng_seed).random,
        gc_headroom=base.gc_headroom_versions,
    )
    for shard_id, entries in enumerate(per_shard_entries):
        for entry in entries:
            certifier.groups.append(shard_id, entry)
    certifier.crash()
    report = recover_sharded_certifier(certifier)
    completions: list[tuple[int, ShardLogEntry]] = []
    for shard_id, entries in enumerate(per_shard_entries):
        chosen = certifier.groups.chosen_entries(shard_id)
        for entry in chosen[len(entries):]:
            completions.append((shard_id, entry))
    return certifier, report, completions
