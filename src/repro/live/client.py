"""Wire-level clients for the live cluster.

Two callers live here:

:class:`LiveCertifierClient`
    Runs *inside a replica node process*.  It quacks exactly like the
    in-process :class:`~repro.middleware.certifier.CertifierService` surface
    the :class:`~repro.middleware.proxy.TransparentProxy` consumes —
    ``certify`` / ``subscribe_replica`` / ``flush_propagation`` /
    ``register_replica`` / ``extend_remote_horizons`` /
    ``replication_horizon`` — but every call is a framed round trip to the
    scheduler process.  A commit's certification carries the client-supplied
    transaction id (``next_tx_id``), which the scheduler uses for its
    exactly-once table; the call itself retries through scheduler outages,
    which is safe precisely because of that table.

:class:`LiveSession`
    Runs *in the driver process* (a test, a benchmark, the CLI) and mirrors
    the :class:`~repro.middleware.client_api.ClientSession` API over the
    wire, so the unmodified workload definitions (``workload.setup(session)``
    / ``workload.run_transaction(session, ...)``) drive real replica
    processes.  Its commit path implements the client half of the
    exactly-once protocol: every commit gets a fresh
    ``"<client>:<seq>"`` transaction id; if the replica connection dies
    mid-commit the session raises :class:`CommitInDoubt`, and after the test
    choreography restarts the replica, :meth:`LiveSession.resolve_commit`
    asks the scheduler for the transaction's fate — answering *committed*
    (never re-execute) or *unknown* (safe to re-execute, nothing was
    admitted).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.core.certification import CertificationRequest, CertificationResult, RemoteWriteSetInfo
from repro.errors import ReproError, TransactionAborted
from repro.live import codec
from repro.live.wire import ConnectionLost, RemoteCallError, WireClient
from repro.middleware.proxy import CommitOutcome


class CommitInDoubt(ReproError):
    """The replica connection died mid-commit: the outcome is unresolved.

    Carries the transaction id the commit was tagged with; once the replica
    (or its replacement) is back, :meth:`LiveSession.resolve_commit` turns
    this into a definite outcome or a licence to re-execute.
    """

    def __init__(self, tx_id: str, cause: Exception) -> None:
        super().__init__(f"commit {tx_id} in doubt: {cause}")
        self.tx_id = tx_id
        self.cause = cause


# ---------------------------------------------------------------------------
# replica-side certifier client
# ---------------------------------------------------------------------------


class CommitGate:
    """Orders concurrent commit finalizations by certification order.

    When a replica runs commits concurrently, each commit's certification
    request is a pipelined frame to the scheduler, and the scheduler admits
    requests in frame-arrival order — so *send order is commit-version
    order*.  But the responses come back whenever their round completes, and
    the replica must apply the engine-side finalization (write the commit,
    apply in-band remote writesets, advance the replica version) in version
    order: a later commit's finalization sees the earlier commit's writeset
    among its in-band remotes, and applying it first would priority-abort the
    earlier commit's still-open engine transaction.

    The gate hands out a **ticket at frame-send time** (inside the wire
    client's send critical section, so ticket order provably equals send
    order) and makes each certified commit wait until every earlier ticket
    has finished finalizing before it re-enters the replica's state lock.
    Tickets are tracked per-thread; every method is a no-op on threads that
    never registered, so abort paths and read-only commits cost nothing.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active: set[int] = set()
        self._next_ticket = 1
        self._local = threading.local()

    def register(self) -> int:
        """Take the next ticket (called from the wire send critical section)."""
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._active.add(ticket)
            self._local.ticket = ticket
            return ticket

    def await_turn(self) -> None:
        """Block until every earlier ticket has completed (no lock held)."""
        ticket = getattr(self._local, "ticket", None)
        if ticket is None:
            return
        with self._cond:
            while any(t < ticket for t in self._active):
                self._cond.wait()

    def complete(self) -> None:
        """Release this thread's ticket, waking later commits."""
        ticket = getattr(self._local, "ticket", None)
        if ticket is None:
            return
        self._local.ticket = None
        with self._cond:
            self._active.discard(ticket)
            self._cond.notify_all()


class LiveSubscription:
    """The proxy-facing view of a server-side writeset subscription.

    The real :class:`WritesetSubscription` lives in the scheduler process
    (created by ``hello_replica``); this object just carries the cursor ops
    the proxy performs — ``advance_to`` is buffered and shipped with the next
    ``poll_flat`` so a refresh costs one round trip, not two.
    """

    def __init__(self, client: WireClient, replica: str) -> None:
        self._client = client
        self.replica = replica
        self._advance_to = 0

    def advance_to(self, version: int) -> None:
        self._advance_to = max(self._advance_to, version)

    def poll_flat(self) -> list[RemoteWriteSetInfo]:
        try:
            response = self._client.call_retrying(
                "poll_writesets", replica=self.replica,
                advance_to=self._advance_to,
            )
        except RemoteCallError as exc:
            if not exc.error.startswith("unknown replica"):
                raise
            # A promoted standby (or restarted scheduler) has no server-side
            # subscription for us; re-subscribe from the applied cursor and
            # retry — the directory backfills anything committed since.
            self._client.call_retrying("hello_replica", replica=self.replica,
                                       from_version=self._advance_to)
            response = self._client.call_retrying(
                "poll_writesets", replica=self.replica,
                advance_to=self._advance_to,
            )
        return [codec.decode_remote_info(i) for i in response["writesets"]]

    @property
    def pending_writesets(self) -> int:
        # Pending batches queue server-side; the proxy only uses this for
        # stats, where "nothing buffered locally" is the truthful answer.
        return 0


class LiveCertifierClient:
    """``CertifierService`` duck-type whose backend is the scheduler process."""

    def __init__(self, host: str, port: int, *, replica_name: str,
                 attempt_timeout_s: float = 10.0, pipelined: bool = False,
                 fallbacks: tuple[tuple[str, int], ...] = ()) -> None:
        self.replica_name = replica_name
        self._client = WireClient(host, port, timeout=attempt_timeout_s,
                                  name=f"certifier-{replica_name}",
                                  pipelined=pipelined, fallbacks=fallbacks)
        #: Set by the replica node around a client commit: the exactly-once
        #: transaction id that rides down with the next ``certify``.
        self.next_tx_id: str | None = None
        self._state_lock: threading.Lock | None = None
        self._gate: CommitGate | None = None
        #: Cumulative seconds commits spent waiting on the certify wire
        #: round trip / on the finalization-order gate (concurrent mode).
        self.wire_wait_s = 0.0
        self.gate_wait_s = 0.0

    def enable_concurrent_commits(self, state_lock: threading.Lock,
                                  gate: CommitGate) -> None:
        """Let :meth:`certify` release the replica's state lock while waiting.

        ``state_lock`` is the replica-wide lock the calling worker holds
        around every op; ``gate`` orders re-entry so finalizations happen in
        certification order (see :class:`CommitGate`).
        """
        self._state_lock = state_lock
        self._gate = gate

    def finish_commit_ticket(self) -> None:
        """Release the calling thread's gate ticket (no-op without one)."""
        if self._gate is not None:
            self._gate.complete()

    def wire_stats(self) -> dict[str, int]:
        return self._client.stats()

    # -- CertifierService surface (what TransparentProxy + Replica call) ------

    def certify(self, request: CertificationRequest) -> CertificationResult:
        fields: dict[str, object] = {"request": codec.encode_request(request)}
        if self.next_tx_id is not None:
            fields["tx_id"] = self.next_tx_id
        # Retrying is safe: with a tx_id the scheduler's exactly-once table
        # answers duplicates from the record; without one the transaction
        # never left this process, so a resend is the first delivery.
        if self._state_lock is None:
            response = self._client.call_retrying("certify", **fields)
            return codec.decode_result(response["result"])
        # Concurrent-commit mode: drop the replica state lock for exactly the
        # wire wait, so other workers run while this commit's certification
        # round is in flight.  The gate ticket is taken inside the send
        # critical section (ticket order == send order == admission order),
        # and re-acquiring the state lock is deferred until every earlier
        # ticket has finalized — commit finalization happens in version order.
        gate = self._gate
        registered = [False]

        def on_send() -> None:
            if not registered[0]:
                registered[0] = True
                gate.register()

        self._state_lock.release()
        try:
            started = time.perf_counter()
            response = self._client.call_retrying("certify", _on_send=on_send,
                                                  **fields)
            responded = time.perf_counter()
            gate.await_turn()
            done = time.perf_counter()
            self.wire_wait_s += responded - started
            self.gate_wait_s += done - responded
        finally:
            self._state_lock.acquire()
        return codec.decode_result(response["result"])

    def subscribe_replica(self, replica: str, from_version: int = 0) -> LiveSubscription:
        self._client.call_retrying("hello_replica", replica=replica,
                                   from_version=from_version)
        return LiveSubscription(self._client, replica)

    def flush_propagation(self) -> None:
        self._client.call_retrying("flush_propagation")

    def register_replica(self, replica: str, version: int = 0) -> None:
        self._client.call_retrying("register_replica", replica=replica, version=version)

    def extend_remote_horizons(self, infos: list[RemoteWriteSetInfo],
                               back_to: int) -> list[RemoteWriteSetInfo]:
        response = self._client.call_retrying(
            "extend_remote_horizons",
            infos=[codec.encode_remote_info(i) for i in infos], back_to=back_to,
        )
        return [codec.decode_remote_info(i) for i in response["infos"]]

    def replication_horizon(self) -> int:
        return self._client.call_retrying("replication_horizon")["horizon"]

    def collect_garbage(self) -> int:
        return self._client.call_retrying("collect_garbage")["pruned"]

    @property
    def system_version(self) -> int:
        return self._client.call_retrying("system_version")["version"]

    def close(self) -> None:
        self._client.close()


# ---------------------------------------------------------------------------
# driver-side client session
# ---------------------------------------------------------------------------


class LiveSession:
    """A :class:`ClientSession` look-alike over the wire.

    The server side holds a real ``ClientSession`` (and so a real proxy
    transaction); this object holds only the session id, the commit sequence
    for transaction ids, and the scheduler address for in-doubt resolution.
    Workload code written against ``ClientSession`` runs against it
    unchanged.
    """

    def __init__(self, replica_host: str, replica_port: int,
                 scheduler_host: str, scheduler_port: int, *,
                 client_name: str = "client",
                 attempt_timeout_s: float | None = 30.0,
                 scheduler_fallbacks: tuple[tuple[str, int], ...] = ()) -> None:
        self.client_name = client_name
        self._replica = WireClient(replica_host, replica_port,
                                   timeout=attempt_timeout_s, name=client_name)
        # The status client knows the standby too: an in-doubt commit must
        # be resolvable even when the primary scheduler is the node that died.
        self._scheduler = WireClient(scheduler_host, scheduler_port,
                                     timeout=attempt_timeout_s,
                                     name=f"{client_name}-status",
                                     fallbacks=scheduler_fallbacks)
        self.session_id: int | None = None
        self.replica_name: str | None = None
        self.commits = 0
        self.aborts = 0
        self.in_doubt_commits = 0
        self._seq = 0
        self._in_txn = False
        #: Statements with no result (begin/insert/update/delete) are not
        #: sent immediately: they queue here and ride ahead of the next
        #: synchronous statement (read/scan/commit/abort) as one
        #: ``session_batch`` frame — halving the frame count of a typical
        #: read-modify-write transaction.  Tradeoff: a deferred statement's
        #: error (e.g. a write-write block) surfaces at the next synchronous
        #: statement instead of at the deferred one.
        self._deferred: list[dict] = []
        self._open()

    def _open(self) -> None:
        response = self._replica.call("open_session", client_name=self.client_name)
        self.session_id = response["session_id"]
        self.replica_name = response["replica"]

    def _call(self, op: str, **fields: object) -> dict:
        try:
            return self._replica.call(op, session_id=self.session_id, **fields)
        except RemoteCallError as exc:
            if exc.error_type == "TransactionAborted":
                # The server-side session already dropped its transaction
                # handle (ClientSession._guarded_write semantics).
                self._in_txn = False
                self.aborts += 1
                raise TransactionAborted(exc.error, reason=exc.reason) from exc
            raise

    def _defer(self, op: str, **fields: object) -> None:
        self._deferred.append({"op": op, **fields})

    def _sync_call(self, op: str, **fields: object) -> dict:
        """Send ``op``, fusing any deferred statements ahead of it."""
        if not self._deferred:
            return self._call(op, **fields)
        ops = self._deferred + [{"op": op, **fields}]
        self._deferred = []
        response = self._call("session_batch", ops=ops)
        results = response["results"]
        last = results[-1] if results else {}
        if not last.get("ok", False):
            failed_op = str(ops[max(len(results) - 1, 0)]["op"])
            error = RemoteCallError(
                failed_op,
                str(last.get("error", "unknown remote error")),
                error_type=str(last.get("error_type", "error")),
                reason=last.get("reason"),
            )
            if error.error_type == "TransactionAborted":
                self._in_txn = False
                self.aborts += 1
                raise TransactionAborted(error.error,
                                         reason=error.reason) from error
            raise error
        return last

    # -- transaction control (ClientSession mirror) ---------------------------

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    def begin(self) -> None:
        self._defer("begin")
        self._in_txn = True

    def commit(self) -> CommitOutcome:
        """Commit the open transaction, tagged for exactly-once retry.

        Raises :class:`CommitInDoubt` when the replica vanishes mid-commit —
        the caller must restart/reconnect and call :meth:`resolve_commit`.
        """
        self._seq += 1
        tx_id = f"{self.client_name}:{self._seq}"
        self._in_txn = False
        try:
            response = self._sync_call("commit", tx_id=tx_id)
        except ConnectionLost as exc:
            self.in_doubt_commits += 1
            raise CommitInDoubt(tx_id, exc) from exc
        outcome = codec.decode_outcome(response["outcome"])
        if outcome.committed:
            self.commits += 1
        else:
            self.aborts += 1
        return outcome

    def abort(self) -> None:
        self._in_txn = False
        self._sync_call("abort")
        self.aborts += 1

    @contextmanager
    def transaction(self) -> Iterator["LiveSession"]:
        """Begin, then commit on success / abort on error (ClientSession mirror)."""
        self.begin()
        try:
            yield self
        except TransactionAborted:
            if self._in_txn:
                self.abort()
            raise
        except Exception:
            if self._in_txn:
                self.abort()
            raise
        else:
            if self._in_txn:
                self.commit()

    def run_readonly(self, table: str, key: object) -> dict | None:
        """One-shot read-only transaction."""
        self.begin()
        value = self.read(table, key)
        self.commit()
        return value

    # -- statement API --------------------------------------------------------

    def read(self, table: str, key: object) -> dict | None:
        return self._sync_call("read", table=table, key=key)["row"]

    def scan(self, table: str) -> list[tuple[object, dict]]:
        return [(key, row)
                for key, row in self._sync_call("scan", table=table)["rows"]]

    def insert(self, table: str, key: object, **values: object) -> None:
        self._defer("insert", table=table, key=key, values=values)

    def update(self, table: str, key: object, **values: object) -> None:
        self._defer("update", table=table, key=key, values=values)

    def delete(self, table: str, key: object) -> None:
        self._defer("delete", table=table, key=key)

    # -- crash recovery -------------------------------------------------------

    def reconnect(self, *, deadline_s: float = 30.0) -> None:
        """Re-attach to the (restarted) replica with a fresh server session.

        The old server-side session died with the old process; any open
        transaction is gone with it, which is exactly the semantics a crashed
        database gives a client.
        """
        self._deferred.clear()
        self._replica.close()
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                self._open()
                return
            except (ConnectionLost, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)

    def resolve_commit(self, tx_id: str, *, wait_known_s: float = 0.0,
                       deadline_s: float = 30.0) -> CommitOutcome | None:
        """Resolve an in-doubt commit against the scheduler's tx table.

        Returns the definite :class:`CommitOutcome` when the transaction was
        admitted (the client must NOT re-execute it), or ``None`` when the
        scheduler never saw it (nothing was admitted; re-executing is safe
        and preserves exactly-once).

        ``wait_known_s`` keeps polling an *unknown* status for that long
        before concluding ``None``.  Pass a positive wait when the replica
        that was executing the commit is still alive (e.g. the fault hit a
        certifier shard): its certification is merely stalled and will be
        recorded once the shard is back.  When the executing replica itself
        was killed, nothing can still arrive and ``0.0`` is truthful.
        """
        poll_until = time.monotonic() + wait_known_s
        while True:
            response = self._scheduler.call_retrying(
                "commit_status", tx_id=tx_id, deadline_s=deadline_s,
            )
            if response["known"]:
                break
            if time.monotonic() >= poll_until:
                return None
            time.sleep(0.1)
        outcome = CommitOutcome(
            committed=response["committed"],
            readonly=False,
            commit_version=response["commit_version"],
            abort_reason=None if response["committed"] else "resolved-abort",
        )
        if outcome.committed:
            self.commits += 1
        else:
            self.aborts += 1
        return outcome

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._deferred.clear()
        if self.session_id is not None and self._replica.connected:
            try:
                self._replica.call("close_session", session_id=self.session_id)
            except (ConnectionLost, RemoteCallError):
                pass
        self._replica.close()
        self._scheduler.close()

    def __enter__(self) -> "LiveSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LiveSession(client={self.client_name!r}, replica={self.replica_name!r}, "
            f"commits={self.commits}, aborts={self.aborts})"
        )
