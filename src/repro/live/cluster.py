"""LiveCluster: the third backend — real processes behind the same config.

The repo now has three executable forms of the replicated system:

==============  ==========================================  ===================
backend         what runs                                   entry point
==============  ==========================================  ===================
functional      in-process objects, synchronous calls       ``build_replicated_system``
sim             discrete-event model, simulated time        ``repro.cluster.experiment``
**live**        one OS process per node, asyncio TCP,       ``LiveCluster``
                real file-backed WAL fsyncs, kill -9-able
==============  ==========================================  ===================

``LiveCluster`` consumes the *same* :class:`ReplicationConfig` as the
functional backend and maps it to processes exactly the way
``build_replicated_system`` maps it to objects: ``certifier_shards`` WAL
shard processes, one scheduler process hosting the certifier service, and
``num_replicas`` replica processes named ``replica-0..n-1``.  Table schemas
(from ``workload.schemas()``) travel to the replica nodes through a spec
file in the run directory, so the unmodified workload definitions drive the
cluster through :class:`~repro.live.client.LiveSession`.

Boot order is shards → scheduler → replicas (each tier's addresses are
discovered from the previous tier's stdout handshakes), teardown is the
harness context manager (reap + orphan check), and the fault surface —
``kill_replica`` / ``restart_replica`` / ``kill_shard`` / ``restart_shard``
— is SIGKILL-based: no shutdown handler ever runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.config import ReplicationConfig
from repro.engine.table import TableSchema
from repro.live import codec
from repro.live.client import LiveSession
from repro.live.harness import NodeHandle, ProcessHarness
from repro.live.wire import WireClient


class LiveCluster:
    """A running multi-process replicated system on localhost."""

    def __init__(self, config: ReplicationConfig,
                 schemas: Sequence[TableSchema] = (), *,
                 run_dir: str | Path | None = None, keep_dir: bool = False,
                 replica_args: dict[str, Sequence[str]] | None = None,
                 shard_args: dict[int, Sequence[str]] | None = None,
                 scheduler_args: Sequence[str] | None = None,
                 ready_timeout_s: float = 30.0) -> None:
        self.config = config
        self.schemas = tuple(schemas)
        self.harness = ProcessHarness(run_dir=run_dir, keep_dir=keep_dir)
        self._replica_args = {k: list(v) for k, v in (replica_args or {}).items()}
        self._shard_args = {k: list(v) for k, v in (shard_args or {}).items()}
        self._scheduler_args = list(scheduler_args or [])
        self._ready_timeout_s = ready_timeout_s
        self.scheduler: NodeHandle | None = None
        self.standby_scheduler: NodeHandle | None = None
        #: Where control-plane calls and new sessions go; flipped to the
        #: standby by :meth:`promote_standby`.
        self._active_scheduler: NodeHandle | None = None
        self.shards: list[NodeHandle] = []
        self.replicas: dict[str, NodeHandle] = {}
        self._sessions: list[LiveSession] = []
        self._next_client = 0
        self._started = False

    # -- boot -----------------------------------------------------------------

    @property
    def spec_path(self) -> Path:
        return self.harness.run_dir / "cluster-spec.json"

    def _write_spec(self) -> None:
        spec = {
            "system": self.config.system.value,
            "local_certification": self.config.local_certification,
            "eager_pre_certification": self.config.eager_pre_certification,
            "schemas": [
                {"name": s.name, "columns": list(s.columns), "primary_key": s.primary_key}
                for s in self.schemas
            ],
            # Mirrors build_replicated_system's CertifierConfig mapping.
            "certifier": {
                "durability_enabled": self.config.system.durability_in_certifier,
                "forced_abort_rate": self.config.forced_abort_rate,
                "rng_seed": self.config.rng_seed,
                "shards": self.config.certifier_shards,
                "gc_headroom_versions": self.config.certifier_gc_headroom,
            },
            # Live-backend concurrency knobs (pipelined RPC + group
            # certification); with ``pipeline`` off every node falls back to
            # the strict one-in-flight protocol.
            "live": {
                "pipeline": self.config.live_pipeline,
                "certify_batch_window_ms": self.config.live_certify_batch_window_ms,
                "certify_batch_max": self.config.live_certify_batch_max,
                "replica_workers": self.config.live_replica_workers,
                "scheduler_standby": self.config.live_scheduler_standby,
            },
        }
        self.spec_path.write_text(json.dumps(spec, indent=2), encoding="utf-8")

    def start(self) -> "LiveCluster":
        if self._started:
            return self
        self._write_spec()
        timeout = self._ready_timeout_s
        for shard_id in range(self.config.certifier_shards):
            name = f"shard-{shard_id}"
            self.shards.append(self.harness.spawn(
                "certifier-shard", name,
                ["--shard-id", str(shard_id), "--wal", f"{name}.wal",
                 "--fsync-floor-ms", str(self.config.live_wal_fsync_floor_ms),
                 *self._shard_args.get(shard_id, [])],
                timeout_s=timeout,
            ))
        shard_flags = [arg for shard in self.shards
                       for arg in ("--shard", f"127.0.0.1:{shard.port}")]
        self.scheduler = self.harness.spawn(
            "scheduler", "scheduler",
            ["--spec", str(self.spec_path), *shard_flags,
             *self._scheduler_args],
            timeout_s=timeout,
        )
        self._active_scheduler = self.scheduler
        standby_flags: list[str] = []
        if self.config.live_scheduler_standby:
            # Booted after the primary so the warm state-transfer seed
            # succeeds; stays unpromoted (NotPromoted to data-plane ops)
            # until promote_standby().
            self.standby_scheduler = self.harness.spawn(
                "scheduler", "scheduler-standby",
                ["--spec", str(self.spec_path), "--standby",
                 "--primary", f"127.0.0.1:{self.scheduler.port}",
                 *shard_flags],
                timeout_s=timeout,
            )
            standby_flags = ["--scheduler-standby",
                             f"127.0.0.1:{self.standby_scheduler.port}"]
        for index in range(self.config.num_replicas):
            name = f"replica-{index}"
            self.replicas[name] = self.harness.spawn(
                "replica", name,
                ["--spec", str(self.spec_path),
                 "--scheduler", f"127.0.0.1:{self.scheduler.port}",
                 *standby_flags,
                 *self._replica_args.get(name, [])],
                timeout_s=timeout,
            )
        self._started = True
        return self

    # -- client sessions ------------------------------------------------------

    def session(self, replica: str = "replica-0", *,
                client_name: str | None = None,
                attempt_timeout_s: float | None = 30.0) -> LiveSession:
        """Open a client session pinned to ``replica`` (the paper's routing)."""
        node = self.replicas[replica]
        scheduler = self._active_scheduler
        assert scheduler is not None and scheduler.port is not None
        if client_name is None:
            client_name = f"client-{self._next_client}"
            self._next_client += 1
        fallbacks: tuple[tuple[str, int], ...] = ()
        if (self.standby_scheduler is not None
                and scheduler is not self.standby_scheduler):
            fallbacks = (("127.0.0.1", self.standby_scheduler.port),)
        session = LiveSession(
            "127.0.0.1", node.port, "127.0.0.1", scheduler.port,
            client_name=client_name, attempt_timeout_s=attempt_timeout_s,
            scheduler_fallbacks=fallbacks,
        )
        self._sessions.append(session)
        return session

    def load_initial_data(self, workload, *, replica: str = "replica-0") -> None:
        """Run ``workload.setup`` through a live session on one replica.

        Refreshes every replica afterwards, mirroring the functional
        ``ReplicatedSystem.load_initial_data`` so both backends start their
        measured runs from identical replica versions.
        """
        with self.session(replica, client_name="loader") as loader:
            workload.setup(loader)
        self.refresh_all()

    # -- closed-loop load driver ----------------------------------------------

    def run_workload(self, workload, *, clients: int = 4,
                     transactions_per_client: int = 50, seed: int = 1,
                     client_prefix: str = "load") -> dict:
        """Drive ``workload`` with ``clients`` concurrent closed-loop clients.

        Each client is one thread with its own :class:`LiveSession` pinned to
        replica ``i % num_replicas`` (the paper's client routing), running
        ``transactions_per_client`` transactions back to back.  Returns a
        summary with the commit rate and the fsync economics of the run —
        ``fsyncs_per_commit`` below 1.0 is group certification at work: more
        than one committed transaction shared each durable WAL write.
        """
        import threading
        import time as _time

        from repro.errors import TransactionAborted
        from repro.live.client import CommitInDoubt
        from repro.sim.rng import RandomStreams

        if not self._started:
            raise RuntimeError("cluster is not started")
        names = list(self.replicas)
        # Client names must be unique across runs on one cluster: a reused
        # name replays old "<client>:<seq>" transaction ids, and the
        # scheduler's exactly-once table would answer the new commits from
        # the stale records.
        run_id = self._next_client
        self._next_client += 1
        client_prefix = f"{client_prefix}{run_id}"
        before = self.scheduler_stats()
        results: list[dict | None] = [None] * clients
        failures: list[BaseException] = []
        barrier = threading.Barrier(clients + 1)

        def run_client(index: int) -> None:
            replica = names[index % len(names)]
            session = self.session(replica,
                                   client_name=f"{client_prefix}-{index}")
            commits = aborts = in_doubt = 0
            rng = RandomStreams(seed + index)
            try:
                barrier.wait()
                for sequence in range(transactions_per_client):
                    try:
                        committed = workload.run_transaction(
                            session, rng, client_index=index,
                            sequence=sequence)
                    except TransactionAborted:
                        aborts += 1
                        continue
                    except CommitInDoubt:
                        in_doubt += 1
                        continue
                    if committed:
                        commits += 1
                    else:
                        aborts += 1
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                failures.append(exc)
            finally:
                results[index] = {"commits": commits, "aborts": aborts,
                                  "in_doubt": in_doubt}
                session.close()

        threads = [threading.Thread(target=run_client, args=(index,),
                                    name=f"{client_prefix}-{index}", daemon=True)
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = _time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = _time.perf_counter() - started
        if failures:
            raise failures[0]
        after = self.scheduler_stats()
        commits = sum(r["commits"] for r in results if r)
        aborts = sum(r["aborts"] for r in results if r)
        in_doubt = sum(r["in_doubt"] for r in results if r)
        fsyncs = after.get("fsyncs", 0) - before.get("fsyncs", 0)
        return {
            "clients": clients,
            "transactions": clients * transactions_per_client,
            "commits": commits,
            "aborts": aborts,
            "in_doubt": in_doubt,
            "elapsed_s": elapsed,
            "certs_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "fsyncs": fsyncs,
            "fsyncs_per_commit": fsyncs / commits if commits else float("nan"),
            "scheduler_stats": after,
        }

    # -- cluster-wide control plane -------------------------------------------

    @staticmethod
    def _unwrap(response: dict) -> dict:
        response.pop("ok", None)
        return response

    def _scheduler_call(self, op: str, **fields: object) -> dict:
        scheduler = self._active_scheduler
        assert scheduler is not None and scheduler.port is not None
        with WireClient("127.0.0.1", scheduler.port, name="cluster-ctl") as ctl:
            return self._unwrap(ctl.call(op, **fields))

    def _replica_call(self, replica: str, op: str, **fields: object) -> dict:
        node = self.replicas[replica]
        with WireClient("127.0.0.1", node.port, name="cluster-ctl") as ctl:
            return self._unwrap(ctl.call(op, **fields))

    def refresh_all(self) -> dict[str, int]:
        """Bounded-staleness refresh on every replica (applied counts)."""
        return {name: self._replica_call(name, "refresh")["applied"]
                for name in self.replicas}

    def system_version(self) -> int:
        return self._scheduler_call("system_version")["version"]

    def replication_horizon(self) -> int:
        return self._scheduler_call("replication_horizon")["horizon"]

    def collect_garbage(self) -> int:
        return self._scheduler_call("collect_garbage")["pruned"]

    def scheduler_stats(self) -> dict:
        return self._scheduler_call("stats")

    def replica_version(self, replica: str) -> int:
        return self._replica_call(replica, "replica_version")["version"]

    def replica_stats(self, replica: str) -> dict:
        return self._replica_call(replica, "stats")

    def dump_table(self, replica: str, table: str) -> dict[object, dict[str, object]]:
        response = self._replica_call(replica, "dump_table", table=table)
        return codec.decode_table_state(response["state"])

    def shard_wal_stats(self, shard_id: int) -> dict:
        shard = self.shards[shard_id]
        with WireClient("127.0.0.1", shard.port, name="cluster-ctl") as ctl:
            return self._unwrap(ctl.call("wal_stats"))

    def shard_stats(self, shard_id: int) -> dict:
        shard = self.shards[shard_id]
        with WireClient("127.0.0.1", shard.port, name="cluster-ctl") as ctl:
            return self._unwrap(ctl.call("stats"))

    def stats(self) -> dict:
        """One merged observability snapshot across every node in the cluster.

        Collects each node's ``stats`` op: the scheduler's service /
        exactly-once / certification-round counters, each replica's proxy stats
        plus certifier-wire counters, and each shard's WAL + server counters.
        """
        return {
            "scheduler": self.scheduler_stats(),
            "replicas": {name: self.replica_stats(name)
                         for name in self.replicas},
            "shards": {shard_id: self.shard_stats(shard_id)
                       for shard_id in range(len(self.shards))},
        }

    def replicas_consistent(self, tables: Iterable[str]) -> bool:
        """After refreshes, do all replicas hold identical table states?"""
        names = list(self.replicas)
        for table in tables:
            reference = self.dump_table(names[0], table)
            for name in names[1:]:
                if self.dump_table(name, table) != reference:
                    return False
        return True

    # -- fault surface --------------------------------------------------------

    def kill_replica(self, replica: str) -> None:
        self.replicas[replica].kill()

    def restart_replica(self, replica: str, *,
                        drop_args: tuple[str, ...] = ()) -> None:
        self.replicas[replica].restart(timeout_s=self._ready_timeout_s,
                                       drop_args=drop_args)

    def kill_scheduler(self) -> None:
        """SIGKILL the primary scheduler (the failover tentpole's fault)."""
        assert self.scheduler is not None
        self.scheduler.kill()

    def promote_standby(self, *, timeout_s: float = 60.0) -> dict:
        """Promote the standby scheduler and route the cluster to it.

        The promotion rebuilds the certifier from the shard WALs (completing
        any round the primary died mid-flush on) and the exactly-once table
        from the entries' tx ids; returns the standby's promotion report.
        Control-plane calls and *new* sessions go to the standby afterwards;
        existing clients re-dial on their own via their fallback addresses.
        """
        assert self.standby_scheduler is not None, "no standby configured"
        with WireClient("127.0.0.1", self.standby_scheduler.port,
                        name="cluster-ctl", timeout=timeout_s) as ctl:
            response = self._unwrap(
                ctl.call_retrying("promote", deadline_s=timeout_s))
        self._active_scheduler = self.standby_scheduler
        return response

    def standby_status(self) -> dict:
        assert self.standby_scheduler is not None, "no standby configured"
        with WireClient("127.0.0.1", self.standby_scheduler.port,
                        name="cluster-ctl") as ctl:
            return self._unwrap(ctl.call("standby_status"))

    def kill_shard(self, shard_id: int) -> None:
        self.shards[shard_id].kill()

    def restart_shard(self, shard_id: int, *,
                      drop_args: tuple[str, ...] = ()) -> None:
        self.shards[shard_id].restart(timeout_s=self._ready_timeout_s,
                                      drop_args=drop_args)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        for session in self._sessions:
            try:
                session.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self._sessions.clear()

    def __enter__(self) -> "LiveCluster":
        self.harness.__enter__()
        try:
            return self.start()
        except BaseException:
            self.harness.__exit__(None, None, None)
            raise

    def __exit__(self, *exc: object) -> None:
        self.close()
        self.harness.__exit__(*exc)

    def __repr__(self) -> str:
        return (
            f"LiveCluster(replicas={len(self.replicas)}, "
            f"shards={len(self.shards)}, started={self._started})"
        )
