"""Length-prefixed JSON wire protocol for the live cluster.

Every message on a live-cluster TCP connection is one *frame*: a 4-byte
big-endian length followed by a UTF-8 JSON object.  Requests carry an ``op``
field plus op-specific payload; responses carry either ``ok: true`` and the
payload or ``ok: false`` with ``error``/``error_type`` fields.  The framing
is deliberately boring — the interesting property is that both sides can
always find the next message boundary, so a reader never has to guess where
a JSON document ends on a stream.

Two consumers share the format:

* the asyncio node servers (:mod:`repro.live.node`) use :func:`read_frame` /
  :func:`write_frame` on ``StreamReader``/``StreamWriter`` pairs;
* the synchronous callers — the test driver's :class:`~repro.live.client.
  LiveSession`, the replica's in-process certifier client, and the
  scheduler's remote WAL device — use :class:`WireClient`, a blocking
  socket with the same framing plus reconnect/retry helpers.

The protocol is strictly request/response per connection: a caller never
pipelines, so a frame read after a write is always the answer to that write.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time

from repro.errors import ReproError

#: Frames beyond this size indicate a corrupted stream (or a runaway
#: payload); both sides refuse them instead of trying to allocate.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(ReproError):
    """Base class for live-cluster wire failures."""


class ConnectionLost(WireError):
    """The TCP peer vanished mid-conversation (crash, kill -9, shutdown)."""


class FrameTooLarge(WireError):
    """A frame header announced more than :data:`MAX_FRAME_BYTES`."""


class RemoteCallError(WireError):
    """The peer processed the request and answered with an error."""

    def __init__(self, op: str, error: str, error_type: str = "error",
                 reason: str | None = None) -> None:
        super().__init__(f"remote op {op!r} failed: {error}")
        self.op = op
        self.error = error
        self.error_type = error_type
        #: Abort reason carried by transaction-level failures.
        self.reason = reason


# ---------------------------------------------------------------------------
# frame encoding (shared by sync and async paths)
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialise one message to its on-wire form (length header + JSON)."""
    body = json.dumps(payload, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise WireError(f"expected a JSON object frame, got {type(message).__name__}")
    return message


# ---------------------------------------------------------------------------
# asyncio side (node servers)
# ---------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a message boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionLost("peer closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionLost("peer closed mid-frame") from exc
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking side (drivers, inter-node clients)
# ---------------------------------------------------------------------------


def _recv_exactly(sock: socket.socket, length: int) -> bytes:
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionLost("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class WireClient:
    """A blocking request/response client over one framed TCP connection.

    ``timeout`` bounds each socket operation (connect/send/recv), not a whole
    call — a slow but live peer keeps resetting the clock.  ``None`` means
    block forever (used by the test driver under the suite watchdog).

    :meth:`call` performs one round trip and unwraps the response envelope;
    :meth:`call_retrying` additionally survives peer restarts by reconnecting
    and resending — callers must only use it for idempotent ops (the live
    protocol makes the WAL append and certification ops idempotent via
    sequence numbers and transaction ids precisely so this is safe).
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0,
                 name: str = "client") -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.name = name
        self._sock: socket.socket | None = None
        self.calls = 0
        self.reconnects = 0

    # -- connection management ------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def reconnect(self) -> None:
        self.close()
        self.reconnects += 1
        self.connect()

    # -- calls ----------------------------------------------------------------

    def call(self, op: str, **fields: object) -> dict:
        """One request/response round trip; raises on transport or remote error."""
        request = {"op": op, **fields}
        try:
            self.connect()
            sock = self._sock
            assert sock is not None
            sock.sendall(encode_frame(request))
            header = _recv_exactly(sock, _LEN.size)
            (length,) = _LEN.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
            response = decode_body(_recv_exactly(sock, length))
        except (OSError, EOFError) as exc:
            # The connection is poisoned mid-exchange; drop it so the next
            # call starts clean.
            self.close()
            raise ConnectionLost(f"{op} to {self.host}:{self.port} failed: {exc}") from exc
        self.calls += 1
        if not response.get("ok", False):
            raise RemoteCallError(
                op,
                str(response.get("error", "unknown remote error")),
                error_type=str(response.get("error_type", "error")),
                reason=response.get("reason"),
            )
        return response

    def call_retrying(self, op: str, *, deadline_s: float | None = None,
                      retry_interval_s: float = 0.2, **fields: object) -> dict:
        """Call, reconnecting and resending until it succeeds.

        Survives the peer being killed and restarted on the same port (the
        harness restarts nodes on their original port).  ``deadline_s`` of
        ``None`` retries forever — the per-test watchdog is the backstop, and
        a deliberately killed node is always restarted by the test choreography.
        """
        start = time.monotonic()
        attempt = 0
        while True:
            try:
                return self.call(op, **fields)
            except ConnectionLost:
                attempt += 1
                self.close()
                # The next call() re-dials from scratch: count it, so callers
                # (e.g. the remote WAL device) can tell a clean first delivery
                # from a resend that crossed a peer restart.
                self.reconnects += 1
                if deadline_s is not None and time.monotonic() - start > deadline_s:
                    raise
                time.sleep(min(retry_interval_s * min(attempt, 5), 1.0))

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "WireClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"WireClient({self.host}:{self.port}, {state}, calls={self.calls})"
