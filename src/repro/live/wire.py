"""Length-prefixed JSON wire protocol for the live cluster.

Every message on a live-cluster TCP connection is one *frame*: a 4-byte
big-endian length followed by a UTF-8 JSON object.  Requests carry an ``op``
field plus op-specific payload; responses carry either ``ok: true`` and the
payload or ``ok: false`` with ``error``/``error_type`` fields.  The framing
is deliberately boring — the interesting property is that both sides can
always find the next message boundary, so a reader never has to guess where
a JSON document ends on a stream.

Two consumers share the format:

* the asyncio node servers (:mod:`repro.live.node`) use :func:`read_frame` /
  :func:`write_frame` on ``StreamReader``/``StreamWriter`` pairs;
* the synchronous callers — the test driver's :class:`~repro.live.client.
  LiveSession`, the replica's in-process certifier client, and the
  scheduler's remote WAL device — use :class:`WireClient`, a blocking
  socket with the same framing plus reconnect/retry helpers.

Multiplexing: a request may carry a ``rid`` (request id, unique per
connection); the response echoes it, which lets one connection carry many
in-flight calls and lets responses come back out of order.  Requests
*without* a ``rid`` keep the original strict request/response discipline:
the server answers them in arrival order before reading the next frame, so
a frame read after a write is always the answer to that write.  The
:class:`WireClient` uses ``rid``s only in ``pipelined`` mode (a background
reader thread demultiplexes responses to the waiting caller threads);
plain clients never send one and stay byte-compatible with the original
protocol.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import socket
import struct
import threading
import time
from typing import Callable

from repro.errors import ReproError

#: Frames beyond this size indicate a corrupted stream (or a runaway
#: payload); both sides refuse them instead of trying to allocate.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(ReproError):
    """Base class for live-cluster wire failures."""


class ConnectionLost(WireError):
    """The TCP peer vanished mid-conversation (crash, kill -9, shutdown).

    ``request_sent`` records whether the request frame was (possibly) written
    to the socket before the failure.  A dial refusal — ``connect()`` raised
    before any bytes went out — sets it ``False``; exactly-once accounting
    uses the flag to tell "the peer may have this request" (a retry is a
    *resend*) from "the peer never heard from us" (a retry is just another
    dial).  The default is the conservative ``True``.
    """

    def __init__(self, message: str, *, request_sent: bool = True) -> None:
        super().__init__(message)
        self.request_sent = request_sent


class CallTimedOut(ConnectionLost):
    """A pipelined call's response wait expired.

    Scoped failure: only the timed-out call's ``rid`` slot is abandoned (a
    late response frame is dropped by the reader's unknown-rid handling);
    the connection and every other in-flight call stay untouched.  If the
    connection is genuinely dead rather than slow, the retry's send fails
    and takes the normal :class:`ConnectionLost` close/reconnect path.
    """


class FrameTooLarge(WireError):
    """A frame header announced more than :data:`MAX_FRAME_BYTES`."""


class RemoteCallError(WireError):
    """The peer processed the request and answered with an error."""

    def __init__(self, op: str, error: str, error_type: str = "error",
                 reason: str | None = None) -> None:
        super().__init__(f"remote op {op!r} failed: {error}")
        self.op = op
        self.error = error
        self.error_type = error_type
        #: Abort reason carried by transaction-level failures.
        self.reason = reason


# ---------------------------------------------------------------------------
# frame encoding (shared by sync and async paths)
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialise one message to its on-wire form (length header + JSON)."""
    body = json.dumps(payload, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise WireError(f"expected a JSON object frame, got {type(message).__name__}")
    return message


# ---------------------------------------------------------------------------
# asyncio side (node servers)
# ---------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader,
                     on_bytes: Callable[[int], None] | None = None) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a message boundary.

    ``on_bytes`` (when given) receives the frame's on-wire size — header
    included — for the node servers' byte accounting.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionLost("peer closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionLost("peer closed mid-frame") from exc
    if on_bytes is not None:
        on_bytes(_LEN.size + length)
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking side (drivers, inter-node clients)
# ---------------------------------------------------------------------------


def _recv_exactly(sock: socket.socket, length: int) -> bytes:
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionLost("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _PendingCall:
    """One in-flight pipelined request waiting for its response frame."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict | None = None
        self.error: Exception | None = None


class WireClient:
    """A blocking request/response client over one framed TCP connection.

    ``timeout`` bounds each socket operation (connect/send/recv), not a whole
    call — a slow but live peer keeps resetting the clock.  ``None`` means
    block forever (used by the test driver under the suite watchdog).

    :meth:`call` performs one round trip and unwraps the response envelope;
    :meth:`call_retrying` additionally survives peer restarts by reconnecting
    and resending — callers must only use it for idempotent ops (the live
    protocol makes the WAL append and certification ops idempotent via
    sequence numbers and transaction ids precisely so this is safe).

    With ``pipelined=True`` the client tags every request with a per-
    connection ``rid`` and many threads may call concurrently on the one
    connection: a background reader thread demultiplexes response frames to
    the waiting callers, so a second call does not have to wait for the
    first call's answer.  In pipelined mode ``timeout`` bounds the whole
    wait for the response (the peer batches requests, so per-socket-op
    timing is meaningless).  Send order on the wire equals the order
    callers entered the send critical section — the optional ``_on_send``
    hook of :meth:`call` runs inside that critical section so callers can
    latch the order (the replica uses it to register commit-gate tickets).
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0,
                 name: str = "client", pipelined: bool = False,
                 fallbacks: tuple[tuple[str, int], ...] = ()) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.name = name
        self.pipelined = pipelined
        #: Alternate peer addresses (a promoted standby).  ``call_retrying``
        #: rotates to the next address when a dial is refused — the current
        #: peer is gone, not merely slow — so a client survives its peer
        #: being replaced by a different process on a different port.
        self._addresses: list[tuple[str, int]] = [(host, port), *fallbacks]
        self._address_index = 0
        self._sock: socket.socket | None = None
        self.calls = 0
        #: Reconnects for any reason (including clean re-dials after an idle
        #: peer restart that did not interrupt a call).
        self.reconnects = 0
        #: Requests that had to be *resent* because the connection died after
        #: the request may already have reached the peer.  Kept separate from
        #: ``reconnects`` so exactly-once accounting can tell a clean re-dial
        #: from a potential duplicate delivery.
        self.resends = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Highest number of simultaneously in-flight pipelined calls.
        self.in_flight_high_water = 0
        # Pipelined-mode state.  Lock order: _send_lock -> _pending_lock.
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingCall] = {}
        self._rids = itertools.count(1)
        self._reader: threading.Thread | None = None

    # -- connection management ------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        with self._send_lock:
            self._connect_locked()

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.pipelined:
            # Blocking socket: the reader thread owns recv, senders own send;
            # the overall response wait is bounded by event.wait(timeout).
            sock.settimeout(None)
            self._sock = sock
            reader = threading.Thread(target=self._reader_loop, args=(sock,),
                                      name=f"wire-reader-{self.name}", daemon=True)
            self._reader = reader
            reader.start()
        else:
            self._sock = sock

    def close(self) -> None:
        with self._send_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        """Swap out and close the socket; caller holds ``_send_lock``.

        The socket swap must happen under the send lock or a concurrent
        sender can grab a socket that is being closed under it (and a
        concurrent ``_connect_locked`` can install a fresh socket that this
        close then throws away).  Split from :meth:`close` because the
        pipelined send path already holds the lock when it needs to drop a
        poisoned connection.
        """
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._fail_pending(ConnectionLost(
            f"connection to {self.host}:{self.port} closed"))

    def reconnect(self) -> None:
        self.close()
        self.reconnects += 1
        self.connect()

    def _fail_pending(self, error: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for call in pending:
            call.error = error
            call.event.set()

    # -- pipelined reader -----------------------------------------------------

    def _reader_loop(self, sock: socket.socket) -> None:
        try:
            while True:
                header = _recv_exactly(sock, _LEN.size)
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise FrameTooLarge(
                        f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
                response = decode_body(_recv_exactly(sock, length))
                with self._pending_lock:
                    self.frames_received += 1
                    self.bytes_received += _LEN.size + length
                    call = self._pending.pop(int(response.get("rid", -1)), None)
                if call is not None:
                    call.response = response
                    call.event.set()
                # An unknown rid belongs to a caller that timed out and
                # abandoned the slot; the frame is dropped.
        except (OSError, WireError, ValueError):
            # This connection is dead (peer crash or local close()); every
            # caller still waiting on it must re-dial and resend.  The swap
            # happens under the send lock so an in-progress sender never has
            # the socket yanked out from under its feet; only this reader's
            # own socket is cleared (a reconnect may already have installed
            # a fresh one, owned by a newer reader thread).
            with self._send_lock:
                if self._sock is sock:
                    self._sock = None
            try:
                sock.close()
            except OSError:
                pass
            self._fail_pending(ConnectionLost(
                f"connection to {self.host}:{self.port} lost"))

    # -- calls ----------------------------------------------------------------

    def call(self, op: str, *,
             _on_send: Callable[[], None] | None = None,
             **fields: object) -> dict:
        """One request/response round trip; raises on transport or remote error."""
        if self.pipelined:
            response = self._call_pipelined(op, fields, on_send=_on_send)
        else:
            response = self._call_sequential(op, fields, on_send=_on_send)
        self.calls += 1
        if not response.get("ok", False):
            raise RemoteCallError(
                op,
                str(response.get("error", "unknown remote error")),
                error_type=str(response.get("error_type", "error")),
                reason=response.get("reason"),
            )
        return response

    def _call_sequential(self, op: str, fields: dict,
                         on_send: Callable[[], None] | None = None) -> dict:
        request = {"op": op, **fields}
        try:
            self.connect()
        except OSError as exc:
            # Dial refused: nothing was sent, so a retry is not a resend.
            raise ConnectionLost(
                f"{op} to {self.host}:{self.port} failed: {exc}",
                request_sent=False) from exc
        try:
            sock = self._sock
            assert sock is not None
            frame = encode_frame(request)
            sock.sendall(frame)
            self.frames_sent += 1
            self.bytes_sent += len(frame)
            if on_send is not None:
                on_send()
            header = _recv_exactly(sock, _LEN.size)
            (length,) = _LEN.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
            response = decode_body(_recv_exactly(sock, length))
            self.frames_received += 1
            self.bytes_received += _LEN.size + length
        except (OSError, EOFError) as exc:
            # The connection is poisoned mid-exchange; drop it so the next
            # call starts clean.
            self.close()
            raise ConnectionLost(f"{op} to {self.host}:{self.port} failed: {exc}") from exc
        return response

    def _call_pipelined(self, op: str, fields: dict,
                        on_send: Callable[[], None] | None = None) -> dict:
        pending = _PendingCall()
        with self._send_lock:
            try:
                self._connect_locked()
            except OSError as exc:
                # Dial refused: nothing was sent, a retry is not a resend.
                raise ConnectionLost(
                    f"{op} to {self.host}:{self.port} failed: {exc}",
                    request_sent=False) from exc
            sock = self._sock
            assert sock is not None
            rid = next(self._rids)
            frame = encode_frame({"op": op, "rid": rid, **fields})
            with self._pending_lock:
                self._pending[rid] = pending
                in_flight = len(self._pending)
                if in_flight > self.in_flight_high_water:
                    self.in_flight_high_water = in_flight
            try:
                sock.sendall(frame)
            except OSError as exc:
                with self._pending_lock:
                    self._pending.pop(rid, None)
                self._close_locked()
                raise ConnectionLost(
                    f"{op} to {self.host}:{self.port} failed: {exc}") from exc
            self.frames_sent += 1
            self.bytes_sent += len(frame)
            if on_send is not None:
                on_send()
        if not pending.event.wait(self.timeout):
            # Scoped blast radius: abandon only this call's rid (a late
            # response frame is dropped by the reader's unknown-rid handling)
            # and leave the connection — and every other in-flight call on
            # it — alone.  A dead-vs-slow peer sorts itself out on retry:
            # the resend's sendall fails and closes the connection for real.
            with self._pending_lock:
                self._pending.pop(rid, None)
            raise CallTimedOut(
                f"{op} to {self.host}:{self.port} timed out after {self.timeout}s")
        if pending.error is not None:
            raise pending.error
        assert pending.response is not None
        return pending.response

    def call_retrying(self, op: str, *, deadline_s: float | None = None,
                      retry_interval_s: float = 0.2,
                      _on_send: Callable[[], None] | None = None,
                      **fields: object) -> dict:
        """Call, reconnecting and resending until it succeeds.

        Survives the peer being killed and restarted on the same port (the
        harness restarts nodes on their original port).  ``deadline_s`` of
        ``None`` retries forever — the per-test watchdog is the backstop, and
        a deliberately killed node is always restarted by the test choreography.
        """
        start = time.monotonic()
        attempt = 0
        while True:
            try:
                return self.call(op, _on_send=_on_send, **fields)
            except RemoteCallError as exc:
                if exc.error_type != "NotPromoted":
                    raise
                # A standby answered but is not serving yet.  The request was
                # refused without effect — wait for promotion and try again
                # (not a resend: refusal is a definitive non-delivery).
                attempt += 1
                if deadline_s is not None and time.monotonic() - start > deadline_s:
                    raise ConnectionLost(
                        f"{op} to {self.host}:{self.port}: standby never promoted"
                    ) from exc
                delay = min(retry_interval_s * min(attempt, 5), 1.0)
                time.sleep(delay * (0.5 + 0.5 * random.random()))
            except ConnectionLost as exc:
                attempt += 1
                if not isinstance(exc, CallTimedOut):
                    # The next call() re-dials from scratch.  A timed-out
                    # pipelined call skips this: its connection is still
                    # carrying other in-flight calls (see CallTimedOut).
                    self.close()
                    self.reconnects += 1
                if exc.request_sent:
                    # The request may already have reached the peer before
                    # the connection died, so the retry is a *resend*.  Dial
                    # refusals never sent anything — counting them here would
                    # inflate the maybe-duplicate accounting consumers like
                    # the remote WAL device build on.
                    self.resends += 1
                elif len(self._addresses) > 1:
                    # Dial refused: this peer is gone, not slow.  Rotate to
                    # the next known address (a standby scheduler) so the
                    # retry dials whoever is supposed to take over.
                    self._rotate_address()
                if deadline_s is not None and time.monotonic() - start > deadline_s:
                    raise
                # Jittered backoff: many clients losing the same peer (a
                # scheduler restart) must not re-dial in lockstep, or the
                # revived listener eats a synchronized thundering herd on
                # every retry tick.
                delay = min(retry_interval_s * min(attempt, 5), 1.0)
                time.sleep(delay * (0.5 + 0.5 * random.random()))

    def _rotate_address(self) -> None:
        with self._send_lock:
            if self._sock is not None:
                return  # a concurrent caller already reconnected somewhere
            self._address_index = (self._address_index + 1) % len(self._addresses)
            self.host, self.port = self._addresses[self._address_index]

    # -- observability --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "calls": self.calls,
            "reconnects": self.reconnects,
            "resends": self.resends,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "in_flight_high_water": self.in_flight_high_water,
        }

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "WireClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"WireClient({self.host}:{self.port}, {state}, calls={self.calls})"
