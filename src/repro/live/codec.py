"""JSON codecs for the middleware objects that cross live-cluster wires.

The live backend moves four object families between processes: writesets
(propagation and certification), certification requests/results (the
replica→scheduler hot path), commit outcomes (replica→client), and plain
row mappings (reads and equivalence dumps).  Each codec is a pure
``encode_x`` / ``decode_x`` pair over JSON-able dicts — no pickling, so a
node can be inspected with ``nc`` and a corrupted peer can never execute
code in another process.

Row keys are restricted to the JSON scalars the engine actually uses
(strings, ints, floats, bools); the workloads use strings and ints.  JSON
round-trips both without loss, which is what keeps the live backend's
decisions byte-comparable with the functional oracle's.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.certification import (
    CertificationDecision,
    CertificationRequest,
    CertificationResult,
    RemoteWriteSetInfo,
)
from repro.core.writeset import WriteItem, WriteOp, WriteSet
from repro.middleware.proxy import CommitOutcome

# -- writesets ---------------------------------------------------------------


def encode_writeset(writeset: WriteSet) -> list[dict]:
    return [
        {"t": item.table, "k": item.key, "o": item.op.value, "v": dict(item.values)}
        for item in writeset
    ]


def decode_writeset(items: list[dict]) -> WriteSet:
    writeset = WriteSet()
    for entry in items:
        writeset.add(WriteItem(
            table=entry["t"],
            key=entry["k"],
            op=WriteOp(entry["o"]),
            values=entry.get("v") or {},
        ))
    return writeset


# -- remote writeset infos ---------------------------------------------------


def encode_remote_info(info: RemoteWriteSetInfo) -> dict:
    return {
        "commit_version": info.commit_version,
        "writeset": encode_writeset(info.writeset),
        "origin_replica": info.origin_replica,
        "conflict_free_back_to": info.conflict_free_back_to,
    }


def decode_remote_info(payload: dict) -> RemoteWriteSetInfo:
    return RemoteWriteSetInfo(
        commit_version=payload["commit_version"],
        writeset=decode_writeset(payload["writeset"]),
        origin_replica=payload["origin_replica"],
        conflict_free_back_to=payload["conflict_free_back_to"],
    )


# -- certification requests / results ----------------------------------------


def encode_request(request: CertificationRequest) -> dict:
    return {
        "tx_start_version": request.tx_start_version,
        "writeset": encode_writeset(request.writeset),
        "replica_version": request.replica_version,
        "origin_replica": request.origin_replica,
        "check_remote_back_to": request.check_remote_back_to,
    }


def decode_request(payload: dict) -> CertificationRequest:
    return CertificationRequest(
        tx_start_version=payload["tx_start_version"],
        writeset=decode_writeset(payload["writeset"]),
        replica_version=payload["replica_version"],
        origin_replica=payload.get("origin_replica", ""),
        check_remote_back_to=payload.get("check_remote_back_to"),
    )


def encode_result(result: CertificationResult) -> dict:
    return {
        "decision": result.decision.value,
        "tx_commit_version": result.tx_commit_version,
        "remote_writesets": [encode_remote_info(i) for i in result.remote_writesets],
        "forced_abort": result.forced_abort,
        "conflicting_version": result.conflicting_version,
    }


def decode_result(payload: dict) -> CertificationResult:
    return CertificationResult(
        decision=CertificationDecision(payload["decision"]),
        tx_commit_version=payload["tx_commit_version"],
        remote_writesets=[decode_remote_info(i) for i in payload["remote_writesets"]],
        forced_abort=payload.get("forced_abort", False),
        conflicting_version=payload.get("conflicting_version"),
    )


# -- commit outcomes ---------------------------------------------------------


def encode_outcome(outcome: CommitOutcome) -> dict:
    return {
        "committed": outcome.committed,
        "readonly": outcome.readonly,
        "commit_version": outcome.commit_version,
        "abort_reason": outcome.abort_reason,
        "remote_writesets_applied": outcome.remote_writesets_applied,
        "replica_fsyncs": outcome.replica_fsyncs,
    }


def decode_outcome(payload: dict) -> CommitOutcome:
    return CommitOutcome(
        committed=payload["committed"],
        readonly=payload.get("readonly", False),
        commit_version=payload.get("commit_version"),
        abort_reason=payload.get("abort_reason"),
        remote_writesets_applied=payload.get("remote_writesets_applied", 0),
        replica_fsyncs=payload.get("replica_fsyncs", 0),
    )


# -- shard log entries (scheduler failover) ----------------------------------


def encode_shard_log_entry(entry: "ShardLogEntry") -> dict:
    """Encode one durable certification-round fragment for a shard WAL.

    In replicated-scheduler mode these JSON payloads — not opaque size
    markers — are what the shard WAL holds, so a standby can rebuild the
    certifier (decisions, versions, GC horizon, exactly-once tx table) from
    the shard processes alone.
    """
    return {
        "kind": entry.kind,
        "global_version": entry.global_version,
        "writeset": None if entry.writeset is None else encode_writeset(entry.writeset),
        "touched": list(entry.touched),
        "origin_replica": entry.origin_replica,
        "certified_back_to": entry.certified_back_to,
        "tx_id": entry.tx_id,
    }


def decode_shard_log_entry(payload: dict) -> "ShardLogEntry":
    from repro.consensus.sharded import ShardLogEntry

    writeset = payload.get("writeset")
    return ShardLogEntry(
        kind=payload["kind"],
        global_version=payload["global_version"],
        writeset=None if writeset is None else decode_writeset(writeset),
        touched=tuple(payload.get("touched", ())),
        origin_replica=payload.get("origin_replica", "unknown"),
        certified_back_to=payload.get("certified_back_to", 0),
        tx_id=payload.get("tx_id"),
    )


# -- state-transfer packages (standby seeding) --------------------------------


def encode_state_transfer(package: "StateTransferPackage") -> dict:
    """Encode a PR 6 `StateTransferPackage` so it can seed a live standby.

    The checksum is carried verbatim: writesets round-trip their item ids
    exactly through the writeset codec, so `validate()` on the decoded
    package recomputes the same digest — a corrupted transfer fails loudly
    on the standby.
    """
    return {
        "num_shards": package.num_shards,
        "horizon": package.horizon,
        "rounds": [
            [version, encode_writeset(writeset), origin, back_to]
            for version, writeset, origin, back_to in package.rounds
        ],
        "replica_versions": [[name, version]
                             for name, version in package.replica_versions],
        "checksum": package.checksum,
        "complete": package.complete,
    }


def decode_state_transfer(payload: dict) -> "StateTransferPackage":
    from repro.recovery.snapshots import StateTransferPackage

    return StateTransferPackage(
        num_shards=payload["num_shards"],
        horizon=payload["horizon"],
        rounds=tuple(
            (version, decode_writeset(items), origin, back_to)
            for version, items, origin, back_to in payload["rounds"]
        ),
        replica_versions=tuple(
            (name, version) for name, version in payload.get("replica_versions", ())
        ),
        checksum=payload.get("checksum", ""),
        complete=payload.get("complete", True),
    )


# -- row mappings ------------------------------------------------------------


def encode_row(row: Mapping[str, object] | None) -> dict | None:
    return None if row is None else dict(row)


def encode_table_state(state: dict[object, dict[str, object]]) -> list[list]:
    """Encode a ``Table.snapshot_state`` dump as ``[key, row]`` pairs.

    JSON objects key by strings only, and the workloads use integer row keys
    — a pair list round-trips the key type exactly, which the equivalence
    oracle depends on.
    """
    return [[key, dict(row)] for key, row in state.items()]


def decode_table_state(pairs: list[list]) -> dict[object, dict[str, object]]:
    return {key: row for key, row in pairs}
