"""File-backed WAL for live certifier-shard nodes, and its remote device.

A certifier-shard process owns one append-only WAL file.  The scheduler's
certifier service writes through a :class:`RemoteWalDevice` — a drop-in
:class:`~repro.engine.log_device.LogDevice` whose ``sync()`` ships the
pending payloads to the shard process, which appends them to the file,
``os.fsync``\\ s, and acknowledges.  The decision for a transaction is only
released once that acknowledgement arrives, so live commits are gated on a
real disk write in a different OS process — exactly the deployment shape of
the paper's certifier log.

Idempotent re-append
====================

A ``kill -9`` can land between the shard's fsync and its acknowledgement;
the scheduler then resends the batch to the restarted process.  Every sync
batch therefore carries a per-device monotonically increasing ``seq``, and
the WAL file records it with the batch: on restart the node replays the file
to find the highest applied ``seq`` and acknowledges (without re-writing)
any batch at or below it.  The file ends up with each batch exactly once no
matter where the kill landed — the invariant the crash tests assert.

File format: one JSON line per batch — ``{"seq": n, "payloads": [hex...]}``.
A torn final line (kill mid-write, before the fsync covering it) is
discarded on replay *and truncated away* before the file is reopened for
append; its batch was never acknowledged, so the scheduler still holds it
and will resend.  The truncation matters: appending after a stale torn
line would leave garbage mid-file that a *second* crash's replay stops at,
silently dropping every later batch and resetting ``last_seq`` so resent
duplicates are re-accepted.
"""

from __future__ import annotations

import binascii
import json
import os
import time
from pathlib import Path

from repro.live.wire import WireClient


class BatchWalFile:
    """The shard process's append-only, batch-sequenced WAL file."""

    def __init__(self, path: str | Path, *, fsync_floor_ms: float = 0.0) -> None:
        self.path = Path(path)
        #: Wall-clock floor on one ``append_batch`` (write + fsync).  Container
        #: filesystems complete fsync in ~0.1 ms; the floor emulates the
        #: paper's measured disk (~8 ms per fsync) so wall-clock benchmarks
        #: see the fsync-bound regime group commit exists to amortize.
        self.fsync_floor_ms = fsync_floor_ms
        self.last_seq = 0
        self.batches = 0
        self.records = 0
        self.duplicate_batches_skipped = 0
        self.torn_bytes_truncated = 0
        self._replay()
        self._file = open(self.path, "ab")

    def _replay(self) -> None:
        """Scan the existing file for the highest applied batch seq, and
        truncate any torn tail so new appends start at a clean line boundary.
        """
        if not self.path.exists():
            return
        good_end = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail: never acknowledged, will be resent
                try:
                    entry = json.loads(raw)
                except ValueError:
                    break
                good_end += len(raw)
                self.last_seq = max(self.last_seq, int(entry["seq"]))
                self.batches += 1
                self.records += len(entry["payloads"])
        torn = self.path.stat().st_size - good_end
        if torn > 0:
            # Reopening in append mode without this would bury the torn line
            # mid-file; a second crash's replay would stop there and silently
            # drop every batch appended after it.
            with open(self.path, "rb+") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            self._fsync_directory()
            self.torn_bytes_truncated = torn

    def _fsync_directory(self) -> None:
        """Persist the truncation's metadata (size) against a crash."""
        dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def append_batch(self, seq: int, payloads: list[bytes]) -> bool:
        """Durably append one batch; returns False when it was a duplicate."""
        if seq <= self.last_seq:
            self.duplicate_batches_skipped += 1
            return False  # no write happens, so no floor applies either
        started = time.perf_counter()
        entry = {"seq": seq, "payloads": [binascii.hexlify(p).decode() for p in payloads]}
        self._file.write(json.dumps(entry, separators=(",", ":")).encode() + b"\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        if self.fsync_floor_ms > 0:
            shortfall = self.fsync_floor_ms / 1000.0 - (time.perf_counter() - started)
            if shortfall > 0:
                time.sleep(shortfall)
        self.last_seq = seq
        self.batches += 1
        self.records += len(payloads)
        return True

    def stats(self) -> dict[str, int]:
        return {
            "last_seq": self.last_seq,
            "batches": self.batches,
            "records": self.records,
            "duplicate_batches_skipped": self.duplicate_batches_skipped,
            "torn_bytes_truncated": self.torn_bytes_truncated,
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    def close(self) -> None:
        self._file.close()


def read_wal_batches(path: str | Path) -> list[dict]:
    """Parse a shard WAL file into its applied batches (crash-test oracle)."""
    batches: list[dict] = []
    path = Path(path)
    if not path.exists():
        return batches
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break
            try:
                entry = json.loads(raw)
            except ValueError:
                break
            batches.append({
                "seq": int(entry["seq"]),
                "payloads": [binascii.unhexlify(p) for p in entry["payloads"]],
            })
    return batches


class RemoteWalDevice:
    """A :class:`LogDevice` whose syncs land on a certifier-shard process.

    ``append`` buffers payloads locally; ``sync`` ships them as one
    sequence-numbered batch and blocks until the shard process acknowledges
    the fsync.  A dead shard process stalls the sync in a reconnect/resend
    loop rather than failing it: the certifier has already admitted the
    transaction by the time it flushes, so giving up would strand a decision
    that is half-made.  The harness restarts killed nodes on their original
    port; the resend is deduplicated by ``seq`` on the other side.
    """

    def __init__(self, host: str, port: int, *, shard_id: int = 0,
                 attempt_timeout_s: float = 2.0, start_seq: int = 0) -> None:
        self.shard_id = shard_id
        self._client = WireClient(host, port, timeout=attempt_timeout_s,
                                  name=f"wal-{shard_id}")
        self._pending: list[bytes] = []
        #: First batch goes out as ``start_seq + 1``.  A promoted standby
        #: passes the shard's current ``last_seq`` here so its appends are
        #: not swallowed by the seq-dedupe protecting the dead primary's
        #: resends.
        self._seq = start_seq
        self._sync_count = 0
        self._bytes_written = 0
        self.resent_batches = 0
        #: Cumulative wall-clock seconds spent inside ``sync()`` — the shard
        #: round trip including its fsync.  Divide by ``sync_count`` for the
        #: per-flush durability latency the group-commit batcher amortises.
        self.sync_wait_s = 0.0

    # -- LogDevice interface --------------------------------------------------

    def append(self, payload: bytes) -> None:
        self._pending.append(payload)
        self._bytes_written += len(payload)

    def sync(self) -> None:
        started = time.perf_counter()
        self._seq += 1
        payloads = [binascii.hexlify(p).decode() for p in self._pending]
        # Count actual resends (a call retried after its frame may have
        # reached the shard), not clean reconnects of an idle connection.
        resends_before = self._client.resends
        self._client.call_retrying(
            "wal_append", seq=self._seq, payloads=payloads, deadline_s=None,
        )
        if self._client.resends > resends_before:
            self.resent_batches += 1
        self._pending.clear()
        self._sync_count += 1
        self.sync_wait_s += time.perf_counter() - started

    def wire_stats(self) -> dict[str, int | float]:
        return {"shard_id": self.shard_id,
                "sync_wait_s": round(self.sync_wait_s, 6),
                **self._client.stats()}

    @property
    def sync_count(self) -> int:
        return self._sync_count

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def close(self) -> None:
        self._client.close()
