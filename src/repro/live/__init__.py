"""Live multi-process backend: real nodes, real sockets, real fsyncs, kill -9.

The third executable form of the replicated system (functional | sim |
**live**): one OS process per certifier shard, scheduler and replica,
talking length-prefixed JSON over asyncio TCP, with commit durability gated
on ``os.fsync`` in a separate shard process.  See ``docs/deployment.md``.
"""

from repro.live.harness import HarnessError, NodeHandle, ProcessHarness, READY_PREFIX
from repro.live.wire import (
    ConnectionLost,
    FrameTooLarge,
    RemoteCallError,
    WireClient,
    WireError,
)

__all__ = [
    "READY_PREFIX",
    "ConnectionLost",
    "FrameTooLarge",
    "HarnessError",
    "NodeHandle",
    "ProcessHarness",
    "RemoteCallError",
    "WireClient",
    "WireError",
]


def __getattr__(name: str):
    # LiveCluster / LiveSession import middleware (and so the whole engine);
    # keep the package root importable by the node subprocesses without that
    # cost until someone actually asks for the driver objects.
    if name == "LiveCluster":
        from repro.live.cluster import LiveCluster

        return LiveCluster
    if name in ("LiveSession", "LiveCertifierClient", "CommitInDoubt"):
        from repro.live import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
