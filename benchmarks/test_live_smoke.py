"""Live-backend smoke benchmark: certs/sec and batch apply over real sockets.

Boots the real multi-process cluster (1 certifier shard + scheduler + 2
replicas over localhost TCP, every commit gated on an ``os.fsync`` in the
shard process) and measures two end-to-end rates:

* ``live_certs_per_sec`` — sequential update transactions through one
  client session: wire round trips + certification + durable WAL append.
* ``batch_apply_writesets_per_sec`` — a lagging replica refreshing a
  backlog of remote writesets in one bounded-staleness batch apply.

Emitted as ``BENCH_live.json`` and guarded very loosely by
``tools/check_bench_regression.py`` — these are wall-clock numbers on real
processes, so only an order-of-magnitude collapse (a lost batch path, an
accidental per-call reconnect, a sleep on the hot path) should fail CI.
"""

import json
import platform
import socket
import time
from functools import lru_cache
from pathlib import Path

import pytest

from repro.analysis.report import format_table
from repro.core.config import ReplicationConfig, SystemKind
from repro.live.cluster import LiveCluster
from repro.sim.rng import RandomStreams
from repro.workloads import workload_by_name

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_live.json"

COMMITS = 60
BACKLOG = 40


def _tcp_available() -> bool:
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
        return True
    except OSError:
        return False


@lru_cache(maxsize=None)
def _live_rows():
    workload = workload_by_name("allupdates", num_replicas=2)
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                               certifier_shards=1, rng_seed=1)
    with LiveCluster(config, workload.schemas()) as cluster:
        cluster.load_initial_data(workload)
        session = cluster.session("replica-0")
        rng = RandomStreams(1)

        started = time.perf_counter()
        for sequence in range(COMMITS):
            assert workload.run_transaction(session, rng, client_index=0,
                                            sequence=sequence)
        certify_elapsed = time.perf_counter() - started

        # Build a backlog replica-1 has not seen, then time one batch apply.
        for sequence in range(COMMITS, COMMITS + BACKLOG):
            assert workload.run_transaction(session, rng, client_index=0,
                                            sequence=sequence)
        started = time.perf_counter()
        applied = cluster._replica_call("replica-1", "refresh")["applied"]
        apply_elapsed = time.perf_counter() - started
        wal = cluster.shard_wal_stats(0)

    assert applied >= BACKLOG
    return [
        {"metric": "live_certs_per_sec",
         "value": round(COMMITS / certify_elapsed, 1),
         "transactions": COMMITS, "wal_fsync_batches": wal["batches"]},
        {"metric": "batch_apply_writesets_per_sec",
         "value": round(applied / apply_elapsed, 1),
         "writesets_applied": applied},
    ]


@pytest.mark.skipif(not _tcp_available(), reason="cannot bind localhost TCP")
def test_live_cluster_smoke_throughput(benchmark):
    rows = benchmark.pedantic(_live_rows, rounds=1, iterations=1)
    print()
    print("Live backend smoke: real processes, localhost TCP, durable WAL")
    print(format_table(list(rows[0].keys()), rows))

    payload = {
        "benchmark": "live_smoke",
        "python": platform.python_version(),
        "time_base": "wall-clock on live subprocesses (loosely guarded)",
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    by_metric = {row["metric"]: row for row in rows}
    # Loose wall-clock floors: catastrophic-collapse guards only.
    assert by_metric["live_certs_per_sec"]["value"] > 20.0
    assert by_metric["batch_apply_writesets_per_sec"]["value"] > 50.0
    assert by_metric["live_certs_per_sec"]["wal_fsync_batches"] >= COMMITS
