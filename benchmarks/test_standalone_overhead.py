"""Section 9.2 (text): replication middleware overhead at one replica.

The paper reports that a 1-replica Tashkent-MW system running the full
replication protocol stays within ~5% of a standalone database (517 vs 490
req/s shared IO; 515 vs 491 dedicated), i.e. the middleware itself adds no
significant overhead — the scalability differences come entirely from where
durability and ordering live.
"""

from functools import lru_cache

from conftest import MEASURE_MS, WARMUP_MS

from repro.analysis.report import format_table
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.core.config import SystemKind, WorkloadName


@lru_cache(maxsize=None)
def _single_replica_results():
    results = {}
    for system in (SystemKind.STANDALONE, SystemKind.TASHKENT_MW, SystemKind.BASE,
                   SystemKind.TASHKENT_API):
        for dedicated in (False, True):
            results[(system, dedicated)] = run_experiment(ExperimentConfig(
                system=system,
                workload=WorkloadName.ALL_UPDATES,
                num_replicas=1,
                dedicated_io=dedicated,
                warmup_ms=WARMUP_MS,
                measure_ms=max(MEASURE_MS, 2000.0),
            ))
    return results


def test_one_replica_tashkent_mw_matches_standalone(benchmark):
    results = benchmark.pedantic(_single_replica_results, rounds=1, iterations=1)
    rows = []
    for (system, dedicated), result in results.items():
        rows.append({
            "system": system.value,
            "io": "dedicated" if dedicated else "shared",
            "throughput_tps": round(result.throughput_tps, 1),
            "mean_response_ms": round(result.mean_response_ms, 1),
        })
    print()
    print("Section 9.2: standalone vs 1-replica systems (AllUpdates)")
    print(format_table(["system", "io", "throughput_tps", "mean_response_ms"], rows))

    for dedicated in (False, True):
        standalone = results[(SystemKind.STANDALONE, dedicated)].throughput_tps
        mw = results[(SystemKind.TASHKENT_MW, dedicated)].throughput_tps
        base = results[(SystemKind.BASE, dedicated)].throughput_tps
        # Paper: within ~5%; allow 12% slack for the shorter simulated window.
        assert mw >= 0.88 * standalone
        # Base at a single replica is already crippled by serial commits:
        # this is the paper's core observation in miniature.
        assert base < 0.5 * standalone
