"""Section 9.6: recovery times.

Reproduces the recovery-time table: Tashkent-MW needs periodic dumps (230 s
to take one, 140 s to restore) and writeset replay (~222 s per hour of down
time at 900 writesets/s), whereas Base / Tashkent-API databases recover with
their own WAL in a few seconds; the certifier recovers by transferring ~56 MB
of log per hour of down time (~1 s on the LAN).  The table is emitted as
``BENCH_recovery_times.json`` (deterministic model outputs, guarded by
``tools/check_bench_regression.py``), and the functional replay path is also
exercised end to end on real engine instances.
"""

import json
import platform
from functools import lru_cache
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.certification import CertificationRequest
from repro.core.writeset import make_writeset
from repro.engine.checkpoint import CheckpointStore
from repro.engine.database import Database
from repro.middleware.certifier import CertifierService
from repro.recovery.replica_recovery import recover_tashkent_mw_replica, replay_writesets_from_certifier
from repro.recovery.timings import RecoveryTimingModel

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_recovery_times.json"


@lru_cache(maxsize=None)
def _timing_rows():
    model = RecoveryTimingModel()
    rows = []
    for downtime_hours in (0.5, 1.0, 2.0):
        timings = model.timings(downtime_hours=downtime_hours)
        missed = model.writesets_missed(downtime_hours)
        rows.append({
            "downtime_h": downtime_hours,
            "mw_dump_s": round(timings.dump_seconds, 0),
            "mw_restore_s": round(timings.restore_seconds, 0),
            "base_wal_recovery_s": timings.wal_recovery_seconds,
            "writeset_replay_s": round(timings.writeset_replay_seconds, 0),
            "certifier_transfer_s": round(timings.certifier_transfer_seconds, 2),
            # The snapshot-plus-suffix decomposition: with no snapshot the
            # whole outage rides the retained suffix and the bootstrap time
            # equals the classic whole-log transfer above.
            "bootstrap_suffix_entries": missed,
            "certifier_bootstrap_s": round(
                model.certifier_bootstrap_seconds(0, missed), 2),
        })
    return rows


def test_section96_recovery_time_table(benchmark):
    rows = benchmark.pedantic(_timing_rows, rounds=1, iterations=1)
    print()
    print("Section 9.6: recovery times (TPC-W configuration, 15 replicas)")
    print(format_table(list(rows[0].keys()), rows))

    payload = {
        "benchmark": "recovery_times",
        "python": platform.python_version(),
        "time_base": "modeled (Section 9.6 calibration, deterministic)",
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    one_hour = next(row for row in rows if row["downtime_h"] == 1.0)
    assert abs(one_hour["mw_dump_s"] - 230) <= 5
    assert abs(one_hour["mw_restore_s"] - 140) <= 5
    assert 2 <= one_hour["base_wal_recovery_s"] <= 4
    assert abs(one_hour["writeset_replay_s"] - 222) <= 15
    assert one_hour["certifier_transfer_s"] <= 3.0
    assert one_hour["certifier_bootstrap_s"] == one_hour["certifier_transfer_s"]


def test_functional_writeset_replay_throughput(benchmark):
    """Measure the real engine's writeset replay rate on a recovery path."""
    certifier = CertifierService()
    for i in range(400):
        certifier.certify(CertificationRequest(
            tx_start_version=i,
            writeset=make_writeset([("accounts", i % 50)]),
            replica_version=i,
        ))

    def recover():
        db = Database("replica", synchronous_commit=False)
        db.create_table("accounts", ["id"])
        store = CheckpointStore()
        store.add(db.dump())
        report = recover_tashkent_mw_replica(store, certifier.log)
        return report

    report = benchmark(recover)
    assert report.writesets_replayed == 400
    assert report.final_version == certifier.system_version
