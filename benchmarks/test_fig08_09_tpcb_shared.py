"""Figures 8 and 9: TPC-B throughput and response time, shared IO.

Paper reference: the ordering Tashkent-MW > tashAPInoCERT > Tashkent-API >
Base, with Tashkent-MW ≈ 2.6x and Tashkent-API ≈ 1.3x Base at 15 replicas.
TPC-B has real reads, genuine write-write conflicts, and — unlike
AllUpdates — artificial conflicts among remote writesets that force
Tashkent-API to serialise some commits.
"""

from conftest import cached_sweep, largest_replica_count

from repro.analysis.report import render_figure
from repro.analysis.results import summarize_sweep
from repro.core.config import SystemKind, WorkloadName


def _sweep():
    return cached_sweep(WorkloadName.TPC_B, dedicated_io=False)


def test_fig08_tpcb_shared_throughput(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="throughput",
                        title="Figure 8: TPC-B throughput (shared IO)"))
    summary = summarize_sweep(sweep, num_replicas=largest_replica_count())
    print(f"speedups over Base: MW {summary.mw_speedup:.1f}x (paper ~2.6x), "
          f"API {summary.api_speedup:.1f}x (paper ~1.3x)")
    # Ordering of the curves matches the paper; exact factors depend on the
    # conflict profile (see EXPERIMENTS.md for the deviation discussion).
    assert summary.mw_speedup > 1.8
    assert summary.api_speedup > 1.1
    assert summary.tashkent_mw_tps > summary.tashkent_api_tps > summary.base_tps


def test_fig09_tpcb_shared_response_time(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="response",
                        title="Figure 9: TPC-B response time (shared IO)"))
    n = largest_replica_count()
    base = dict(sweep.response_series(SystemKind.BASE))
    mw = dict(sweep.response_series(SystemKind.TASHKENT_MW))
    api = dict(sweep.response_series(SystemKind.TASHKENT_API))
    assert mw[n] < api[n] < base[n]
    # Response times rise steadily with the replica count (writeset apply cost).
    mw_series = [value for _, value in sweep.response_series(SystemKind.TASHKENT_MW)]
    assert mw_series[-1] >= mw_series[0]
