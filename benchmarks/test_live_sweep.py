"""Live-backend sweep: group certification vs the single-in-flight baseline.

Boots the real multi-process cluster (certifier shards + scheduler + 4
replicas over localhost TCP) once per configuration and drives the
AllUpdates workload with concurrent closed-loop clients, sweeping:

* **clients** — the concurrency the batcher can harvest;
* **mode** — ``serialized`` (``live_pipeline=False``: the strict
  one-in-flight read→reply→read wire protocol, one certification and one
  WAL fsync per commit) vs ``batched`` (multiplexed framing, concurrent
  dispatch and scheduler-side group certification);
* **shards** — certifier shards sharing the batch round's fsyncs;
* **batch window / flush cap** — the batcher's time and size bounds.

Disk model
==========

Every configuration runs with the shard WAL's ``fsync_floor_ms`` set to the
paper's measured disk ("On our system fsync takes about 8ms"): container
filesystems acknowledge ``os.fsync`` in ~0.1 ms, which makes durability
free and would hide the fsync amortization this sweep exists to measure.
Both modes pay the same floor, so the speedup compares protocols, not
disks.  Two extra ``fast-disk`` legs run with the floor at 0 (raw
container fsync) to record the crossover: when durability costs nothing,
the 1-CPU runner is compute-bound and batching buys little — exactly the
paper's argument in reverse.

Emitted as ``BENCH_live_sweep.json``.  ``tools/check_bench_regression.py``
guards the batched-vs-serialized speedup at 16 clients against an absolute
floor (≥3x) and the batched fsyncs-per-commit against 1.0, plus the usual
loose wall-clock drift guards.
"""

import json
import platform
import socket
import time
from pathlib import Path

import pytest

from conftest import LIVE_CLIENT_COUNTS, LIVE_FSYNC_FLOOR_MS, LIVE_TX_PER_CLIENT
from repro.analysis.report import format_table
from repro.core.config import ReplicationConfig, SystemKind
from repro.live.cluster import LiveCluster
from repro.recovery.timings import RecoveryTimingModel
from repro.sim.rng import RandomStreams
from repro.workloads import workload_by_name

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_live_sweep.json"

NUM_REPLICAS = 4
#: The acceptance point: batched must beat serialized by at least this
#: factor at the largest client count (asserted here and guarded in CI).
SPEEDUP_FLOOR = 3.0


def _tcp_available() -> bool:
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
        return True
    except OSError:
        return False


def _run_leg(*, mode: str, clients: int, shards: int = 1,
             window_ms: float = 0.0, batch_max: int = 64,
             fsync_floor_ms: float = LIVE_FSYNC_FLOOR_MS) -> dict:
    """Boot one cluster configuration and measure one closed-loop run."""
    serialized = mode == "serialized"
    # The serialized baseline commits one fsync-bound transaction at a
    # time; shrink its per-client count so one leg stays a few seconds.
    tx_per_client = max(LIVE_TX_PER_CLIENT // (3 if serialized else 1), 5)
    config = ReplicationConfig(
        system=SystemKind.TASHKENT_MW,
        num_replicas=NUM_REPLICAS,
        certifier_shards=shards,
        rng_seed=7,
        live_pipeline=not serialized,
        live_certify_batch_window_ms=window_ms,
        live_certify_batch_max=batch_max,
        live_wal_fsync_floor_ms=fsync_floor_ms,
    )
    workload = workload_by_name("allupdates", num_replicas=NUM_REPLICAS)
    with LiveCluster(config, workload.schemas()) as cluster:
        cluster.load_initial_data(workload)
        cluster.refresh_all()
        cluster.run_workload(workload, clients=clients,
                             transactions_per_client=3)  # warmup
        run = cluster.run_workload(workload, clients=clients,
                                   transactions_per_client=tx_per_client)
    batching = run["scheduler_stats"].get("certify_batching", {})
    return {
        "mode": mode,
        "clients": clients,
        "shards": shards,
        "window_ms": window_ms,
        "batch_max": batch_max,
        "fsync_floor_ms": fsync_floor_ms,
        "commits": run["commits"],
        "aborts": run["aborts"],
        "certs_per_sec": round(run["certs_per_sec"], 1),
        "fsyncs_per_commit": round(run["fsyncs_per_commit"], 3),
        "avg_round_size": round(batching.get("average_round_size", 1.0), 2),
    }


def _run_failover_leg(*, transactions: int = 12) -> dict:
    """Measure the scheduler failover window on a standby-equipped cluster.

    Drives a short sequential run, ``kill -9``s the primary scheduler
    between transactions, promotes the standby (WAL rebuild + device swap)
    and times kill → first successful post-failover commit.  The window is
    decomposed against the recovery timing model's state-transfer term
    (``certifier_bootstrap_seconds`` over the rebuilt round count): the
    remainder is promotion choreography — wal_read round trips, the
    in-memory rebuild, and the replicas' re-dial to the standby.
    """
    config = ReplicationConfig(
        system=SystemKind.TASHKENT_MW,
        num_replicas=2,
        certifier_shards=1,
        rng_seed=7,
        live_scheduler_standby=True,
        live_wal_fsync_floor_ms=LIVE_FSYNC_FLOOR_MS,
    )
    workload = workload_by_name("allupdates", num_replicas=2)
    with LiveCluster(config, workload.schemas()) as cluster:
        cluster.load_initial_data(workload)
        cluster.refresh_all()
        sessions = [cluster.session(name) for name in cluster.replicas]
        rng = RandomStreams(7)
        for sequence in range(transactions):
            assert workload.run_transaction(
                sessions[sequence % 2], rng,
                client_index=sequence % 2, sequence=sequence)
        cluster.kill_scheduler()
        killed = time.perf_counter()
        report = cluster.promote_standby()
        promoted = time.perf_counter()
        assert workload.run_transaction(sessions[0], rng, client_index=0,
                                        sequence=transactions)
        first_commit = time.perf_counter()
        for session in sessions:
            session.close()
    rounds = int(report["rounds_recovered"])
    calibrated_ms = RecoveryTimingModel().certifier_bootstrap_seconds(
        0, rounds) * 1000.0
    return {
        "transactions": transactions,
        "rounds_recovered": rounds,
        "failover_window_ms": round((first_commit - killed) * 1000.0, 3),
        "promote_ms": round((promoted - killed) * 1000.0, 3),
        "promotion_rebuild_ms": float(report["promotion_ms"]),
        "calibrated_state_transfer_ms": round(calibrated_ms, 6),
    }


@pytest.mark.skipif(not _tcp_available(), reason="cannot bind localhost TCP")
def test_live_sweep(benchmark):
    def sweep() -> list[dict]:
        rows: list[dict] = []
        # Headline axis: clients × mode under the paper's disk model.
        for clients in LIVE_CLIENT_COUNTS:
            rows.append(_run_leg(mode="serialized", clients=clients))
            rows.append(_run_leg(mode="batched", clients=clients))
        top = max(LIVE_CLIENT_COUNTS)
        # Secondary axes at the largest client count, batched only.
        rows.append(_run_leg(mode="batched", clients=top, shards=2))
        rows.append(_run_leg(mode="batched", clients=top, window_ms=4.0))
        rows.append(_run_leg(mode="batched", clients=top, batch_max=8))
        # Fast-disk crossover: raw container fsync, durability ~free.
        rows.append(_run_leg(mode="serialized", clients=top, fsync_floor_ms=0.0))
        rows.append(_run_leg(mode="batched", clients=top, fsync_floor_ms=0.0))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Live sweep: real processes, localhost TCP, "
          f"emulated {LIVE_FSYNC_FLOOR_MS:g}ms-fsync disk")
    print(format_table(list(rows[0].keys()), rows))

    def leg(mode: str, clients: int, **overrides) -> dict:
        want = {"shards": 1, "window_ms": 0.0, "batch_max": 64,
                "fsync_floor_ms": LIVE_FSYNC_FLOOR_MS, **overrides}
        for row in rows:
            if row["mode"] == mode and row["clients"] == clients and all(
                    row[k] == v for k, v in want.items()):
                return row
        raise AssertionError(f"missing sweep leg {mode}/{clients}/{want}")

    top = max(LIVE_CLIENT_COUNTS)
    summary = []
    for clients in LIVE_CLIENT_COUNTS:
        serialized = leg("serialized", clients)
        batched = leg("batched", clients)
        summary.append({
            "metric": f"speedup_batched_vs_serialized_{clients}_clients",
            "value": round(batched["certs_per_sec"]
                           / serialized["certs_per_sec"], 2),
        })
    summary.append({
        "metric": f"batched_fsyncs_per_commit_{top}_clients",
        "value": leg("batched", top)["fsyncs_per_commit"],
    })
    # Failover window: kill -9 the primary scheduler, promote the standby,
    # commit again.  The model's state-transfer term is microseconds at this
    # log size; the measured window is dominated by promotion choreography
    # and guarded against the calibrated absolute ceiling in CI.
    failover = _run_failover_leg()
    summary.append({
        "metric": "live_failover_window_ms",
        "value": failover["failover_window_ms"],
    })
    print(format_table(["metric", "value"], summary))
    print(format_table(list(failover.keys()), [failover]))

    payload = {
        "benchmark": "live_sweep",
        "python": platform.python_version(),
        "time_base": "wall-clock on live subprocesses; both modes pay the "
                     f"same emulated {LIVE_FSYNC_FLOOR_MS:g}ms fsync floor",
        "results": rows,
        "summary": summary,
        "failover": failover,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    by_metric = {row["metric"]: row["value"] for row in summary}
    # The acceptance point: group certification must beat the
    # single-in-flight baseline ≥3x at the top client count, and more than
    # one committed transaction must share each durable WAL write.
    assert by_metric[f"speedup_batched_vs_serialized_{top}_clients"] >= SPEEDUP_FLOOR
    assert by_metric[f"batched_fsyncs_per_commit_{top}_clients"] < 1.0
    # Serialized is the definitional baseline: exactly one fsync per commit.
    assert leg("serialized", top)["fsyncs_per_commit"] >= 1.0
    # Failover sanity: the live window cannot beat the modeled state
    # transfer it contains, and must stay under the CI acceptance ceiling.
    assert failover["failover_window_ms"] >= failover["calibrated_state_transfer_ms"]
    assert failover["failover_window_ms"] <= 5000.0
