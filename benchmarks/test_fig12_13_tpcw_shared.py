"""Figures 12 and 13: TPC-W shopping mix, shared IO.

Paper reference: with only 20% updates (≈ 48 updates/s system-wide at the
maximum of ~240 tps) there is no commit-grouping opportunity, so Tashkent-API
matches Base; Tashkent-MW is still better because Base and Tashkent-API
suffer "significantly higher critical path fsync delays due to non-logging
IO congestion" on the shared channel.  Read-only response times are similar
for all systems; update response times are much higher for Base and
Tashkent-API than for Tashkent-MW.
"""

from conftest import MEASURE_MS, WARMUP_MS, REPLICA_COUNTS, largest_replica_count

from repro.analysis.report import render_figure
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.cluster.sweeps import run_replica_sweep
from repro.core.config import SystemKind, WorkloadName
from functools import lru_cache

SYSTEMS = (SystemKind.BASE, SystemKind.TASHKENT_MW, SystemKind.TASHKENT_API)


@lru_cache(maxsize=None)
def _sweep():
    return run_replica_sweep(
        WorkloadName.TPC_W,
        systems=SYSTEMS,
        replica_counts=REPLICA_COUNTS,
        dedicated_io=False,
        warmup_ms=WARMUP_MS,
        measure_ms=max(MEASURE_MS, 2000.0),
    )


def test_fig12_tpcw_shared_throughput(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="throughput",
                        title="Figure 12: TPC-W shopping mix throughput (shared IO)"))
    n = largest_replica_count()
    base = dict(sweep.throughput_series(SystemKind.BASE))[n]
    mw = dict(sweep.throughput_series(SystemKind.TASHKENT_MW))[n]
    api = dict(sweep.throughput_series(SystemKind.TASHKENT_API))[n]
    print(f"at {n} replicas: base={base:.0f} tashAPI={api:.0f} tashMW={mw:.0f} tps")
    # Tashkent-API brings no benefit at this low update rate...
    assert abs(api - base) / base < 0.35
    # ...but Tashkent-MW still wins because its replicas do not log at all.
    assert mw > 1.1 * base


def test_fig13_tpcw_shared_response_times(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    n = largest_replica_count()
    rows = []
    for system in SYSTEMS:
        point = next(p for p in sweep.curve(system) if p.num_replicas == n)
        rows.append({
            "system": system.value,
            "readonly_ms": round(point.result.readonly_response_ms, 1),
            "update_ms": round(point.result.update_response_ms, 1),
        })
    print()
    print("Figure 13: TPC-W response times by transaction class "
          f"({n} replicas, shared IO)")
    for row in rows:
        print(f"  {row['system']:>14s}  read-only {row['readonly_ms']:>8.1f} ms   "
              f"update {row['update_ms']:>8.1f} ms")
    by_system = {row["system"]: row for row in rows}
    # Read-only transactions are handled identically everywhere: similar times.
    readonly = [row["readonly_ms"] for row in rows]
    assert max(readonly) < 3.0 * min(readonly)
    # Update transactions are far slower on the systems that log at replicas.
    assert by_system["base"]["update_ms"] > 1.5 * by_system["tashkent-mw"]["update_ms"]
    assert by_system["tashkent-api"]["update_ms"] > 1.5 * by_system["tashkent-mw"]["update_ms"]
