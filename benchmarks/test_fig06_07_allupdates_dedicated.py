"""Figures 6 and 7: AllUpdates throughput and response time, dedicated IO.

With the database in ramdisk the logging channel is dedicated; all curves
move up slightly (AllUpdates runs essentially from memory, so the effect is
minor) and the relative behaviour is unchanged: Tashkent-MW ≈ 5.0x and
Tashkent-API ≈ 3.2x Base at 15 replicas.  Figure 7's signature detail is
Base's response time stepping from ~90 ms at one replica to ~180 ms at two.
"""

from conftest import cached_sweep, largest_replica_count

from repro.analysis.report import render_figure
from repro.analysis.results import summarize_sweep
from repro.core.config import SystemKind, WorkloadName


def _sweep():
    return cached_sweep(WorkloadName.ALL_UPDATES, dedicated_io=True)


def test_fig06_allupdates_dedicated_throughput(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="throughput",
                        title="Figure 6: AllUpdates throughput (dedicated IO)"))
    summary = summarize_sweep(sweep, num_replicas=largest_replica_count())
    print(f"speedups over Base: MW {summary.mw_speedup:.1f}x (paper ~5.0x), "
          f"API {summary.api_speedup:.1f}x (paper ~3.2x)")
    assert summary.mw_speedup > 3.5
    assert summary.api_speedup > 2.0
    # Dedicated IO never hurts relative to shared IO for the same system.
    shared = cached_sweep(WorkloadName.ALL_UPDATES, dedicated_io=False)
    for system in (SystemKind.BASE, SystemKind.TASHKENT_API):
        assert sweep.max_throughput(system) >= 0.9 * shared.max_throughput(system)


def test_fig07_allupdates_dedicated_response_time(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="response",
                        title="Figure 7: AllUpdates response time (dedicated IO)"))
    base = dict(sweep.response_series(SystemKind.BASE))
    # ~90 ms at one replica (10 clients x one fsync each), roughly doubling
    # once the grouped remote writesets add a second fsync per commit.
    assert 60 <= base[1] <= 130
    largest = largest_replica_count()
    assert base[largest] > 1.6 * base[1]
    mw = dict(sweep.response_series(SystemKind.TASHKENT_MW))
    assert mw[largest] < 0.5 * base[largest]
