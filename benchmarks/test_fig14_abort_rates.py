"""Figure 14: certifier goodput under forced abort rates (dedicated IO).

The certifier randomly aborts 0% / 20% / 40% of requests *after* the full
certification check (so all computational overhead is still paid).  The
paper's point: even under exaggerated abort rates the Tashkent systems keep
a large goodput advantage over Base.
"""

from functools import lru_cache

from conftest import MEASURE_MS, WARMUP_MS, largest_replica_count

from repro.analysis.report import format_table
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.core.config import SystemKind, WorkloadName

ABORT_RATES = (0.0, 0.2, 0.4)
SYSTEMS = (SystemKind.BASE, SystemKind.TASHKENT_API, SystemKind.TASHKENT_MW)


@lru_cache(maxsize=None)
def _goodput_grid():
    replicas = largest_replica_count()
    grid = {}
    for system in SYSTEMS:
        for rate in ABORT_RATES:
            result = run_experiment(ExperimentConfig(
                system=system,
                workload=WorkloadName.ALL_UPDATES,
                num_replicas=replicas,
                dedicated_io=True,
                forced_abort_rate=rate,
                warmup_ms=WARMUP_MS,
                measure_ms=MEASURE_MS,
            ))
            grid[(system, rate)] = result
    return grid


def test_fig14_goodput_under_forced_abort_rates(benchmark):
    grid = benchmark.pedantic(_goodput_grid, rounds=1, iterations=1)
    rows = []
    for system in SYSTEMS:
        row = {"system": system.value}
        for rate in ABORT_RATES:
            result = grid[(system, rate)]
            row[f"goodput@{int(rate * 100)}%"] = round(result.goodput_tps, 1)
        rows.append(row)
    print()
    print("Figure 14: certifier goodput under forced abort rates (dedicated IO, "
          f"{largest_replica_count()} replicas)")
    print(format_table(["system"] + [f"goodput@{int(r * 100)}%" for r in ABORT_RATES], rows))

    # Goodput decreases as the forced abort rate rises...
    for system in SYSTEMS:
        goodputs = [grid[(system, rate)].goodput_tps for rate in ABORT_RATES]
        assert goodputs[0] > goodputs[1] > goodputs[2]
    # ...and the observed abort rates track the injected ones.
    for system in SYSTEMS:
        assert abs(grid[(system, 0.4)].abort_rate - 0.4) < 0.1
    # Even at 40% forced aborts both Tashkent systems stay well above Base.
    for rate in ABORT_RATES:
        base = grid[(SystemKind.BASE, rate)].goodput_tps
        assert grid[(SystemKind.TASHKENT_MW, rate)].goodput_tps > 2.0 * base
        assert grid[(SystemKind.TASHKENT_API, rate)].goodput_tps > 1.5 * base
