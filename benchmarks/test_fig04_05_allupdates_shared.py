"""Figures 4 and 5: AllUpdates throughput and response time, shared IO.

Paper reference points at 15 replicas: Base ≈ 735 req/s (≈ 49 per replica,
fsync-bound), Tashkent-MW ≈ 3657 req/s (5.0x Base), Tashkent-API ≈ 2240
req/s (3.0x Base), tashAPInoCERT ≈ 2901 req/s; Base response time roughly
doubles between one and two replicas.
"""

from conftest import FIGURE_SYSTEMS, cached_sweep, largest_replica_count

from repro.analysis.report import render_figure
from repro.analysis.results import summarize_sweep
from repro.core.config import SystemKind, WorkloadName


def _sweep():
    return cached_sweep(WorkloadName.ALL_UPDATES, dedicated_io=False)


def test_fig04_allupdates_shared_throughput(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="throughput",
                        title="Figure 4: AllUpdates throughput (shared IO)"))
    summary = summarize_sweep(sweep, num_replicas=largest_replica_count())
    print(f"speedups over Base at {summary.num_replicas} replicas: "
          f"Tashkent-MW {summary.mw_speedup:.1f}x (paper ~5.0x), "
          f"Tashkent-API {summary.api_speedup:.1f}x (paper ~3.0x)")
    # Shape assertions: the Tashkent systems greatly outperform Base.
    assert summary.mw_speedup > 3.0
    assert summary.api_speedup > 2.0
    assert summary.mw_speedup > summary.api_speedup
    # Base grows roughly linearly with the number of replicas (fsync bound).
    base = sweep.throughput_series(SystemKind.BASE)
    per_replica = [tps / n for n, tps in base if n > 1]
    assert all(30 <= rate <= 80 for rate in per_replica)


def test_fig05_allupdates_shared_response_time(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="response",
                        title="Figure 5: AllUpdates response time (shared IO)"))
    n = largest_replica_count()
    base = dict(sweep.response_series(SystemKind.BASE))
    mw = dict(sweep.response_series(SystemKind.TASHKENT_MW))
    api = dict(sweep.response_series(SystemKind.TASHKENT_API))
    # The Tashkent systems also provide lower response times (paper abstract).
    assert mw[n] < base[n]
    assert api[n] < base[n]
    # Base's response time jumps once remote writesets appear (1 -> many replicas).
    assert base[n] > 1.5 * base[1]
