"""Section 9.3 (text): artificial conflicts between remote writeset groups.

The paper measures that 35% of remote writeset groups in TPC-B artificially
conflict, which is why Tashkent-API must serialise some commits and loses
part of its grouping benefit.  This bench measures the rate produced by our
TPC-B generator and shows it is essentially zero for AllUpdates (whose
writesets never overlap).
"""

from functools import lru_cache

from conftest import MEASURE_MS, WARMUP_MS, largest_replica_count

from repro.analysis.report import format_table
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.core.config import SystemKind, WorkloadName


@lru_cache(maxsize=None)
def _api_results():
    replicas = largest_replica_count()
    results = {}
    for workload in (WorkloadName.ALL_UPDATES, WorkloadName.TPC_B):
        results[workload] = run_experiment(ExperimentConfig(
            system=SystemKind.TASHKENT_API,
            workload=workload,
            num_replicas=replicas,
            dedicated_io=True,
            warmup_ms=WARMUP_MS,
            measure_ms=MEASURE_MS,
        ))
    return results


def test_artificial_conflict_rate_by_workload(benchmark):
    results = benchmark.pedantic(_api_results, rounds=1, iterations=1)
    rows = []
    for workload, result in results.items():
        rows.append({
            "workload": workload.value,
            "artificial_conflict_rate": round(result.artificial_conflict_rate, 3),
            "serialization_points": int(result.utilization.get("serialization_points", 0)),
            "remote_groups": int(result.utilization.get("remote_groups_planned", 0)),
            "throughput_tps": round(result.throughput_tps, 1),
        })
    print()
    print("Section 9.3: artificial conflicts between remote writeset groups "
          "(Tashkent-API, paper reports 35% for TPC-B)")
    print(format_table(list(rows[0].keys()), rows))

    allupdates = results[WorkloadName.ALL_UPDATES]
    tpcb = results[WorkloadName.TPC_B]
    # AllUpdates writesets never overlap: no artificial conflicts at all.
    assert allupdates.artificial_conflict_rate == 0.0
    # TPC-B's hot branch rows produce a non-zero artificial conflict rate
    # that forces extra serialisation points.  The absolute rate is well
    # below the paper's 35% because our uniform-branch generator trades
    # artificial-conflict frequency for a realistic (low) abort rate; see
    # EXPERIMENTS.md for the discussion.
    assert tpcb.artificial_conflict_rate > 0.01
    assert tpcb.utilization["serialization_points"] > 0
