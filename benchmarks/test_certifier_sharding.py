"""Certifier-sharding benchmark: certifications/sec vs shard count.

The certifier is the one component every update transaction in the cluster
serializes through.  With a bounded fsync group (a real log buffer cannot
absorb an unbounded backlog into one synchronous write) a single log device
saturates at roughly ``flush_cap / fsync_time`` certifications per second;
the sharded certifier gives each shard its own log device, so single-shard
transactions scale that ceiling with the shard count, while cross-shard
transactions pay the merge: a log record on *every* touched shard, release
only after the slowest touched flush, and certification CPU per fragment.

This benchmark drives the simulated certifier nodes directly (no replicas —
the replica-side pipeline is measured by ``test_propagation_batching.py``)
with closed-loop clients issuing 2-item writesets:

* a **single-shard** transaction draws both items from one shard's key pool;
* a **cross-shard** transaction draws one item from each of two shards.

The ``cross_ratio`` axis (0%, 10%, 50% by default) sets the mix.  Results —
all in deterministic *simulated* time — land in
``BENCH_certifier_shards.json``; the documented crossover is visible in the
``speedup_vs_single`` column: the win shrinks as the cross-shard ratio grows
because every cross-shard transaction occupies two flush pipelines.

Acceptance (ISSUE 4): at 4 shards under a 0%-cross-shard workload the
certifier must clear at least 2x the certifications/sec of ``shards=1``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Generator

from conftest import (
    SHARD_CLIENTS,
    SHARD_COUNTS,
    SHARD_CROSS_RATIOS,
    SHARD_FLUSH_CAP,
    SHARD_MEASURE_MS,
    SHARD_WARMUP_MS,
)

from repro.analysis.report import format_table
from repro.cluster.nodes import SimCertifierNode, SimShardedCertifierNode
from repro.core.certification import CertificationRequest
from repro.core.config import ReplicationConfig, SystemKind
from repro.core.sharding import HashPartitioner
from repro.core.writeset import make_writeset
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_certifier_shards.json"

#: Acceptance floor: certifications/sec at 4 shards / 0% cross-shard must be
#: at least this multiple of the single-certifier baseline.
SPEEDUP_FLOOR = 2.0
ACCEPTANCE_SHARDS = 4

#: Distinct keys per shard pool (large, so write-write conflicts are rare and
#: the measurement isolates the durability pipeline, not the abort rate).
POOL_KEYS_PER_SHARD = 4000
ITEMS_PER_WRITESET = 2


def _key_pools(num_shards: int) -> list[list[int]]:
    """Per-shard key pools under the certifier's own stable partitioner."""
    partitioner = HashPartitioner(num_shards)
    pools: list[list[int]] = [[] for _ in range(num_shards)]
    key = 0
    while min(len(pool) for pool in pools) < POOL_KEYS_PER_SHARD:
        pools[partitioner.shard_of(("t", key))].append(key)
        key += 1
    return pools


def _client(env: Environment, node, rng, pools: list[list[int]],
            cross_ratio: float, counters: dict, window: tuple[float, float]) -> Generator:
    num_shards = len(pools)
    warmup_end, _run_end = window
    while True:
        if num_shards > 1 and rng.random() < cross_ratio:
            first, second = rng.sample(range(num_shards), 2)
            entries = [("t", rng.choice(pools[first])),
                       ("t", rng.choice(pools[second]))]
        else:
            shard = rng.randrange(num_shards)
            pool = pools[shard]
            entries = [("t", rng.choice(pool)) for _ in range(ITEMS_PER_WRITESET)]
        version = node.certifier.system_version.version
        request = CertificationRequest(
            tx_start_version=version,
            writeset=make_writeset(entries),
            replica_version=version,
            origin_replica="replica-0",
        )
        started = env.now
        result = yield from node.certify(request)
        if env.now >= warmup_end:
            counters["commits" if result.committed else "aborts"] += 1
            counters["latency_ms_total"] += env.now - started
            counters["latency_samples"] += 1


def _run_point(shards: int, cross_ratio: float) -> dict:
    env = Environment()
    rng_streams = RandomStreams(20060418)
    config = ReplicationConfig(
        system=SystemKind.TASHKENT_MW,
        num_replicas=1,
        certifier_shards=shards,
        certifier_max_flush_batch=SHARD_FLUSH_CAP,
    )
    node_cls = SimShardedCertifierNode if shards > 1 else SimCertifierNode
    node = node_cls(env, config, rng_streams, durability_enabled=True)
    pools = _key_pools(shards)
    run_end = SHARD_WARMUP_MS + SHARD_MEASURE_MS
    counters = {"commits": 0, "aborts": 0,
                "latency_ms_total": 0.0, "latency_samples": 0}
    for index in range(SHARD_CLIENTS):
        env.process(
            _client(env, node, rng_streams.stream(f"client-{index}"), pools,
                    cross_ratio, counters, (SHARD_WARMUP_MS, run_end)),
            name=f"client-{index}",
        )
    env.run_until(run_end)
    assert not env.failed_processes, env.failed_processes

    commits = counters["commits"]
    certs_per_sec = commits / (SHARD_MEASURE_MS / 1000.0)
    samples = counters["latency_samples"]
    stats = node.stats()
    return {
        "shards": shards,
        "cross_ratio": cross_ratio,
        "certifications_per_sec": round(certs_per_sec, 1),
        "commits": commits,
        "aborts": counters["aborts"],
        "mean_latency_ms": round(counters["latency_ms_total"] / samples, 2)
        if samples else 0.0,
        "fsyncs": int(stats["certifier_fsyncs"]),
        "writesets_per_fsync": round(stats["certifier_writesets_per_fsync"], 2),
        # Log records flushed per committed transaction: 1.0 when every
        # commit lives on one shard, 1 + cross_ratio as cross-shard commits
        # write a fragment record on each touched shard (merge amplification).
        "flushed_records_per_commit": round(
            stats["certifier_fsyncs"] * stats["certifier_writesets_per_fsync"]
            / max(stats["certifier_commits"], 1), 3),
    }


def _run_matrix() -> list[dict]:
    rows = []
    for shards in SHARD_COUNTS:
        # A single certifier has no shard boundary to cross.
        ratios = (0.0,) if shards == 1 else SHARD_CROSS_RATIOS
        for cross_ratio in ratios:
            rows.append(_run_point(shards, cross_ratio))
    baseline = next(
        (row["certifications_per_sec"] for row in rows
         if row["shards"] == 1 and row["cross_ratio"] == 0.0),
        None,
    )
    for row in rows:
        row["speedup_vs_single"] = (
            round(row["certifications_per_sec"] / baseline, 2)
            if baseline else 0.0
        )
    return rows


def test_certifier_sharding_and_emit_bench_json():
    rows = _run_matrix()

    payload = {
        "benchmark": "certifier_sharding",
        "python": platform.python_version(),
        "clients": SHARD_CLIENTS,
        "flush_cap_records": SHARD_FLUSH_CAP,
        "warmup_ms": SHARD_WARMUP_MS,
        "measure_ms": SHARD_MEASURE_MS,
        "time_base": "simulated (deterministic)",
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"Certifier sharding: {SHARD_CLIENTS} closed-loop clients, "
          f"fsync group capped at {SHARD_FLUSH_CAP} records")
    columns = ["shards", "cross_ratio", "certifications_per_sec",
               "speedup_vs_single", "mean_latency_ms", "writesets_per_fsync",
               "flushed_records_per_commit"]
    print(format_table(columns, [{k: row[k] for k in columns} for row in rows]))

    by_point = {(row["shards"], row["cross_ratio"]): row for row in rows}
    baseline = by_point[(1, 0.0)]
    assert baseline["certifications_per_sec"] > 0

    for row in rows:
        # Conflicts are rare by construction; the measurement is about the
        # durability pipeline, not the abort rate.
        assert row["aborts"] <= row["commits"] * 0.01

    if (ACCEPTANCE_SHARDS, 0.0) in by_point:
        speedup = by_point[(ACCEPTANCE_SHARDS, 0.0)]["speedup_vs_single"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"{ACCEPTANCE_SHARDS} shards only {speedup:.2f}x over the single "
            f"certifier at 0% cross-shard (floor {SPEEDUP_FLOOR}x)"
        )

    # The documented crossover: the sharding win must shrink as the
    # cross-shard ratio grows (each cross-shard commit occupies two flush
    # pipelines and waits for the slower one).
    for shards in SHARD_COUNTS:
        if shards == 1:
            continue
        ratios = sorted(r for s, r in by_point if s == shards)
        series = [by_point[(shards, r)]["certifications_per_sec"] for r in ratios]
        assert series == sorted(series, reverse=True), (
            f"throughput should fall as cross-shard ratio rises: {series}"
        )
