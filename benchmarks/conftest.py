"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one table or figure from the paper's
evaluation (Section 9).  The sweeps run the discrete-event simulation with
reduced measurement windows and a compressed replica-count axis so the whole
harness finishes in a few minutes; set ``REPRO_BENCH_MEASURE_MS`` /
``REPRO_BENCH_REPLICAS`` to trade time for smoother curves.

The certifier micro-benchmark (``test_certifier_scaling.py``) has its own
knobs: ``REPRO_BENCH_CERT_LOG_LENS`` (comma-separated pre-seeded log
lengths, default ``1000,10000``), ``REPRO_BENCH_CERT_WS_SIZES``
(comma-separated writeset sizes, default ``1,10``) and
``REPRO_BENCH_CERT_SECONDS`` (measurement window per configuration and
mode, default ``0.4``).  CI smoke runs shrink all three; the indexed-vs-scan
speedup assertion only arms itself for configurations at the paper-scale
point (log length ≥ 10000, writeset size ≥ 10).
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import SystemKind, WorkloadName  # noqa: E402
from repro.cluster.sweeps import ReplicaSweep, run_replica_sweep  # noqa: E402

#: Measurement window per experiment point (simulated milliseconds).
MEASURE_MS = float(os.environ.get("REPRO_BENCH_MEASURE_MS", "1500"))
WARMUP_MS = float(os.environ.get("REPRO_BENCH_WARMUP_MS", "400"))

#: Replica counts on the x axis (the paper uses 1..15).
REPLICA_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_REPLICAS", "1,4,8,15").split(",")
)

#: Certifier micro-benchmark axes (see test_certifier_scaling.py).
CERT_LOG_LENGTHS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_CERT_LOG_LENS", "1000,10000").split(",")
)
CERT_WS_SIZES = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_CERT_WS_SIZES", "1,10").split(",")
)
CERT_MEASURE_SECONDS = float(os.environ.get("REPRO_BENCH_CERT_SECONDS", "0.4"))

#: Propagation-batching micro-benchmark axes (test_propagation_batching.py):
#: writesets propagated per leg, the size-capped batch bound, and the modeled
#: minimum fsync service time at the replicas (milliseconds).
PROP_WRITESETS = int(os.environ.get("REPRO_BENCH_PROP_WRITESETS", "256"))
PROP_BATCH_SIZE = int(os.environ.get("REPRO_BENCH_PROP_BATCH", "32"))
PROP_FSYNC_MS = float(os.environ.get("REPRO_BENCH_PROP_FSYNC_MS", "0.2"))

#: Scheduler-routing benchmark axes (test_scheduler_routing.py): replica
#: counts (filtered to the >= 4 points where routing matters) and the
#: AllUpdates update-burst — how many consecutive transactions a client
#: aims at the same counter row, the session-affinity axis that separates
#: conflict-aware routing from round-robin.
SCHED_REPLICAS = tuple(
    int(n) for n in os.environ.get(
        "REPRO_BENCH_SCHED_REPLICAS",
        ",".join(str(n) for n in REPLICA_COUNTS if n >= 4) or "4,8",
    ).split(",")
)
SCHED_UPDATE_BURST = int(os.environ.get("REPRO_BENCH_SCHED_BURST", "3"))

#: Certifier-sharding benchmark axes (test_certifier_sharding.py): shard
#: counts, cross-shard writeset ratios, closed-loop client count, the
#: bounded fsync group (records per certifier log flush — the knob that
#: makes a single log device saturable) and the simulated windows.  These
#: are deliberately independent of the global MEASURE_MS so the emitted
#: JSON is identical between CI and a local run (the bench-regression job
#: compares it against the committed file).
SHARD_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_SHARDS", "1,2,4").split(",")
)
SHARD_CROSS_RATIOS = tuple(
    float(x) for x in os.environ.get("REPRO_BENCH_SHARD_CROSS", "0,0.1,0.5").split(",")
)
SHARD_CLIENTS = int(os.environ.get("REPRO_BENCH_SHARD_CLIENTS", "48"))
SHARD_FLUSH_CAP = int(os.environ.get("REPRO_BENCH_SHARD_FLUSH_CAP", "8"))
SHARD_WARMUP_MS = float(os.environ.get("REPRO_BENCH_SHARD_WARMUP_MS", "300"))
SHARD_MEASURE_MS = float(os.environ.get("REPRO_BENCH_SHARD_MEASURE_MS", "1500"))

#: Availability benchmark axes (test_availability_recovery.py): shard count,
#: closed-loop clients, bounded fsync group, the crash window of the injected
#: shard-leader outage (absolute simulated ms) and the windows.  Independent
#: of the global MEASURE_MS for the same reason as the sharding axes: the
#: emitted JSON must be identical between CI and a local run.
RECOVERY_SHARDS = int(os.environ.get("REPRO_BENCH_RECOVERY_SHARDS", "2"))
RECOVERY_CLIENTS = int(os.environ.get("REPRO_BENCH_RECOVERY_CLIENTS", "32"))
RECOVERY_FLUSH_CAP = int(os.environ.get("REPRO_BENCH_RECOVERY_FLUSH_CAP", "8"))
RECOVERY_CRASH_AT_MS = float(os.environ.get("REPRO_BENCH_RECOVERY_CRASH_AT", "600"))
RECOVERY_RECOVER_AT_MS = float(os.environ.get("REPRO_BENCH_RECOVERY_RECOVER_AT", "900"))
RECOVERY_WARMUP_MS = float(os.environ.get("REPRO_BENCH_RECOVERY_WARMUP_MS", "300"))
RECOVERY_MEASURE_MS = float(os.environ.get("REPRO_BENCH_RECOVERY_MEASURE_MS", "1500"))

#: Anti-entropy bootstrap benchmark axes (test_replica_bootstrap.py): the
#: commit-history lengths driven while one group node is down, and the GC
#: headrooms swept (headroom trades snapshot cadence against retained-suffix
#: length).  Fixed defaults, independent of the global windows: the emitted
#: ``BENCH_bootstrap.json`` must be identical between CI and a local run.
BOOTSTRAP_HISTORIES = tuple(
    int(n) for n in os.environ.get(
        "REPRO_BENCH_BOOTSTRAP_HISTORIES", "40,80,160").split(",")
)
BOOTSTRAP_HEADROOMS = tuple(
    int(n) for n in os.environ.get(
        "REPRO_BENCH_BOOTSTRAP_HEADROOMS", "0,8").split(",")
)

#: MVCC vacuum benchmark axes (test_mvcc_vacuum.py): sustained group-apply
#: history lengths (committed versions), the wall-clock window of each read
#: throughput measurement, and the chain lengths of the row-layout
#: micro-benchmark.  The chain-length / retained-row metrics are
#: deterministic (they depend only on the axes); the read/install
#: throughputs are wall-clock, so only their on/off *ratios* are guarded.
MVCC_HISTORIES = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_MVCC_HISTORIES", "2000,8000").split(",")
)
MVCC_MEASURE_SECONDS = float(os.environ.get("REPRO_BENCH_MVCC_SECONDS", "0.25"))
MVCC_CHAIN_LENGTHS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_MVCC_CHAIN_LENS", "512,2048").split(",")
)

#: Live-backend sweep axes (test_live_sweep.py): concurrent closed-loop
#: clients, transactions per client for the batched legs (the serialized
#: baseline legs scale this down — they run one fsync-bound commit at a
#: time), and the emulated disk's fsync floor.  The floor defaults to the
#: paper's measured disk ("fsync takes about 8ms"); containers acknowledge
#: fsync in ~0.1 ms, which would make durability free and hide the very
#: group-commit effect the sweep measures.
LIVE_CLIENT_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_LIVE_CLIENTS", "4,16").split(",")
)
LIVE_TX_PER_CLIENT = int(os.environ.get("REPRO_BENCH_LIVE_TX", "25"))
LIVE_FSYNC_FLOOR_MS = float(os.environ.get("REPRO_BENCH_LIVE_FSYNC_FLOOR_MS", "8"))

#: The four curves of the throughput/response figures.
FIGURE_SYSTEMS = (
    SystemKind.BASE,
    SystemKind.TASHKENT_MW,
    SystemKind.TASHKENT_API,
    SystemKind.TASHKENT_API_NO_CERT,
)


@lru_cache(maxsize=None)
def cached_sweep(workload: WorkloadName, dedicated_io: bool,
                 forced_abort_rate: float = 0.0,
                 systems: tuple[SystemKind, ...] = FIGURE_SYSTEMS,
                 replica_counts: tuple[int, ...] = REPLICA_COUNTS) -> ReplicaSweep:
    """Run (once) and cache the sweep shared by a figure's benchmarks."""
    return run_replica_sweep(
        workload,
        systems=systems,
        replica_counts=replica_counts,
        dedicated_io=dedicated_io,
        forced_abort_rate=forced_abort_rate,
        warmup_ms=WARMUP_MS,
        measure_ms=MEASURE_MS,
    )


def largest_replica_count() -> int:
    return max(REPLICA_COUNTS)
