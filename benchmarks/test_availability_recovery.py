"""Availability smoke benchmark: a shard-leader crash mid-measurement.

The paper's availability claim (Section 7) is qualitative: updates proceed
while a majority of certifier nodes is up, and a crashed node rejoins by
state transfer.  This benchmark makes the sharded version quantitative on
the simulated cluster: closed-loop clients drive a sharded certifier
(bounded fsync groups, as in ``test_certifier_sharding.py``) while shard
0's leader is crashed for a fixed window (``certifier_crash_schedule``) —
the group elects a new leader and transfers state for the whole window, so
transactions touching shard 0 stall and drain on recovery.

Measured, all in deterministic *simulated* time (→ ``BENCH_recovery.json``,
guarded by ``tools/check_bench_regression.py``):

* ``certifications_per_sec`` — whole-window throughput, steady vs faulty
  (the cost of one outage amortized over the run);
* ``outage_rate_ratio`` — throughput *during* the crash window relative to
  the steady scenario's same window: the availability dip.  It is deep but
  non-zero: transactions on the surviving shard keep committing until their
  closed-loop client happens to draw a shard-0 item and parks — an open
  (or shard-aware-routed) workload would retain far more of the surviving
  shard's service;
* ``recovery_lag_ms`` — first commit completion after the leader returns:
  how quickly the stalled pipeline drains;
* ``backlog_drain_ratio`` — post-recovery throughput relative to steady
  (> 1 while the stalled closed-loop clients catch up).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Generator

from conftest import (
    RECOVERY_CLIENTS,
    RECOVERY_CRASH_AT_MS,
    RECOVERY_FLUSH_CAP,
    RECOVERY_MEASURE_MS,
    RECOVERY_RECOVER_AT_MS,
    RECOVERY_SHARDS,
    RECOVERY_WARMUP_MS,
)

from repro.analysis.report import format_table
from repro.cluster.nodes import SimShardedCertifierNode
from repro.core.certification import CertificationRequest
from repro.core.config import ReplicationConfig, SystemKind
from repro.core.sharding import HashPartitioner
from repro.core.writeset import make_writeset
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"

POOL_KEYS_PER_SHARD = 2000
#: Fraction of transactions straddling two shards (a little cross-shard
#: traffic makes the outage also stall some shard-1 originated merges).
CROSS_RATIO = 0.1


def _key_pools(num_shards: int) -> list[list[int]]:
    partitioner = HashPartitioner(num_shards)
    pools: list[list[int]] = [[] for _ in range(num_shards)]
    key = 0
    while min(len(pool) for pool in pools) < POOL_KEYS_PER_SHARD:
        pools[partitioner.shard_of(("t", key))].append(key)
        key += 1
    return pools


def _client(env: Environment, node: SimShardedCertifierNode, rng,
            pools: list[list[int]], commit_times: list[float],
            warmup_end: float) -> Generator:
    num_shards = len(pools)
    while True:
        if num_shards > 1 and rng.random() < CROSS_RATIO:
            first, second = rng.sample(range(num_shards), 2)
            entries = [("t", rng.choice(pools[first])),
                       ("t", rng.choice(pools[second]))]
        else:
            pool = pools[rng.randrange(num_shards)]
            entries = [("t", rng.choice(pool)), ("t", rng.choice(pool))]
        version = node.certifier.system_version.version
        request = CertificationRequest(
            tx_start_version=version,
            writeset=make_writeset(entries),
            replica_version=version,
            origin_replica="replica-0",
        )
        result = yield from node.certify(request)
        if result.committed and env.now >= warmup_end:
            commit_times.append(env.now)


def _run_scenario(crash_schedule: tuple) -> dict:
    env = Environment()
    rng_streams = RandomStreams(20060418)
    config = ReplicationConfig(
        system=SystemKind.TASHKENT_MW,
        num_replicas=1,
        certifier_shards=RECOVERY_SHARDS,
        certifier_max_flush_batch=RECOVERY_FLUSH_CAP,
        certifier_crash_schedule=crash_schedule,
    )
    node = SimShardedCertifierNode(env, config, rng_streams, durability_enabled=True)
    pools = _key_pools(RECOVERY_SHARDS)
    run_end = RECOVERY_WARMUP_MS + RECOVERY_MEASURE_MS
    commit_times: list[float] = []
    for index in range(RECOVERY_CLIENTS):
        env.process(
            _client(env, node, rng_streams.stream(f"client-{index}"), pools,
                    commit_times, RECOVERY_WARMUP_MS),
            name=f"client-{index}",
        )
    env.run_until(run_end)
    assert not env.failed_processes, env.failed_processes

    def rate(start: float, end: float) -> float:
        count = sum(1 for t in commit_times if start <= t < end)
        return count / ((end - start) / 1000.0)

    stats = node.stats()
    row = {
        "scenario": "one_shard_leader_crash" if crash_schedule else "steady",
        "certifications_per_sec": round(
            len(commit_times) / (RECOVERY_MEASURE_MS / 1000.0), 1),
        "commits": len(commit_times),
        "outage_window_rate": round(
            rate(RECOVERY_CRASH_AT_MS, RECOVERY_RECOVER_AT_MS), 1),
        "post_recovery_rate": round(rate(RECOVERY_RECOVER_AT_MS, run_end), 1),
        "crash_events": int(stats["certifier_crash_events"]),
        "downtime_ms": stats["certifier_downtime_ms"],
        "stalled_requests": int(stats["certifier_stalled_requests"]),
    }
    if crash_schedule:
        after = [t for t in commit_times if t >= RECOVERY_RECOVER_AT_MS]
        # null (never Infinity: invalid JSON) when nothing commits after
        # recovery; the regression gate skips null metrics on both sides.
        row["recovery_lag_ms"] = (
            round(min(after) - RECOVERY_RECOVER_AT_MS, 2) if after else None)
    return row


def test_availability_under_shard_leader_crash_and_emit_bench_json():
    schedule = ((0, RECOVERY_CRASH_AT_MS, RECOVERY_RECOVER_AT_MS),)
    steady = _run_scenario(())
    faulty = _run_scenario(schedule)

    faulty["outage_rate_ratio"] = round(
        faulty["outage_window_rate"] / steady["outage_window_rate"], 3
    ) if steady["outage_window_rate"] else 0.0
    faulty["backlog_drain_ratio"] = round(
        faulty["post_recovery_rate"] / steady["post_recovery_rate"], 3
    ) if steady["post_recovery_rate"] else 0.0

    rows = [steady, faulty]
    payload = {
        "benchmark": "availability_recovery",
        "python": platform.python_version(),
        "shards": RECOVERY_SHARDS,
        "clients": RECOVERY_CLIENTS,
        "flush_cap_records": RECOVERY_FLUSH_CAP,
        "crash_window_ms": [RECOVERY_CRASH_AT_MS, RECOVERY_RECOVER_AT_MS],
        "warmup_ms": RECOVERY_WARMUP_MS,
        "measure_ms": RECOVERY_MEASURE_MS,
        "time_base": "simulated (deterministic)",
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"Availability: shard-0 leader down "
          f"{RECOVERY_CRASH_AT_MS:.0f}-{RECOVERY_RECOVER_AT_MS:.0f} ms "
          f"of a {RECOVERY_MEASURE_MS:.0f} ms window, "
          f"{RECOVERY_CLIENTS} closed-loop clients, {RECOVERY_SHARDS} shards")
    columns = ["scenario", "certifications_per_sec", "outage_window_rate",
               "post_recovery_rate", "stalled_requests", "downtime_ms"]
    print(format_table(columns, [{k: row.get(k, "") for k in columns}
                                 for row in rows]))

    # The outage is injected and costed...
    assert faulty["crash_events"] == 1
    assert faulty["downtime_ms"] == RECOVERY_RECOVER_AT_MS - RECOVERY_CRASH_AT_MS
    assert faulty["stalled_requests"] > 0
    assert faulty["certifications_per_sec"] < steady["certifications_per_sec"]
    assert faulty["outage_window_rate"] < 0.8 * steady["outage_window_rate"]
    # ...but the surviving shard keeps serving single-shard transactions
    # through the outage (per-shard fault isolation, the availability win),
    assert faulty["outage_window_rate"] > 0
    # ...and the pipeline drains promptly once the leader is back: the
    # post-recovery rate returns to (at least) the steady level — the fsync
    # pipelines are already saturated in the steady scenario, so "recovered"
    # means matching it, not exceeding it.
    assert faulty["recovery_lag_ms"] is not None
    assert faulty["recovery_lag_ms"] < 100.0
    assert faulty["post_recovery_rate"] >= 0.9 * steady["post_recovery_rate"]
