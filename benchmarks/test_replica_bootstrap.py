"""Anti-entropy bootstrap benchmark: state-transfer size and modeled time.

A group node of the replicated sharded certifier dies early; the workload
keeps committing, GC advances the horizon and compaction truncates the
Paxos logs beneath it; the node then rejoins through the snapshot-plus-
suffix bootstrap path (:func:`repro.recovery.snapshots.bootstrap_group_node`).
Everything is functional and deterministic — the axes are the commit-history
length and the GC headroom (which trades snapshot cadence against
retained-suffix length), and the reported seconds come from the Section 9.6
timing model applied to the actually-transferred snapshot bytes and suffix
entries (→ ``BENCH_bootstrap.json``, guarded by
``tools/check_bench_regression.py``):

* ``modeled_bootstrap_ms`` — snapshot + suffix over the paper's LAN; must
  scale with the retained state, not with the full history;
* ``failover_window_ms`` — the sim's calibrated failover window for the
  shard (suffix-only transfer of the retained log);
* ``max_node_log_entries`` — the compaction win itself: the per-node log
  stays bounded by the headroom while the history grows without bound.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from conftest import BOOTSTRAP_HEADROOMS, BOOTSTRAP_HISTORIES

from repro.analysis.report import format_table
from repro.consensus.sharded import ReplicatedShardedCertifier
from repro.core.certification import CertificationRequest
from repro.core.writeset import make_writeset
from repro.recovery.snapshots import bootstrap_group_node, compact_certifier
from repro.recovery.timings import RecoveryTimingModel

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_bootstrap.json"

SHARDS = 2
#: The observed node goes down after this many commits.
CRASH_AFTER = 10


def _commit(certifier: ReplicatedShardedCertifier, key: int) -> None:
    version = certifier.core.last_version
    result = certifier.certify(
        CertificationRequest(
            writeset=make_writeset([("t0", key)]),
            tx_start_version=version,
            replica_version=version,
            origin_replica="client",
        ),
        tx_id=("tx", key),
    )
    assert result.committed


def _sync(certifier: ReplicatedShardedCertifier) -> None:
    version = certifier.core.last_version
    for name in ("r1", "r2", "client"):
        certifier.note_replica_version(name, version)


def _run_cell(history: int, headroom: int) -> dict:
    model = RecoveryTimingModel()
    certifier = ReplicatedShardedCertifier(
        SHARDS, nodes_per_shard=3, gc_headroom=headroom)
    max_log = 0
    for key in range(history):
        if key == CRASH_AFTER:
            certifier.groups.crash_node(0, 2)
        _commit(certifier, key)
        # GC + compact periodically, like a background janitor would.
        if key % 10 == 9:
            _sync(certifier)
            certifier.collect_garbage()
            compact_certifier(certifier)
        max_log = max(max_log, *certifier.groups.node_log_lengths(0),
                      *certifier.groups.node_log_lengths(1))
    # The outage tail: the janitor pauses (replicas stop reporting, so GC
    # cannot advance) for half the history again — the state the bootstrap
    # must transfer as retained suffix, scaling with the outage length.
    for key in range(history, history + history // 2):
        _commit(certifier, key)
    report = bootstrap_group_node(certifier.groups, 0, 2)
    assert report.verified
    plan = report.plan
    return {
        "history": history,
        "headroom": headroom,
        "suffix_entries": plan.suffix_entries,
        "snapshot_bytes": plan.snapshot_bytes,
        "snapshot_installed": report.snapshot_installed,
        "entries_transferred": report.entries_transferred,
        "modeled_bootstrap_ms": round(plan.estimated_seconds * 1e3, 6),
        "failover_window_ms": round(
            model.certifier_bootstrap_seconds(
                0, certifier.core.shards[0].log.retained_count) * 1e3, 6),
        "max_node_log_entries": max_log,
        "ack_entries_dropped": certifier.stats.ack_entries_dropped,
        "compactions": certifier.stats.compactions,
    }


def test_bootstrap_state_transfer_scaling_and_emit_bench_json():
    rows = [_run_cell(history, headroom)
            for history in BOOTSTRAP_HISTORIES
            for headroom in BOOTSTRAP_HEADROOMS]

    payload = {
        "benchmark": "replica_bootstrap",
        "python": platform.python_version(),
        "shards": SHARDS,
        "nodes_per_shard": 3,
        "crash_after_commits": CRASH_AFTER,
        "time_base": "modeled (Section 9.6 calibration, deterministic)",
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print("Anti-entropy bootstrap: node down from commit "
          f"{CRASH_AFTER}, rejoining via snapshot + suffix")
    columns = ["history", "headroom", "suffix_entries", "snapshot_bytes",
               "modeled_bootstrap_ms", "failover_window_ms",
               "max_node_log_entries"]
    print(format_table(columns, [{k: row[k] for k in columns}
                                 for row in rows]))

    by_cell = {(row["history"], row["headroom"]): row for row in rows}
    for row in rows:
        # Every cell compacted past the dead node's prefix: the rejoin went
        # through the snapshot path, and the transfer equals the plan.
        assert row["snapshot_installed"]
        assert row["entries_transferred"] == row["suffix_entries"]
        assert row["compactions"] >= 1
        assert row["ack_entries_dropped"] > 0
    for headroom in BOOTSTRAP_HEADROOMS:
        cells = [by_cell[(history, headroom)] for history in BOOTSTRAP_HISTORIES]
        # While the janitor runs, the node log is horizon-bound: it does NOT
        # grow with the history...
        spread = max(c["max_node_log_entries"] for c in cells) \
            - min(c["max_node_log_entries"] for c in cells)
        assert spread <= 2 * headroom + 4
        assert all(c["max_node_log_entries"] < c["history"] for c in cells
                   if c["history"] >= 40)
        # ...and the state-transfer time scales with the retained suffix
        # (the outage tail), not with the total history.
        for smaller, larger in zip(cells, cells[1:]):
            assert larger["suffix_entries"] > smaller["suffix_entries"]
            assert larger["modeled_bootstrap_ms"] > smaller["modeled_bootstrap_ms"]
            assert larger["failover_window_ms"] > smaller["failover_window_ms"]
    for history in BOOTSTRAP_HISTORIES:
        # A larger headroom retains a longer suffix on top of the tail.
        ordered = [by_cell[(history, headroom)]
                   for headroom in sorted(BOOTSTRAP_HEADROOMS)]
        for smaller, larger in zip(ordered, ordered[1:]):
            assert larger["suffix_entries"] >= smaller["suffix_entries"]
            assert larger["modeled_bootstrap_ms"] >= smaller["modeled_bootstrap_ms"]
