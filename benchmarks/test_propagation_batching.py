"""Propagation micro-benchmark: per-writeset vs batched writeset delivery.

The transport layer (``repro.transport``) turned remote-writeset propagation
into one policy-pluggable pipeline: the certifier offers certified writesets
to a :class:`WritesetStream`, a flush policy cuts them into batches, and each
replica applies whole batches through the engine's group-apply path
(:meth:`Database.apply_writeset_batch` — one version bump and one WAL append,
hence one synchronous write, per batch).

This module measures that pipeline end to end on engine-backed replicas:

* **per-writeset** — ``ImmediateFlushPolicy``; every writeset travels and
  commits alone, costing one WAL append + fsync per writeset per replica
  (the regime of a naive push system, and of Base's serial submission);
* **batched** — ``SizeCappedFlushPolicy``; writesets share batches, so the
  fsyncs-per-writeset ratio drops by the batch factor;
* **windowed** — ``TimeWindowFlushPolicy``; the bounded-staleness regime,
  where everything arriving inside the window shares one delivery.

Replica databases write through a :class:`ThrottledLogDevice` whose sync has
a small minimum service time (default 0.2 ms — far below the paper's ~8 ms
disks; tune with ``REPRO_BENCH_PROP_FSYNC_MS``), so the wall-clock numbers
reflect the fsync-bound regime the paper analyses instead of a free-fsync
fiction.  Results land in ``BENCH_propagation.json`` at the repo root.
Axes are env-tunable — see ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from conftest import PROP_BATCH_SIZE, PROP_FSYNC_MS, PROP_WRITESETS, REPLICA_COUNTS

from repro.analysis.report import format_table
from repro.core.certification import RemoteWriteSetInfo
from repro.core.writeset import WriteSet
from repro.engine.database import Database
from repro.engine.log_device import ThrottledLogDevice
from repro.transport import (
    FlushPolicy,
    ImmediateFlushPolicy,
    SizeCappedFlushPolicy,
    TimeWindowFlushPolicy,
    WritesetStream,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_propagation.json"

#: Acceptance: batched propagation must beat per-writeset propagation by at
#: least this factor in applies/sec, at every measured point with 8+ replicas.
SPEEDUP_FLOOR = 3.0
ACCEPTANCE_REPLICAS = 8

#: Distinct keys in the benchmark table (writesets cycle through them).
KEY_SPACE = 4096
ITEMS_PER_WRITESET = 2


def _make_infos(count: int) -> list[RemoteWriteSetInfo]:
    infos = []
    for version in range(1, count + 1):
        writeset = WriteSet()
        for j in range(ITEMS_PER_WRITESET):
            key = (version * ITEMS_PER_WRITESET + j) % KEY_SPACE
            writeset.add_update("bench", key, balance=version)
        infos.append(
            RemoteWriteSetInfo(
                commit_version=version,
                writeset=writeset,
                origin_replica="origin",
                conflict_free_back_to=0,
            )
        )
    return infos


def _make_replica(index: int) -> Database:
    db = Database(
        f"replica-{index}",
        synchronous_commit=True,
        log_device=ThrottledLogDevice(PROP_FSYNC_MS),
    )
    db.create_table("bench", ["id", "balance"])
    return db


def _run_leg(label: str, policy: FlushPolicy, num_replicas: int) -> dict:
    """Propagate PROP_WRITESETS writesets to ``num_replicas`` replicas."""
    stream = WritesetStream(policy=policy)
    replicas = [_make_replica(i) for i in range(num_replicas)]
    subscriptions = [stream.subscribe(db.name) for db in replicas]
    infos = _make_infos(PROP_WRITESETS)

    started = time.perf_counter()
    for info in infos:
        # Writesets "arrive" 0.05 ms apart on a synthetic clock so the
        # time-windowed policy has an arrival process to cut against.
        stream.offer(info, now=info.commit_version * 0.05)
    stream.flush()
    for db, subscription in zip(replicas, subscriptions):
        for batch in subscription.poll():
            db.apply_writeset_batch(
                (info.commit_version, info.writeset) for info in batch
            )
    elapsed = time.perf_counter() - started

    total_applies = PROP_WRITESETS * num_replicas
    total_fsyncs = sum(db.fsync_count for db in replicas)
    total_appends = sum(db.wal.stats.records_appended for db in replicas)
    assert all(
        db.remote_writesets_applied == PROP_WRITESETS for db in replicas
    ), "every replica must apply every writeset exactly once"
    return {
        "policy": label,
        "replicas": num_replicas,
        "applies_per_sec": round(total_applies / elapsed, 1),
        "fsyncs_per_writeset": round(total_fsyncs / total_applies, 4),
        "wal_appends_per_writeset": round(total_appends / total_applies, 4),
        "batches_delivered": stream.stats.flushes,
        "mean_batch_size": round(stream.stats.average_batch_size, 2),
    }


def _run_matrix() -> list[dict]:
    legs = [
        ("per-writeset", lambda: ImmediateFlushPolicy()),
        ("batched", lambda: SizeCappedFlushPolicy(PROP_BATCH_SIZE)),
        ("windowed", lambda: TimeWindowFlushPolicy(
            2.0, max_batch=2 * PROP_BATCH_SIZE)),
    ]
    rows = []
    for num_replicas in REPLICA_COUNTS:
        for label, make_policy in legs:
            rows.append(_run_leg(label, make_policy(), num_replicas))
    return rows


def test_propagation_batching_and_emit_bench_json():
    rows = _run_matrix()

    payload = {
        "benchmark": "propagation_batching",
        "python": platform.python_version(),
        "writesets": PROP_WRITESETS,
        "batch_size": PROP_BATCH_SIZE,
        "replica_fsync_ms": PROP_FSYNC_MS,
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"Propagation batching: {PROP_WRITESETS} writesets, modeled "
          f"{PROP_FSYNC_MS} ms replica fsync floor")
    print(format_table(
        ["policy", "replicas", "applies_per_sec", "fsyncs_per_writeset",
         "batches_delivered", "mean_batch_size"],
        [{k: row[k] for k in
          ("policy", "replicas", "applies_per_sec", "fsyncs_per_writeset",
           "batches_delivered", "mean_batch_size")}
         for row in rows],
    ))

    by_point = {(row["policy"], row["replicas"]): row for row in rows}
    for num_replicas in REPLICA_COUNTS:
        per_ws = by_point[("per-writeset", num_replicas)]
        batched = by_point[("batched", num_replicas)]
        # Per-writeset propagation pays one fsync and one WAL append per
        # writeset; batching divides both by the batch factor.
        assert per_ws["fsyncs_per_writeset"] == 1.0
        assert batched["fsyncs_per_writeset"] <= 2.0 / PROP_BATCH_SIZE
        # Batching must never lose, at any scale.
        assert batched["applies_per_sec"] > per_ws["applies_per_sec"]

        if num_replicas >= ACCEPTANCE_REPLICAS:
            speedup = batched["applies_per_sec"] / per_ws["applies_per_sec"]
            assert speedup >= SPEEDUP_FLOOR, (
                f"batched propagation only {speedup:.2f}x over per-writeset "
                f"at {num_replicas} replicas (floor {SPEEDUP_FLOOR}x)"
            )
