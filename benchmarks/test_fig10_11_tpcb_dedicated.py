"""Figures 10 and 11: TPC-B throughput and response time, dedicated IO.

With a dedicated logging channel every curve moves up, but a significant gap
between Tashkent-MW and Tashkent-API remains: the paper attributes it to
artificial conflicts (35% between remote writeset groups), not to the
certifier's extra fsync — the tashAPInoCERT curve gains little.
"""

from conftest import cached_sweep, largest_replica_count

from repro.analysis.report import render_figure
from repro.analysis.results import summarize_sweep
from repro.core.config import SystemKind, WorkloadName


def _sweep():
    return cached_sweep(WorkloadName.TPC_B, dedicated_io=True)


def test_fig10_tpcb_dedicated_throughput(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="throughput",
                        title="Figure 10: TPC-B throughput (dedicated IO)"))
    summary = summarize_sweep(sweep, num_replicas=largest_replica_count())
    print(f"speedups over Base: MW {summary.mw_speedup:.1f}x, API {summary.api_speedup:.1f}x")
    assert summary.tashkent_mw_tps > summary.tashkent_api_tps > summary.base_tps
    # The MW-vs-API gap persists even without IO-channel sharing: the cause
    # is the artificial-conflict serialisation, not disk contention.
    assert summary.tashkent_mw_tps > 1.1 * summary.tashkent_api_tps


def test_fig11_tpcb_dedicated_response_time(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, metric="response",
                        title="Figure 11: TPC-B response time (dedicated IO)"))
    n = largest_replica_count()
    base = dict(sweep.response_series(SystemKind.BASE))
    mw = dict(sweep.response_series(SystemKind.TASHKENT_MW))
    assert mw[n] < base[n]
