"""Section 9.2 (text): fsync accounting — the mechanism behind the figures.

The paper explains the throughput results through synchronous-write
arithmetic: Base needs two serial fsyncs per local update transaction once
remote writesets flow (≈ 49-60 commits/s/replica at ~8 ms per fsync), while
Tashkent-MW's certifier groups on average ~29 writesets per fsync at 15
replicas and Tashkent-MW replicas perform no synchronous writes at all.
"""

from functools import lru_cache

from conftest import MEASURE_MS, WARMUP_MS, largest_replica_count

from repro.analysis.report import format_table
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.core.config import SystemKind, WorkloadName


@lru_cache(maxsize=None)
def _results():
    replicas = largest_replica_count()
    out = {}
    for system in (SystemKind.BASE, SystemKind.TASHKENT_MW, SystemKind.TASHKENT_API):
        out[system] = run_experiment(ExperimentConfig(
            system=system,
            workload=WorkloadName.ALL_UPDATES,
            num_replicas=replicas,
            dedicated_io=True,
            warmup_ms=WARMUP_MS,
            measure_ms=MEASURE_MS,
        ))
    return out


def test_fsync_accounting_explains_the_gap(benchmark):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    replicas = largest_replica_count()
    seconds = MEASURE_MS / 1000.0
    rows = []
    for system, result in results.items():
        committed = result.throughput_tps * seconds
        rows.append({
            "system": system.value,
            "throughput_tps": round(result.throughput_tps, 1),
            "replica_fsyncs": result.replica_fsyncs,
            "replica_fsyncs_per_commit": round(result.replica_fsyncs / committed, 2)
            if committed else 0.0,
            "certifier_ws_per_fsync": round(result.writesets_per_fsync, 1),
            "certifier_disk_util": round(
                result.utilization.get("certifier_disk_utilization", 0.0), 2),
            "certifier_cpu_util": round(
                result.utilization.get("certifier_cpu_utilization", 0.0), 2),
        })
    print()
    print(f"Section 9.2: synchronous-write accounting at {replicas} replicas (AllUpdates)")
    print(format_table(list(rows[0].keys()), rows))

    base = results[SystemKind.BASE]
    mw = results[SystemKind.TASHKENT_MW]
    api = results[SystemKind.TASHKENT_API]

    base_committed = base.throughput_tps * seconds
    # Base: ~2 synchronous writes per local commit (remote group + local).
    assert 1.5 <= base.replica_fsyncs / base_committed <= 2.6
    # Tashkent-MW: zero synchronous writes at the replicas, and the certifier
    # groups tens of writesets per fsync (paper: ~29 at 15 replicas).
    assert mw.replica_fsyncs == 0
    assert mw.writesets_per_fsync > 15
    # Tashkent-API: grouped flushes, i.e. strictly fewer replica fsyncs per
    # commit than Base.
    api_committed = api.throughput_tps * seconds
    assert api.replica_fsyncs / api_committed < base.replica_fsyncs / base_committed
    # The certifier stays lightweight on CPU (paper: below 20%).
    assert mw.utilization["certifier_cpu_utilization"] < 0.3
