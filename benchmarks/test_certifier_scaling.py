"""Certifier micro-benchmark: certifications/sec vs log length and writeset size.

The certifier is the shared, serialized heart of the system: every update
transaction in the cluster funnels through ``Certifier.certify``.  The seed
implementation intersection-tested the incoming writeset against *every*
logged record after the snapshot — O(log length × |writeset|) per request —
so certification throughput collapsed as the log grew.  The inverted version
index (see :mod:`repro.core.certifier_log`) makes the check O(|writeset|).

This module measures both implementations head-to-head on identical
pre-seeded logs, with the transaction snapshot pinned at version 0 so the
conflict window spans the whole log (the scan's worst case and the steady
state of a long-running cluster without GC).  Results land in
``BENCH_certifier.json`` at the repo root so the perf trajectory is tracked
across PRs.  Axes and measurement window are env-tunable — see
``benchmarks/conftest.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from conftest import CERT_LOG_LENGTHS, CERT_MEASURE_SECONDS, CERT_WS_SIZES

from repro.analysis.report import format_table
from repro.core.certification import CertificationRequest, Certifier
from repro.core.certifier_log import MODE_INDEXED, MODE_SCAN, CertifierLog
from repro.core.writeset import make_writeset

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_certifier.json"

#: The acceptance point: the indexed certifier must beat the seed scan by at
#: least this factor at log length 10k with 10-item writesets.
SPEEDUP_FLOOR = 10.0
ACCEPTANCE_LOG_LEN = 10_000
ACCEPTANCE_WS_SIZE = 10


def _seed_certifier(mode: str, log_length: int, ws_size: int) -> Certifier:
    """Build a certifier over a pre-populated log of ``log_length`` records."""
    certifier = Certifier(CertifierLog(mode=mode))
    for i in range(log_length):
        writeset = make_writeset(
            [("bench", i * ws_size + j) for j in range(ws_size)]
        )
        start = certifier.system_version.version
        result = certifier.certify(CertificationRequest(
            tx_start_version=start,
            writeset=writeset,
            replica_version=start,
        ))
        assert result.committed
    return certifier


def _measure_certifications_per_second(certifier: Certifier, ws_size: int,
                                       seconds: float) -> tuple[float, int]:
    """Drive commit-bound requests whose window spans the entire log."""
    key = 1_000_000_000  # disjoint from the seeded keyspace: always commits
    ops = 0
    started = time.perf_counter()
    deadline = started + seconds
    now = started
    while now < deadline:
        writeset = make_writeset(
            [("bench", key + j) for j in range(ws_size)]
        )
        key += ws_size
        result = certifier.certify(CertificationRequest(
            tx_start_version=0,
            writeset=writeset,
            replica_version=certifier.system_version.version,
        ))
        assert result.committed
        ops += 1
        now = time.perf_counter()
    return ops / (now - started), ops


def _run_matrix() -> list[dict]:
    rows = []
    for log_length in CERT_LOG_LENGTHS:
        for ws_size in CERT_WS_SIZES:
            indexed_cps, indexed_ops = _measure_certifications_per_second(
                _seed_certifier(MODE_INDEXED, log_length, ws_size),
                ws_size, CERT_MEASURE_SECONDS)
            scan_cps, scan_ops = _measure_certifications_per_second(
                _seed_certifier(MODE_SCAN, log_length, ws_size),
                ws_size, CERT_MEASURE_SECONDS)
            rows.append({
                "log_length": log_length,
                "ws_size": ws_size,
                "indexed_cps": round(indexed_cps, 1),
                "scan_cps": round(scan_cps, 1),
                "speedup": round(indexed_cps / scan_cps, 1) if scan_cps else 0.0,
                "indexed_ops": indexed_ops,
                "scan_ops": scan_ops,
            })
    return rows


def _gc_snapshot() -> dict:
    """Show GC bounding the log: retained records after a low-water prune."""
    log_length = max(CERT_LOG_LENGTHS)
    certifier = _seed_certifier(MODE_INDEXED, log_length, 2)
    certifier.log.mark_durable(certifier.log.last_version)
    certifier.note_replica_version("bench-replica", certifier.system_version.version)
    headroom = 128
    pruned = certifier.collect_garbage(headroom=headroom)
    return {
        "log_length": log_length,
        "headroom": headroom,
        "pruned_records": pruned,
        "retained_records": certifier.log.retained_count,
        "index_item_count": certifier.log.index_item_count,
    }


def test_certifier_scaling_and_emit_bench_json():
    rows = _run_matrix()
    gc_stats = _gc_snapshot()

    payload = {
        "benchmark": "certifier_scaling",
        "python": platform.python_version(),
        "measure_seconds": CERT_MEASURE_SECONDS,
        "scaling": rows,
        "gc": gc_stats,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print("Certifier scaling: indexed vs seed linear scan "
          f"({CERT_MEASURE_SECONDS:.2f}s per cell, window = whole log)")
    print(format_table(
        ["log_length", "ws_size", "indexed_cps", "scan_cps", "speedup"],
        [{k: row[k] for k in
          ("log_length", "ws_size", "indexed_cps", "scan_cps", "speedup")}
         for row in rows],
    ))
    print(f"GC: pruned {gc_stats['pruned_records']} of {gc_stats['log_length']} "
          f"records, {gc_stats['retained_records']} retained "
          f"({gc_stats['index_item_count']} indexed items)")

    # Indexed certification must never lose to the scan, at any size.
    for row in rows:
        assert row["indexed_cps"] >= row["scan_cps"] * 0.8, row

    # Acceptance: ≥ 10× at the paper-scale point (armed only when that point
    # is part of the measured matrix, so CI smoke runs with tiny axes pass).
    for row in rows:
        if (row["log_length"] >= ACCEPTANCE_LOG_LEN
                and row["ws_size"] >= ACCEPTANCE_WS_SIZE):
            assert row["speedup"] >= SPEEDUP_FLOOR, (
                f"indexed certifier only {row['speedup']}× faster than the "
                f"seed scan at log length {row['log_length']}, "
                f"writeset size {row['ws_size']}"
            )

    # GC keeps the log bounded by low-water mark + headroom.
    assert gc_stats["retained_records"] <= gc_stats["headroom"] + 1
    assert gc_stats["pruned_records"] >= gc_stats["log_length"] - gc_stats["headroom"] - 1
